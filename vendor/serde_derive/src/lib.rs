// Vendored crate: exempt from workspace clippy (CI runs clippy -D warnings).
#![allow(clippy::all)]
//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the derive input token stream directly (no syn/quote in the
//! offline environment) and emits `impl serde::Serialize` /
//! `impl serde::Deserialize` blocks generated as source text.
//!
//! Supported shapes — everything this workspace derives:
//! * structs with named fields (`#[serde(default)]` honored per field),
//! * tuple structs (1-field newtypes serialize transparently),
//! * unit structs,
//! * enums with unit / newtype / tuple / struct variants
//!   (externally tagged, matching serde_json conventions).
//!
//! Generic types are intentionally unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    has_default: bool,
}

enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Input {
    Struct(Shape),
    Enum(Vec<Variant>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, parsed) = parse_input(&tokens);
    let code = match (&parsed, mode) {
        (Input::Struct(shape), Mode::Serialize) => gen_struct_ser(&name, shape),
        (Input::Struct(shape), Mode::Deserialize) => gen_struct_de(&name, shape),
        (Input::Enum(variants), Mode::Serialize) => gen_enum_ser(&name, variants),
        (Input::Enum(variants), Mode::Deserialize) => gen_enum_de(&name, variants),
    };
    code.parse().expect("serde_derive: generated code failed to parse")
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skip attributes (`#[...]`) at `tokens[i..]`, reporting whether any of
/// them is `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut has_default = false;
    while i + 1 < tokens.len() && is_punct(&tokens[i], '#') {
        if let TokenTree::Group(g) = &tokens[i + 1] {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if inner.first().map_or(false, |t| is_ident(t, "serde")) {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    if args.stream().into_iter().any(|t| is_ident(&t, "default")) {
                        has_default = true;
                    }
                }
            }
        }
        i += 2;
    }
    (i, has_default)
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) at `tokens[i..]`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

/// Advance past a type (or any expression) until a comma at angle-bracket
/// depth zero; groups are single tokens so only `<`/`>` need tracking.
fn skip_to_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_input(tokens: &[TokenTree]) -> (String, Input) {
    let (mut i, _) = skip_attrs(tokens, 0);
    i = skip_vis(tokens, i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>());
                (name, Input::Struct(Shape::Named(fields)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>());
                (name, Input::Struct(Shape::Tuple(n)))
            }
            _ => (name, Input::Struct(Shape::Unit)),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(&g.stream().into_iter().collect::<Vec<_>>());
                (name, Input::Enum(variants))
            }
            other => panic!("serde_derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, has_default) = skip_attrs(tokens, i);
        i = skip_vis(tokens, j);
        if i >= tokens.len() {
            break;
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1; // field name
        assert!(is_punct(&tokens[i], ':'), "serde_derive: expected `:` after field name");
        i = skip_to_comma(tokens, i + 1);
        i += 1; // the comma itself (or one past the end)
        fields.push(Field { name: fname, has_default });
    }
    fields
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = skip_attrs(tokens, i);
        i = skip_vis(tokens, j);
        i = skip_to_comma(tokens, i);
        i += 1;
        n += 1;
    }
    n
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = skip_attrs(tokens, i);
        i = j;
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        i = skip_to_comma(tokens, i);
        i += 1;
        variants.push(Variant { name: vname, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_struct_ser(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_field_exprs(ty_label: &str, fields: &[Field], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fallback = if f.has_default {
                "::std::default::Default::default()".to_string()
            } else {
                format!("return Err(::serde::Error::missing(\"{ty_label}\", \"{}\"))", f.name)
            };
            format!(
                "{0}: match ::serde::field({src}, \"{0}\") {{ \
                 Some(x) => ::serde::Deserialize::from_value(x)?, \
                 None => {fallback} }}",
                f.name
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_struct_de(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!(
            "match v {{ ::serde::Value::Null => Ok({name}), \
             _ => Err(::serde::Error::expected(\"null\", \"{name}\")) }}"
        ),
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?")).collect();
            format!(
                "match v {{ ::serde::Value::Array(a) if a.len() == {n} => \
                 Ok({name}({items})), \
                 _ => Err(::serde::Error::expected(\"array of length {n}\", \"{name}\")) }}",
                items = items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits = named_field_exprs(name, fields, "obj");
            format!(
                "match v {{ ::serde::Value::Object(obj) => Ok({name} {{ {inits} }}), \
                 _ => Err(::serde::Error::expected(\"object\", \"{name}\")) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n}}"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|var| {
            let v = &var.name;
            match &var.shape {
                Shape::Unit => {
                    format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string())")
                }
                Shape::Tuple(1) => format!(
                    "{name}::{v}(x0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                     ::serde::Serialize::to_value(x0))])"
                ),
                Shape::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                    let items: Vec<String> =
                        (0..*n).map(|i| format!("::serde::Serialize::to_value(x{i})")).collect();
                    format!(
                        "{name}::{v}({binds}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Value::Array(vec![{items}]))])",
                        binds = binds.join(", "),
                        items = items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                    let items: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                f.name
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{v} {{ {binds} }} => \
                         ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Value::Object(vec![{items}]))])",
                        binds = binds.join(", "),
                        items = items.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{ {arms} }}\n\
         }}\n}}",
        arms = arms.join(",\n")
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("\"{0}\" => Ok({name}::{0})", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|var| {
            let v = &var.name;
            match &var.shape {
                Shape::Unit => None,
                Shape::Tuple(1) => Some(format!(
                    "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(__val)?))"
                )),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{v}\" => match __val {{ ::serde::Value::Array(a) if a.len() == {n} => \
                         Ok({name}::{v}({items})), \
                         _ => Err(::serde::Error::expected(\"array of length {n}\", \"{name}\")) }}",
                        items = items.join(", ")
                    ))
                }
                Shape::Named(fields) => {
                    let inits = named_field_exprs(name, fields, "obj");
                    Some(format!(
                        "\"{v}\" => match __val {{ ::serde::Value::Object(obj) => \
                         Ok({name}::{v} {{ {inits} }}), \
                         _ => Err(::serde::Error::expected(\"object\", \"{name}\")) }}"
                    ))
                }
            }
        })
        .collect();

    let str_arm = format!(
        "::serde::Value::Str(s) => match s.as_str() {{ {arms}{sep}_ => \
         Err(::serde::Error::unknown_variant(\"{name}\", s)) }}",
        arms = unit_arms.join(", "),
        sep = if unit_arms.is_empty() { "" } else { ", " }
    );
    let obj_arm = format!(
        "::serde::Value::Object(m) if m.len() == 1 => {{ \
         let (__k, __val) = &m[0]; let _ = __val; \
         match __k.as_str() {{ {arms}{sep}_ => \
         Err(::serde::Error::unknown_variant(\"{name}\", __k)) }} }}",
        arms = data_arms.join(", "),
        sep = if data_arms.is_empty() { "" } else { ", " }
    );
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         match v {{\n{str_arm},\n{obj_arm},\n\
         _ => Err(::serde::Error::expected(\"variant string or single-key object\", \"{name}\"))\n\
         }}\n}}\n}}"
    )
}
