// Vendored crate: exempt from workspace clippy (CI runs clippy -D warnings).
#![allow(clippy::all)]
//! Offline stand-in for the `rand` 0.8 crate: the API subset this workspace
//! uses (`Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, `rngs::mock::StepRng`, `seq::SliceRandom::shuffle`),
//! backed by a deterministic xoshiro256++ generator. Streams are *not*
//! bit-compatible with upstream rand — the workspace only relies on
//! determinism within a build, never on upstream stream values.

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable generator.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of a single word into the full seed, as in
        // upstream rand.
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling from the "standard" distribution (full range for integers,
/// `[0, 1)` for floats).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    // 53 uniform bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// Primitive types that can be drawn uniformly from a range.
pub trait UniformSample: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (inclusive); caller guarantees
    /// `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The largest value strictly below `hi`, for converting half-open
    /// ranges to inclusive ones.
    fn step_down(hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
            fn step_down(hi: Self) -> Self { hi - 1 }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i64 as u64).wrapping_sub(lo as i64 as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
            fn step_down(hi: Self) -> Self { hi - 1 }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let f = unit_f64(rng.next_u64()) as $t;
                lo + f * (hi - lo)
            }
            // Floats keep half-open semantics: the unit draw is in [0, 1).
            fn step_down(hi: Self) -> Self { hi }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output: UniformSample;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: UniformSample> SampleRange for std::ops::Range<T> {
    type Output = T;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, T::step_down(self.end))
    }
}

impl<T: UniformSample> SampleRange for std::ops::RangeInclusive<T> {
    type Output = T;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 0xAEF1_7502_07C2_3E9D, 1];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            Self::from_state(s)
        }
    }

    pub mod mock {
        use crate::RngCore;

        /// Arithmetic-progression "generator" for tests.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, increment: u64) -> Self {
                Self { v: initial, step: increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

pub mod seq {
    use super::{RngCore, UniformSample};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_inclusive(rng, 0, i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(4usize..=4), 4);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
