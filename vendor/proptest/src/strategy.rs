//! Strategy trait and combinators (no shrinking: `new_tree` yields a
//! single-value tree).

use crate::test_runner::{TestRng, TestRunner};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Produce one (non-shrinkable) value tree from the runner's RNG.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<NoShrink<Self::Value>, String>
    where
        Self::Value: Clone,
    {
        Ok(NoShrink(self.generate(runner.rng())))
    }
}

/// A generated value (real proptest pairs this with shrinking state).
pub trait ValueTree {
    type Value;
    fn current(&self) -> Self::Value;
}

pub struct NoShrink<T>(pub T);

impl<T: Clone> ValueTree for NoShrink<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

// Numeric range strategies ---------------------------------------------------

/// Primitives that can be drawn uniformly from a range by the test RNG.
pub trait RangePrimitive: Copy + PartialOrd {
    fn draw(rng: &mut TestRng, lo: Self, hi_inclusive: Self) -> Self;
    fn before(hi: Self) -> Self;
}

macro_rules! impl_range_primitive_int {
    ($($t:ty),*) => {$(
        impl RangePrimitive for $t {
            fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                let span = (hi as i64 as u64).wrapping_sub(lo as i64 as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
            fn before(hi: Self) -> Self { hi - 1 }
        }
    )*};
}
impl_range_primitive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_primitive_float {
    ($($t:ty),*) => {$(
        impl RangePrimitive for $t {
            fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
            fn before(hi: Self) -> Self { hi }
        }
    )*};
}
impl_range_primitive_float!(f32, f64);

impl<T: RangePrimitive> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::draw(rng, self.start, T::before(self.end))
    }
}

impl<T: RangePrimitive> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive range strategy");
        T::draw(rng, lo, hi)
    }
}

// Tuple strategies -----------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
