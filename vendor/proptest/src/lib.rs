// Vendored crate: exempt from workspace clippy (CI runs clippy -D warnings).
#![allow(clippy::all)]
//! Offline stand-in for `proptest`: the strategy combinators, runner, and
//! macros this workspace's property tests use. Case generation is
//! deterministic (fixed-seed xoshiro256++) and failing cases are reported
//! without shrinking.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arb(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arb(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arb(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<A>(std::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arb(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Any;

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive size bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.uniform_usize(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __runner = $crate::test_runner::TestRunner::new(__cfg);
                for __case in 0..__runner.cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __runner.rng());)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("proptest case {} of {}: {}", __case + 1, stringify!($name), e);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {}",
            stringify!($a),
            stringify!($b)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {} != {}",
            stringify!($a),
            stringify!($b)
        );
    }};
}
