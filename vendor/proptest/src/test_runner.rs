//! Deterministic test runner: fixed-seed RNG, configurable case count.

/// Runner configuration (field subset of real proptest's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Failure raised by `prop_assert!` and friends.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic xoshiro256++ RNG used for all generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        // SplitMix64 expansion.
        let mut s = [0u64; 4];
        let mut x = seed;
        for slot in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        Self { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    pub fn uniform_usize(&mut self, lo: usize, hi_inclusive: usize) -> usize {
        debug_assert!(lo <= hi_inclusive);
        let span = (hi_inclusive - lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as usize;
        }
        lo + (self.next_u64() % (span + 1)) as usize
    }
}

/// Drives case generation for one `proptest!` test function.
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        Self { rng: TestRng::from_seed(0x5EED_0CA7_0000_0001), cases: config.cases }
    }

    /// Runner with a fixed, well-known seed (real proptest API).
    pub fn deterministic() -> Self {
        Self::new(ProptestConfig::default())
    }

    pub fn cases(&self) -> u32 {
        self.cases
    }

    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        Self::new(ProptestConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_collections_compose() {
        let mut runner = crate::test_runner::TestRunner::deterministic();
        let strat = crate::collection::vec((0u32..10, -1.0f32..1.0), 2..=5)
            .prop_map(|v| v.len())
            .prop_flat_map(|n| (Just(n), 0usize..=n));
        for _ in 0..100 {
            let (n, k) = strat.new_tree(&mut runner).unwrap().current();
            assert!((2..=5).contains(&n));
            assert!(k <= n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_asserts(x in 1u64..100, b in crate::bool::ANY, v in crate::collection::vec(0u8..4, 0..6)) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert_eq!(b, b);
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 4));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case 1")]
    fn failing_case_panics() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
