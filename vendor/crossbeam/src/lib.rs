// Vendored crate: exempt from workspace clippy (CI runs clippy -D warnings).
#![allow(clippy::all)]
//! Offline stand-in for the `crossbeam` crate: scoped threads with the
//! `crossbeam::thread::scope(|s| { s.spawn(|_| ...) })` calling convention,
//! implemented over `std::thread::scope`. A panic in any spawned thread
//! surfaces as `Err` from `scope`, like crossbeam's result-returning API.

pub mod thread {
    use std::any::Any;

    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle passed to the `scope` closure; spawns threads that may borrow
    /// from the enclosing environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a placeholder
        /// argument (crossbeam passes a nested `&Scope`; every call site in
        /// this workspace ignores it with `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Create a scope for spawning borrowing threads. All spawned threads
    /// are joined before this returns; a child panic yields `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut sums = vec![0u64; 2];
        let (lo, hi) = sums.split_at_mut(1);
        super::thread::scope(|s| {
            s.spawn(|_| lo[0] = data[..2].iter().sum());
            s.spawn(|_| hi[0] = data[2..].iter().sum());
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn child_panic_is_an_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
