// Vendored crate: exempt from workspace clippy (CI runs clippy -D warnings).
#![allow(clippy::all)]
//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde::Value` tree as standard JSON (`to_string`, `to_string_pretty`,
//! `from_str`). Integer precision is preserved end to end; non-finite
//! floats serialize as `null`, matching upstream serde_json.

pub use serde::Value;

/// serde_json-compatible error type.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid token at byte {start}")));
        }
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (v, s) in [
            (Value::Null, "null"),
            (Value::Bool(true), "true"),
            (Value::Int(-7), "-7"),
            (Value::UInt(18_446_744_073_709_551_615), "18446744073709551615"),
            (Value::Str("a\"b\\c\n".to_string()), "\"a\\\"b\\\\c\\n\""),
        ] {
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            assert_eq!(out, s);
            assert_eq!(parse(s).unwrap(), v);
        }
    }

    #[test]
    fn float_shortest_repr_roundtrips_f32() {
        let x = 0.1f32;
        let json = to_string(&x).unwrap();
        let back: f32 = from_str(&json).unwrap();
        assert_eq!(x, back);
    }

    #[test]
    fn nested_pretty_parses_back() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("pic".into())),
            ("xs".into(), Value::Array(vec![Value::Int(-1), Value::Float(2.5), Value::Null])),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let mut out = String::new();
        write_value(&v, &mut out, Some(2), 0);
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn errors_not_panics_on_garbage() {
        for s in ["", "{", "[1,", "\"abc", "nul", "{\"a\" 1}", "[01x]", "\u{1}"] {
            assert!(parse(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u0041\\ud83d\\ude00\"").unwrap(), Value::Str("A😀".into()));
    }
}
