// Vendored crate: exempt from workspace clippy (CI runs clippy -D warnings).
#![allow(clippy::all)]
//! Offline stand-in for `serde`: a value-tree serialization framework with
//! the same derive ergonomics (`#[derive(Serialize, Deserialize)]`,
//! `#[serde(default)]`) as the real crate, sized to what this workspace
//! needs. Types serialize into a [`Value`] tree; `serde_json` renders and
//! parses that tree.
//!
//! Not wire-compatible with every serde corner case — but the JSON shapes
//! for structs, tuple structs, and externally-tagged enums match upstream
//! serde_json conventions, so checkpoint/dataset files keep a stable,
//! conventional format.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Dynamically typed serialized value. Integers keep 64-bit precision
/// (separate signed/unsigned carriers) so round-tripping u64 seeds is exact.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Field order is preserved (struct declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| field(m, key))
    }
}

/// Look up a field in an object body (first match wins, like serde_json).
pub fn field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    pub fn expected(what: &str, ty: &str) -> Self {
        Self::custom(format!("expected {what} while deserializing {ty}"))
    }

    pub fn missing(ty: &str, field: &str) -> Self {
        Self::custom(format!("missing field `{field}` while deserializing {ty}"))
    }

    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Self::custom(format!("unknown variant `{variant}` for enum {ty}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

fn value_as_i64(v: &Value) -> Option<i64> {
    match *v {
        Value::Int(i) => Some(i),
        Value::UInt(u) => i64::try_from(u).ok(),
        _ => None,
    }
}

fn value_as_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::UInt(u) => Some(u),
        Value::Int(i) => u64::try_from(i).ok(),
        _ => None,
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                value_as_u64(v)
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                value_as_i64(v)
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32).map_err(|_| Error::expected("number", "f32"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let vec = Vec::<T>::from_value(v)?;
        if vec.len() != N {
            return Err(Error::custom(format!("expected array of length {N}, got {}", vec.len())));
        }
        vec.try_into().map_err(|_| Error::expected("array", "[T; N]"))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(a) if a.len() == LEN => {
                        Ok(($($name::from_value(&a[$idx])?,)+))
                    }
                    _ => Err(Error::expected("tuple array", "tuple")),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_nested_containers_roundtrip() {
        let x: Vec<(Option<u64>, [i32; 2])> = vec![(None, [1, -2]), (Some(9), [0, 3])];
        let v = x.to_value();
        let back = Vec::<(Option<u64>, [i32; 2])>::from_value(&v).unwrap();
        assert_eq!(x, back);
    }

    #[test]
    fn u64_precision_is_preserved() {
        let x = u64::MAX - 3;
        assert_eq!(u64::from_value(&x.to_value()).unwrap(), x);
        assert!(i64::from_value(&x.to_value()).is_err());
    }
}
