// Vendored crate: exempt from workspace clippy (CI runs clippy -D warnings).
#![allow(clippy::all)]
//! Offline stand-in for `rand_chacha`: exposes `ChaCha8Rng` with the
//! `SeedableRng`/`RngCore` interface the workspace uses. The stream is a
//! deterministic xoshiro256++ sequence (domain-separated from `StdRng`),
//! not bit-compatible with real ChaCha8 — the workspace only depends on
//! within-build determinism.

use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl ChaCha8Rng {
    /// The generator's raw internal state — the stand-in's analogue of the
    /// real crate's `get_word_pos`, used for exact stream checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator at an exact stream position captured with
    /// [`ChaCha8Rng::state`]. An all-zero state (a fixed point of the
    /// transition function, unreachable from `from_seed`) is remapped the
    /// same way `from_seed` remaps it.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self {
                s: [0xC4AC_8A11_5EED_C8A7, 0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210, 1],
            };
        }
        Self { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            // Domain separation from the StdRng stand-in so equal seeds do
            // not produce equal streams across the two generator types.
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap()) ^ 0xC4AC_8A11_5EED_C8A7;
        }
        if s == [0; 4] {
            s = [0xC4AC_8A11_5EED_C8A7, 0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210, 1];
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_distinct_from_stdrng() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);

        let mut s = rand::rngs::StdRng::seed_from_u64(42);
        let zs: Vec<u64> = (0..8).map(|_| s.gen()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_roundtrip_resumes_stream_exactly() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = ChaCha8Rng::from_state(a.state());
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn zero_state_is_remapped_not_stuck() {
        let mut z = ChaCha8Rng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }
}
