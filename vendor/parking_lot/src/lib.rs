// Vendored crate: exempt from workspace clippy (CI runs clippy -D warnings).
#![allow(clippy::all)]
//! Offline stand-in for the `parking_lot` crate: the API subset this
//! workspace uses (`Mutex`, `RwLock` without lock poisoning), implemented
//! over `std::sync`. Poisoned locks are recovered transparently, matching
//! parking_lot's panic-transparent semantics.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
