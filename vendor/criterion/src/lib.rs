// Vendored crate: exempt from workspace clippy (CI runs clippy -D warnings).
#![allow(clippy::all)]
//! Offline stand-in for `criterion`: `bench_function`/`Bencher::iter` with
//! warm-up, fixed sample counts, and a mean/min/max report printed in a
//! criterion-like format. No plotting, no statistical regression analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration + registry entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Benchmark `routine`, timing batches sized so each sample lasts
    /// roughly `measurement_time / sample_size`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, also estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter_ns =
            (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / per_iter_ns).ceil() as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let n = self.samples_ns.len() as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let min = self.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!("{id:<40} time: [{} {} {}]", fmt_ns(min), fmt_ns(mean), fmt_ns(max));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`); ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }
}
