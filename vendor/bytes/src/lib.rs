// Vendored crate: exempt from workspace clippy (CI runs clippy -D warnings).
#![allow(clippy::all)]
//! Offline stand-in for the `bytes` crate: `Bytes`/`BytesMut` plus the
//! little-endian `Buf`/`BufMut` accessors the SCDS binary format uses.
//! `Bytes` is a cheaply cloneable shared buffer with a read cursor.

use std::sync::Arc;

/// Immutable shared byte buffer with a consuming read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_vec(v: Vec<u8>) -> Self {
        Self { data: Arc::new(v), pos: 0 }
    }

    pub fn from_static(v: &'static [u8]) -> Self {
        Self::from_vec(v.to_vec())
    }

    /// Copy of the given subrange of the remaining bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Self::from_vec(self.as_slice()[range].to_vec())
    }

    /// Remaining (unconsumed) length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from_vec(v.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Growable byte buffer for encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

/// Sequential little-endian reads from a buffer. Panics on underflow, like
/// the real crate; callers check `remaining()` first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf::copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "Buf::advance past end");
        self.pos += cnt;
    }
}

/// Sequential little-endian writes into a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        b.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(b.is_empty());
    }

    #[test]
    fn bytes_clone_shares_and_cursors_are_independent() {
        let mut a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        a.advance(2);
        assert_eq!(a.as_slice(), &[3, 4]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4]);
    }
}
