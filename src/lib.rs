//! # Snowcat — efficient kernel concurrency testing using a learned coverage predictor
//!
//! A from-scratch Rust reproduction of *Snowcat* (SOSP 2023): a kernel
//! concurrency-testing framework that predicts, with a graph neural network,
//! which kernel basic blocks a concurrent test (two sequential test inputs
//! plus scheduling hints) will cover — and uses those predictions to skip
//! fruitless dynamic executions.
//!
//! Because the paper's substrate (Linux inside a modified QEMU, Syzkaller,
//! Angr, PyTorch-Geometric) is not reproducible on a laptop, every layer is
//! rebuilt here on a *synthetic kernel* with genuinely interleaving-dependent
//! behaviour and planted concurrency bugs; see `DESIGN.md` for the
//! substitution table and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`kernel`] | synthetic kernel: IR, generator, versions, planted bugs |
//! | [`vm`] | SKI-style uniprocessor VM with scheduling hints and PCT |
//! | [`cfg`] | whole-kernel CFG, uncovered-reachable-block identification |
//! | [`race`] | potential-data-race detection and deduplication |
//! | [`analysis`] | must-hold locksets, lock-discipline lints, static may-race |
//! | [`corpus`] | STI fuzzing, CTI pairing, labelled graph datasets |
//! | [`graph`] | the CT graph representation (5 edge types + shortcuts) |
//! | [`nn`] | tensors, Adam, masked pre-training, relational GNN, metrics |
//! | [`core`] | PIC predictor, strategies S1–S3, MLPCT, Razzer-PIC, SB-PIC |
//!
//! ## Quickstart
//!
//! ```
//! use snowcat::prelude::*;
//!
//! // Build the synthetic "Linux 5.12" and its static CFG.
//! let kernel = KernelVersion::V5_12.spec(42).build();
//! let cfg = KernelCfg::build(&kernel);
//!
//! // Fuzz a small corpus of sequential test inputs.
//! let mut fuzzer = StiFuzzer::new(&kernel, 7);
//! fuzzer.seed_each_syscall();
//! let corpus = fuzzer.into_corpus();
//!
//! // Run one concurrent test under an explicit 2-switch schedule.
//! let cti = Cti::new(corpus[0].sti.clone(), corpus[1].sti.clone());
//! let hints = ScheduleHints {
//!     first: ThreadId(0),
//!     switches: vec![
//!         SwitchPoint { thread: ThreadId(0), after: 5 },
//!         SwitchPoint { thread: ThreadId(1), after: 5 },
//!     ],
//! };
//! let result = run_ct(&kernel, &cti, hints, VmConfig::default());
//! assert!(result.coverage.count() > 0);
//! ```

#![forbid(unsafe_code)]

pub use snowcat_analysis as analysis;
pub use snowcat_cfg as cfg;
pub use snowcat_core as core;
pub use snowcat_corpus as corpus;
pub use snowcat_graph as graph;
pub use snowcat_kernel as kernel;
pub use snowcat_nn as nn;
pub use snowcat_race as race;
pub use snowcat_vm as vm;

/// The most commonly used items across the workspace, in one import.
pub mod prelude {
    pub use snowcat_analysis::{analyze, Allowlist, MayRace, StaticFinding};
    pub use snowcat_cfg::KernelCfg;
    pub use snowcat_core::{
        explore_mlpct, explore_pct, fine_tune, run_campaign, train_pic, CachedPredictor, CostModel,
        CoveragePredictor, ExploreConfig, Explorer, ParallelPredictor, Pic, PipelineConfig,
        PredictorService, RazzerMode, S1NewBitmap, S2NewBlocks, S3LimitedTrials, Sampler,
        SelectionStrategy, SnowcatError,
    };
    pub use snowcat_corpus::{
        build_dataset, make_splits, random_cti_pairs, Dataset, DatasetConfig, StiFuzzer, StiProfile,
    };
    pub use snowcat_graph::{CtGraph, CtGraphBuilder, EdgeKind, VertKind};
    pub use snowcat_kernel::{
        generate, BugKind, GenConfig, Kernel, KernelVersion, SyscallId, ThreadId,
    };
    pub use snowcat_nn::{Checkpoint, PicConfig, PicModel, TrainConfig};
    pub use snowcat_race::{match_planted_bug, RaceDetector, RaceSet};
    pub use snowcat_vm::{
        propose_hints, run_ct, run_sequential, Cti, ScheduleHints, Sti, SwitchPoint,
        SyscallInvocation, VmConfig,
    };
}
