//! Razzer-style directed race reproduction (§5.6.1).
//!
//! Razzer targets a specific *possible data race* (a pair of racing
//! instructions) and searches for CTIs that make both instructions execute
//! concurrently. Three candidate-selection modes are reproduced:
//!
//! * **Strict** (original Razzer): an STI pair qualifies only if each racing
//!   instruction's block was *covered* in the respective sequential run —
//!   racing instructions hiding in URBs are missed, which is why Razzer
//!   fails to reproduce most of Table 4's races.
//! * **Relax**: blocks may lie in the sequential coverage *or* the 1-hop URB
//!   set — finds everything but floods the queue with candidates.
//! * **Pic**: Relax candidates filtered by the PIC model — keep a CTI only
//!   if, under some random schedules, both racing blocks are predicted
//!   covered.

use crate::predictor::{FlowPredictor, PredictorService};
use crate::prefilter::RacePrefilter;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use snowcat_cfg::KernelCfg;
use snowcat_corpus::StiProfile;
use snowcat_kernel::{BlockId, BugSpec, Kernel};
use snowcat_race::match_planted_bug;
use snowcat_race::RaceDetector;
use snowcat_vm::{propose_hints, run_ct, BitSet, Cti, VmConfig};

/// Candidate-selection mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RazzerMode {
    /// Original Razzer: racing blocks must be sequentially covered.
    Strict,
    /// Racing blocks may be SCBs or 1-hop URBs.
    Relax,
    /// Relax + PIC filtering.
    Pic,
    /// Relax + PIC filtering + predicted inter-thread flow between the
    /// racing blocks (the §6 extension: "PIC trained on this task can
    /// further reduce the time for concurrency bug reproduction").
    PicFlow,
}

impl RazzerMode {
    /// Display name matching Table 4's columns.
    pub fn label(self) -> &'static str {
        match self {
            RazzerMode::Strict => "Razzer",
            RazzerMode::Relax => "Razzer-Relax",
            RazzerMode::Pic => "Razzer-PIC",
            RazzerMode::PicFlow => "Razzer-PIC+flow",
        }
    }
}

/// The two racing blocks of a planted bug, one per carrier syscall.
///
/// Returns `None` if the bug's racing-instruction record does not span two
/// functions (cannot happen for generator-planted bugs).
pub fn racing_blocks(kernel: &Kernel, bug: &BugSpec) -> Option<(BlockId, BlockId)> {
    let func_a = kernel.syscall(bug.syscalls.0).func;
    let func_b = kernel.syscall(bug.syscalls.1).func;
    // Take the *last* racing instruction recorded per carrier: bug patterns
    // record the shallow access first and the deep (often URB-resident) one
    // last, and the deep one is the actual race target Razzer aims at.
    let block_in =
        |f| bug.racing_instrs.iter().map(|l| l.block).rfind(|&b| kernel.block(b).func == f);
    Some((block_in(func_a)?, block_in(func_b)?))
}

fn reaches(profile: &StiProfile, block: BlockId, relax: Option<&BitSet>) -> bool {
    if profile.seq.coverage.contains(block.index()) {
        return true;
    }
    relax.map(|urbs| urbs.contains(block.index())).unwrap_or(false)
}

fn urb_set(cfg: &KernelCfg, profile: &StiProfile) -> BitSet {
    let mut s = BitSet::new(cfg.num_blocks());
    for e in cfg.k_hop_urbs(&profile.seq.coverage, 1) {
        s.insert(e.to.index());
    }
    s
}

/// Find candidate CTIs (ordered corpus index pairs) for the target race.
///
/// `Pic`/`PicFlow` modes require a [`PredictorService`]; the per-candidate
/// schedule pool is predicted as one batch, so the service's inference
/// chain (parallel pool, cache) is exercised end to end.
pub fn find_candidates(
    kernel: &Kernel,
    cfg: &KernelCfg,
    corpus: &[StiProfile],
    bug: &BugSpec,
    mode: RazzerMode,
    service: Option<&PredictorService<'_, '_>>,
    seed: u64,
) -> Vec<(usize, usize)> {
    let Some((block_a, block_b)) = racing_blocks(kernel, bug) else {
        return Vec::new();
    };
    let mut candidates = reach_candidates(corpus, cfg, mode, block_a, block_b);
    pic_retain(&mut candidates, corpus, mode, service, block_a, block_b, seed);
    candidates
}

/// [`find_candidates`] with the static may-race pre-filter applied before
/// any GNN scoring.
///
/// Two static cuts, both sound (the may-race set over-approximates every
/// dynamic race, so nothing reproducible is ever dropped):
///
/// 1. **Target veto** — if no may-race pair connects the two racing blocks
///    (e.g. the accesses are consistently lock-protected), the race cannot
///    manifest dynamically; return no candidates without a single
///    prediction.
/// 2. **Density ranking** — remaining candidates are ranked by
///    [`RacePrefilter::rank`]: zero-density CTIs (whose syscalls cannot
///    race at all) are dropped before the predictor sees them, and the
///    rest are scored densest-first.
#[allow(clippy::too_many_arguments)]
pub fn find_candidates_prefiltered(
    kernel: &Kernel,
    cfg: &KernelCfg,
    corpus: &[StiProfile],
    bug: &BugSpec,
    mode: RazzerMode,
    service: Option<&PredictorService<'_, '_>>,
    prefilter: &RacePrefilter,
    seed: u64,
) -> Vec<(usize, usize)> {
    let Some((block_a, block_b)) = racing_blocks(kernel, bug) else {
        return Vec::new();
    };
    if !prefilter.blocks_may_race(block_a, block_b) {
        let reach = reach_candidates(corpus, cfg, mode, block_a, block_b);
        prefilter.count_target_veto(reach.len() as u64);
        return Vec::new();
    }
    let reach = reach_candidates(corpus, cfg, mode, block_a, block_b);
    let mut candidates = prefilter.rank(corpus, &reach);
    pic_retain(&mut candidates, corpus, mode, service, block_a, block_b, seed);
    candidates
}

/// Reachability-qualified candidate pairs (the Strict/Relax core).
fn reach_candidates(
    corpus: &[StiProfile],
    cfg: &KernelCfg,
    mode: RazzerMode,
    block_a: BlockId,
    block_b: BlockId,
) -> Vec<(usize, usize)> {
    let relax_sets: Option<Vec<BitSet>> = if mode != RazzerMode::Strict {
        Some(corpus.iter().map(|p| urb_set(cfg, p)).collect())
    } else {
        None
    };
    let mut candidates = Vec::new();
    for (i, pa) in corpus.iter().enumerate() {
        for (j, pb) in corpus.iter().enumerate() {
            if i == j {
                continue;
            }
            let ra = relax_sets.as_ref().map(|s| &s[i]);
            let rb = relax_sets.as_ref().map(|s| &s[j]);
            if reaches(pa, block_a, ra) && reaches(pb, block_b, rb) {
                candidates.push((i, j));
            }
        }
    }
    candidates
}

/// Apply the Pic / PicFlow predictor filter in place (no-op otherwise).
fn pic_retain(
    candidates: &mut Vec<(usize, usize)>,
    corpus: &[StiProfile],
    mode: RazzerMode,
    service: Option<&PredictorService<'_, '_>>,
    block_a: BlockId,
    block_b: BlockId,
    seed: u64,
) {
    if mode == RazzerMode::Pic || mode == RazzerMode::PicFlow {
        let service = service.expect("Razzer-PIC requires a deployed predictor");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        candidates.retain(|&(i, j)| {
            let a = &corpus[i];
            let b = &corpus[j];
            let base = service.base_graph(a, b);
            // Keep if any of a few random schedules is predicted to cover
            // both racing blocks (and, for PicFlow, to realize an
            // inter-thread flow between them). The schedule pool is drawn
            // up front and predicted as one batch.
            let hints: Vec<_> =
                (0..4).map(|_| propose_hints(&mut rng, a.seq.steps, b.seq.steps)).collect();
            if mode == RazzerMode::Pic {
                let preds = service.predict_candidates(&base, a, b, &hints);
                preds.iter().any(|pred| pred.covers_block(block_a) && pred.covers_block(block_b))
            } else {
                hints.iter().any(|h| {
                    let graph = service.pic().candidate_graph(&base, a, b, h);
                    let (pred, flows) = service.pic().predict_with_flows(&graph);
                    if !(pred.covers_block(block_a) && pred.covers_block(block_b)) {
                        return false;
                    }
                    // The flow head only scores flows between sequentially
                    // executed instructions (InterFlow edges come from the
                    // STIs' sequential traces). If no such edge connects the
                    // racing blocks — e.g. the racing read lives in a URB —
                    // flow prediction is inapplicable and the coverage
                    // filter alone decides.
                    let mut edge_exists = false;
                    let mut flow_predicted = false;
                    for (e, &f) in pred.graph.edges.iter().zip(&flows) {
                        if e.kind != snowcat_graph::EdgeKind::InterFlow {
                            continue;
                        }
                        let ub = pred.graph.verts[e.from as usize].block;
                        let vb = pred.graph.verts[e.to as usize].block;
                        if (ub == block_a && vb == block_b) || (ub == block_b && vb == block_a) {
                            edge_exists = true;
                            if f >= 0.4 {
                                flow_predicted = true;
                                break;
                            }
                        }
                    }
                    !edge_exists || flow_predicted
                })
            }
        });
    }
}

/// Reproduction attempt for one candidate CTI.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CtiRepro {
    /// Corpus index pair.
    pub pair: (usize, usize),
    /// Schedule index (0-based) at which the race was reproduced, if it was.
    pub reproduced_at: Option<usize>,
    /// Schedules actually executed for this CTI.
    pub schedules_run: usize,
}

/// One mode's full Table 4 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReproResult {
    /// Mode label.
    pub mode: String,
    /// Candidate count (`# CTIs`).
    pub candidates: usize,
    /// True-positive candidates (`# TP CTIs`).
    pub true_positives: usize,
    /// Per-candidate outcomes.
    pub per_cti: Vec<CtiRepro>,
    /// Average hours to first reproduction over queue shuffles.
    pub avg_hours: Option<f64>,
    /// Worst-case hours over queue shuffles.
    pub worst_hours: Option<f64>,
}

/// Execute candidates with `schedules_per_cti` random schedules each and
/// check whether the target bug manifests; then estimate average / worst
/// reproduction latency by shuffling the CTI execution queue `shuffles`
/// times, as the paper does (1,000 shuffles).
#[allow(clippy::too_many_arguments)]
pub fn reproduce(
    kernel: &Kernel,
    corpus: &[StiProfile],
    candidates: &[(usize, usize)],
    bug: &BugSpec,
    mode: RazzerMode,
    schedules_per_cti: usize,
    exec_seconds: f64,
    seed: u64,
) -> ReproResult {
    let detector = RaceDetector::default();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut per_cti = Vec::with_capacity(candidates.len());
    for &(i, j) in candidates {
        let a = &corpus[i];
        let b = &corpus[j];
        let cti = Cti::new(a.sti.clone(), b.sti.clone());
        let mut reproduced_at = None;
        let mut run = 0usize;
        for s in 0..schedules_per_cti {
            let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
            let r = run_ct(kernel, &cti, hints, VmConfig::default());
            run += 1;
            let hit = r.hit_bug(bug.id)
                || detector
                    .detect(kernel, &r)
                    .iter()
                    .any(|rep| match_planted_bug(kernel, rep) == Some(bug.id));
            if hit {
                reproduced_at = Some(s);
                break;
            }
        }
        per_cti.push(CtiRepro { pair: (i, j), reproduced_at, schedules_run: run });
    }
    let true_positives = per_cti.iter().filter(|c| c.reproduced_at.is_some()).count();

    // Queue-shuffle latency estimation.
    let (avg_hours, worst_hours) = if true_positives == 0 {
        (None, None)
    } else {
        let full_cost = schedules_per_cti as f64 * exec_seconds;
        let mut order: Vec<usize> = (0..per_cti.len()).collect();
        let mut total = 0.0f64;
        let mut worst = 0.0f64;
        let shuffles = 1000;
        for _ in 0..shuffles {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut t = 0.0;
            for &ci in &order {
                match per_cti[ci].reproduced_at {
                    Some(s) => {
                        t += (s + 1) as f64 * exec_seconds;
                        break;
                    }
                    None => t += full_cost,
                }
            }
            total += t;
            worst = worst.max(t);
        }
        (Some(total / shuffles as f64 / 3600.0), Some(worst / 3600.0))
    };
    ReproResult {
        mode: mode.label().to_string(),
        candidates: candidates.len(),
        true_positives,
        per_cti,
        avg_hours,
        worst_hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_corpus::StiFuzzer;
    use snowcat_kernel::{generate, BugKind, GenConfig};
    use snowcat_nn::{Checkpoint, PicConfig, PicModel};

    fn setup() -> (Kernel, KernelCfg, Vec<StiProfile>) {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let mut fz = StiFuzzer::new(&k, 1);
        fz.seed_each_syscall();
        fz.fuzz(40);
        let corpus = fz.into_corpus();
        (k, cfg, corpus)
    }

    #[test]
    fn racing_blocks_resolve_for_all_bugs() {
        let (k, _, _) = setup();
        for bug in &k.bugs {
            let rb = racing_blocks(&k, bug);
            assert!(rb.is_some(), "bug {} has unresolvable racing blocks", bug.id);
            let (a, b) = rb.unwrap();
            assert_eq!(k.block(a).func, k.syscall(bug.syscalls.0).func);
            assert_eq!(k.block(b).func, k.syscall(bug.syscalls.1).func);
        }
    }

    #[test]
    fn relax_finds_at_least_as_many_candidates_as_strict() {
        let (k, cfg, corpus) = setup();
        for bug in &k.bugs {
            let strict = find_candidates(&k, &cfg, &corpus, bug, RazzerMode::Strict, None, 1);
            let relax = find_candidates(&k, &cfg, &corpus, bug, RazzerMode::Relax, None, 1);
            assert!(relax.len() >= strict.len(), "bug {}", bug.id);
        }
    }

    #[test]
    fn hard_bug_racing_block_is_urb_so_strict_misses_it() {
        // The paper's core motivation: racing instructions in URBs make
        // Razzer-Strict miss races. Our hard (bug-#7-style) bugs put the
        // owner-clearing store inside a sequentially-untaken branch.
        let (k, cfg, corpus) = setup();
        let hard = k.bugs.iter().find(|b| b.kind == BugKind::MultiOrder).unwrap();
        let strict = find_candidates(&k, &cfg, &corpus, hard, RazzerMode::Strict, None, 1);
        let relax = find_candidates(&k, &cfg, &corpus, hard, RazzerMode::Relax, None, 1);
        assert!(
            strict.len() < relax.len(),
            "strict ({}) should miss URB candidates relax finds ({})",
            strict.len(),
            relax.len()
        );
    }

    #[test]
    fn pic_filter_returns_subset_of_relax() {
        let (k, cfg, corpus) = setup();
        let bug = &k.bugs[0];
        let relax = find_candidates(&k, &cfg, &corpus, bug, RazzerMode::Relax, None, 2);
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "t");
        let pic = crate::pic::Pic::new(&ck, &k, &cfg);
        let svc = PredictorService::direct(&pic);
        let filtered = find_candidates(&k, &cfg, &corpus, bug, RazzerMode::Pic, Some(&svc), 2);
        assert!(filtered.len() <= relax.len());
        for c in &filtered {
            assert!(relax.contains(c));
        }
    }

    #[test]
    fn prefilter_never_drops_candidates_for_planted_bugs() {
        // Soundness in practice: every reach-qualified candidate for a real
        // planted bug contains the bug's carrier syscalls, so its may-race
        // density is positive and the ranking keeps it. The pre-filter may
        // only reorder — never shrink — the candidate set of a real race.
        let (k, cfg, corpus) = setup();
        let pf = RacePrefilter::new(&k, &cfg);
        for bug in &k.bugs {
            let relax = find_candidates(&k, &cfg, &corpus, bug, RazzerMode::Relax, None, 1);
            let ranked = find_candidates_prefiltered(
                &k,
                &cfg,
                &corpus,
                bug,
                RazzerMode::Relax,
                None,
                &pf,
                1,
            );
            assert_eq!(ranked.len(), relax.len(), "bug {} lost candidates", bug.id);
            for c in &ranked {
                assert!(relax.contains(c), "bug {}: ranked {c:?} not in relax set", bug.id);
            }
        }
    }

    #[test]
    fn prefilter_vetoes_locked_pseudo_race_without_inference() {
        use snowcat_analysis::LocksetAnalysis;
        use snowcat_kernel::bugs::BugDifficulty;
        use snowcat_kernel::{BugId, BugSpec, SyscallId};

        let (k, cfg, corpus) = setup();
        let pf = RacePrefilter::new(&k, &cfg);
        let locksets = LocksetAnalysis::compute(&k, &KernelCfg::build(&k));

        // Hand a consistently lock-protected access pair to Razzer as if a
        // (naive) static race scanner had flagged it: two locked accesses to
        // the same word from two different syscalls, whose blocks share no
        // may-race pair.
        let func_syscall =
            |f| k.syscalls.iter().position(|s| s.func == f).map(|i| SyscallId(i as u32));
        let mut target = None;
        'outer: for x in locksets.accesses.iter().filter(|a| a.lockset != 0) {
            for y in locksets.accesses.iter().filter(|a| a.lockset != 0) {
                let (fx, fy) = (k.block(x.loc.block).func, k.block(y.loc.block).func);
                if fx == fy || (x.lockset & y.lockset) == 0 {
                    continue;
                }
                let (Some(sx), Some(sy)) = (func_syscall(fx), func_syscall(fy)) else {
                    continue;
                };
                if !pf.blocks_may_race(x.loc.block, y.loc.block) {
                    target = Some((sx, sy, x.loc, y.loc));
                    break 'outer;
                }
            }
        }
        let (sx, sy, lx, ly) = target.expect("kernel has consistently locked cross-syscall pairs");
        let pseudo = BugSpec {
            id: BugId(9999),
            kind: BugKind::DataRace,
            difficulty: BugDifficulty::Easy,
            subsystem: k.syscall(sx).subsystem,
            summary: "pseudo: consistently locked pair".into(),
            syscalls: (sx, sy),
            racing_instrs: vec![lx, ly],
            harmful: false,
        };

        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "t");

        // Plain Razzer-PIC burns inferences on the statically impossible
        // target; the pre-filtered variant answers from the veto alone.
        let pic_plain = crate::pic::Pic::new(&ck, &k, &cfg);
        let svc_plain = PredictorService::direct(&pic_plain);
        let plain =
            find_candidates(&k, &cfg, &corpus, &pseudo, RazzerMode::Pic, Some(&svc_plain), 2);
        assert!(pic_plain.inferences() > 0, "plain PIC mode should have scored candidates");

        let pic_pref = crate::pic::Pic::new(&ck, &k, &cfg);
        let svc_pref = PredictorService::direct(&pic_pref);
        let filtered = find_candidates_prefiltered(
            &k,
            &cfg,
            &corpus,
            &pseudo,
            RazzerMode::Pic,
            Some(&svc_pref),
            &pf,
            2,
        );
        assert!(filtered.is_empty(), "veto must reject the locked pair");
        assert_eq!(pic_pref.inferences(), 0, "veto must spend zero inferences");
        // Nothing reproducible was lost: the dropped candidates could never
        // race (must-locksets are sound), so `plain`'s survivors are all
        // false positives anyway.
        let _ = plain;
    }

    #[test]
    fn reproduce_reports_latency_only_with_tps() {
        let (k, cfg, corpus) = setup();
        // An easy OV bug should reproduce within a modest schedule budget.
        let bug = k.bugs.iter().find(|b| b.kind == BugKind::OrderViolation).unwrap();
        let candidates = find_candidates(&k, &cfg, &corpus, bug, RazzerMode::Relax, None, 3);
        assert!(!candidates.is_empty());
        let res = reproduce(&k, &corpus, &candidates, bug, RazzerMode::Relax, 60, 2.8, 4);
        assert_eq!(res.candidates, candidates.len());
        if res.true_positives > 0 {
            assert!(res.avg_hours.is_some());
            // Equal-latency queues can make avg exceed worst by float
            // accumulation error only.
            assert!(res.worst_hours.unwrap() + 1e-6 >= res.avg_hours.unwrap());
        } else {
            assert!(res.avg_hours.is_none());
        }
    }
}
