//! The deployed coverage predictor: trained model + tuned threshold + graph
//! construction, packaged behind the interface the testing workflow uses
//! ("given a CT candidate, predict its block coverage").

use snowcat_cfg::KernelCfg;
use snowcat_corpus::StiProfile;
use snowcat_graph::{CtGraph, CtGraphBuilder};
use snowcat_kernel::{BlockId, Kernel, ThreadId};
use snowcat_nn::{Checkpoint, PicModel};
use snowcat_vm::ScheduleHints;

/// Predicted coverage for one CT candidate.
#[derive(Debug, Clone)]
pub struct PredictedCoverage {
    /// The CT graph the prediction was made on.
    pub graph: CtGraph,
    /// Per-vertex positive-class probabilities.
    pub probs: Vec<f32>,
    /// Thresholded predictions.
    pub positive: Vec<bool>,
}

impl PredictedCoverage {
    /// (thread, block) pairs predicted covered.
    pub fn positive_blocks(&self) -> Vec<(ThreadId, BlockId)> {
        self.graph
            .verts
            .iter()
            .zip(&self.positive)
            .filter(|(_, &p)| p)
            .map(|(v, _)| (v.thread, v.block))
            .collect()
    }

    /// Whether any vertex for `block` (either thread) is predicted covered.
    pub fn covers_block(&self, block: BlockId) -> bool {
        self.graph
            .verts
            .iter()
            .zip(&self.positive)
            .any(|(v, &p)| p && v.block == block)
    }

    /// Indices of predicted-positive vertices.
    pub fn positive_indices(&self) -> Vec<usize> {
        self.positive
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The deployable PIC predictor.
pub struct Pic<'k> {
    /// The trained model.
    pub model: PicModel,
    /// Tuned classification threshold.
    pub threshold: f32,
    builder: CtGraphBuilder<'k>,
    /// Inferences performed (for inference-budget accounting, §5.3.1 caps
    /// these at 1,600 per CTI).
    pub inferences: u64,
}

impl<'k> Pic<'k> {
    /// Deploy a checkpoint against a kernel image.
    pub fn new(checkpoint: &Checkpoint, kernel: &'k Kernel, cfg: &'k KernelCfg) -> Self {
        Self {
            model: checkpoint.restore(),
            threshold: checkpoint.threshold,
            builder: CtGraphBuilder::new(kernel, cfg),
            inferences: 0,
        }
    }

    /// Access the underlying graph builder.
    pub fn builder(&self) -> &CtGraphBuilder<'k> {
        &self.builder
    }

    /// Build the schedule-independent base graph of a CTI (reused across
    /// interleaving candidates).
    pub fn base_graph(&self, a: &StiProfile, b: &StiProfile) -> CtGraph {
        self.builder.build_base(&a.seq, &b.seq)
    }

    /// Predict coverage of a CT candidate, given its CTI's base graph.
    pub fn predict_with_base(
        &mut self,
        base: &CtGraph,
        a: &StiProfile,
        b: &StiProfile,
        hints: &ScheduleHints,
    ) -> PredictedCoverage {
        let graph = self.builder.with_schedule(base, &a.seq, &b.seq, hints);
        let probs = self.model.forward(&graph);
        let positive = probs.iter().map(|&p| p >= self.threshold).collect();
        self.inferences += 1;
        PredictedCoverage { graph, probs, positive }
    }

    /// Predict coverage *and* inter-thread-flow probabilities of a CT
    /// candidate (the flow head is only meaningful on models trained with
    /// [`snowcat_nn::train_with_flows`]). The second return value is aligned
    /// with `graph.edges` (0.0 on non-InterFlow edges).
    pub fn predict_with_flows(
        &mut self,
        base: &CtGraph,
        a: &StiProfile,
        b: &StiProfile,
        hints: &ScheduleHints,
    ) -> (PredictedCoverage, Vec<f32>) {
        let graph = self.builder.with_schedule(base, &a.seq, &b.seq, hints);
        let (probs, cache) = self.model.forward_cached(&graph);
        let flows = self.model.forward_flows(&graph, &cache);
        let positive = probs.iter().map(|&p| p >= self.threshold).collect();
        self.inferences += 1;
        (PredictedCoverage { graph, probs, positive }, flows)
    }

    /// Predict coverage of a CT candidate from scratch.
    pub fn predict(
        &mut self,
        a: &StiProfile,
        b: &StiProfile,
        hints: &ScheduleHints,
    ) -> PredictedCoverage {
        let base = self.base_graph(a, b);
        self.predict_with_base(&base, a, b, hints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_corpus::StiFuzzer;
    use snowcat_kernel::{generate, GenConfig};
    use snowcat_nn::PicConfig;
    use snowcat_vm::propose_hints;

    #[test]
    fn predictor_produces_aligned_outputs() {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let mut fz = StiFuzzer::new(&k, 1);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "t");
        let mut pic = Pic::new(&ck, &k, &cfg);
        let mut rng = rand::rngs::mock::StepRng::new(42, 77);
        let hints = propose_hints(&mut rng, corpus[0].seq.steps, corpus[1].seq.steps);
        let pred = pic.predict(&corpus[0], &corpus[1], &hints);
        assert_eq!(pred.probs.len(), pred.graph.num_verts());
        assert_eq!(pred.positive.len(), pred.graph.num_verts());
        assert_eq!(pic.inferences, 1);
        // positive_blocks consistent with positive flags.
        assert_eq!(pred.positive_blocks().len(), pred.positive_indices().len());
    }

    #[test]
    fn base_graph_reuse_matches_fresh_build() {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let mut fz = StiFuzzer::new(&k, 2);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "t");
        let mut pic = Pic::new(&ck, &k, &cfg);
        let mut rng = rand::rngs::mock::StepRng::new(7, 3);
        let hints = propose_hints(&mut rng, corpus[2].seq.steps, corpus[3].seq.steps);
        let base = pic.base_graph(&corpus[2], &corpus[3]);
        let via_base = pic.predict_with_base(&base, &corpus[2], &corpus[3], &hints);
        let fresh = pic.predict(&corpus[2], &corpus[3], &hints);
        assert_eq!(via_base.graph, fresh.graph);
        assert_eq!(via_base.probs, fresh.probs);
    }
}
