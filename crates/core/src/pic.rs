//! The deployed coverage predictor: trained model + tuned threshold + graph
//! construction, packaged behind the interface the testing workflow uses
//! ("given a CT candidate, predict its block coverage").
//!
//! Inference goes through the [`crate::predictor::CoveragePredictor`] trait,
//! which [`Pic`] implements; this module keeps the graph-construction side
//! (base graphs, schedule overlays) and the prediction result type.

use crate::predictor::{fnv1a, CoveragePredictor, FlowPredictor, PredictorStats};
use snowcat_cfg::KernelCfg;
use snowcat_corpus::StiProfile;
use snowcat_graph::{CtGraph, CtGraphBuilder};
use snowcat_kernel::{BlockId, Kernel, ThreadId};
use snowcat_nn::{Checkpoint, PicModel, PicSession};
use snowcat_vm::ScheduleHints;
use std::sync::atomic::{AtomicU64, Ordering};

/// Predicted coverage for one CT candidate.
#[derive(Debug, Clone)]
pub struct PredictedCoverage {
    /// The CT graph the prediction was made on.
    pub graph: CtGraph,
    /// Per-vertex positive-class probabilities.
    pub probs: Vec<f32>,
    /// Thresholded predictions.
    pub positive: Vec<bool>,
}

impl PredictedCoverage {
    /// (thread, block) pairs predicted covered.
    pub fn positive_blocks(&self) -> Vec<(ThreadId, BlockId)> {
        self.graph
            .verts
            .iter()
            .zip(&self.positive)
            .filter(|(_, &p)| p)
            .map(|(v, _)| (v.thread, v.block))
            .collect()
    }

    /// Whether any vertex for `block` (either thread) is predicted covered.
    pub fn covers_block(&self, block: BlockId) -> bool {
        self.graph.verts.iter().zip(&self.positive).any(|(v, &p)| p && v.block == block)
    }

    /// Indices of predicted-positive vertices.
    pub fn positive_indices(&self) -> Vec<usize> {
        self.positive.iter().enumerate().filter(|(_, &p)| p).map(|(i, _)| i).collect()
    }
}

/// The deployable PIC predictor: a restored model, its tuned threshold, and
/// the graph builder for the kernel it was deployed against.
///
/// Inference state (the model, the threshold, the inference counter) is
/// encapsulated: predictions go through [`CoveragePredictor::predict_batch`]
/// / [`CoveragePredictor::predict_one`], counters come back via
/// [`CoveragePredictor::stats`], and the model/threshold are read-only
/// through [`Pic::model`] and [`Pic::threshold`].
pub struct Pic<'k> {
    model: PicModel,
    threshold: f32,
    builder: CtGraphBuilder<'k>,
    /// Inferences performed (for inference-budget accounting, §5.3.1 caps
    /// these at 1,600 per CTI). Atomic so shared references can predict
    /// concurrently (see [`crate::predictor::ParallelPredictor`]).
    inferences: AtomicU64,
    batches: AtomicU64,
    fingerprint: u64,
    name: String,
}

impl<'k> Pic<'k> {
    /// Deploy a checkpoint against a kernel image.
    pub fn new(checkpoint: &Checkpoint, kernel: &'k Kernel, cfg: &'k KernelCfg) -> Self {
        Self {
            model: checkpoint.restore(),
            threshold: checkpoint.threshold,
            builder: CtGraphBuilder::new(kernel, cfg),
            inferences: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            fingerprint: checkpoint_fingerprint(checkpoint),
            name: checkpoint.name.clone(),
        }
    }

    /// Enable the static may-race node feature: vertices on `blocks` carry
    /// [`snowcat_graph::Vertex::may_race`] in every graph this predictor
    /// builds. Pass the block set of `snowcat-analysis`' may-race pass.
    pub fn with_may_race_blocks(mut self, blocks: snowcat_vm::BitSet) -> Self {
        self.builder.may_race_blocks = Some(blocks);
        self
    }

    /// Enable the per-block static feature channels (alias-class density,
    /// must-lockset size, refined may-race degree): every graph this
    /// predictor builds stamps `feats[block]` onto its vertices. Pass the
    /// `snowcat-analysis` per-block channel table, indexed by `BlockId`.
    pub fn with_static_feats(mut self, feats: Vec<snowcat_graph::StaticFeats>) -> Self {
        self.builder.block_static_feats = Some(feats);
        self
    }

    /// The restored model (read-only).
    pub fn model(&self) -> &PicModel {
        &self.model
    }

    /// The tuned classification threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Total inferences performed so far (same as `stats().inferences`).
    pub fn inferences(&self) -> u64 {
        self.inferences.load(Ordering::Relaxed)
    }

    /// Access the underlying graph builder.
    pub fn builder(&self) -> &CtGraphBuilder<'k> {
        &self.builder
    }

    /// Build the schedule-independent base graph of a CTI (reused across
    /// interleaving candidates).
    pub fn base_graph(&self, a: &StiProfile, b: &StiProfile) -> CtGraph {
        self.builder.build_base(&a.seq, &b.seq)
    }

    /// Overlay a candidate schedule on a CTI's base graph, producing the
    /// complete CT graph a predictor consumes.
    pub fn candidate_graph(
        &self,
        base: &CtGraph,
        a: &StiProfile,
        b: &StiProfile,
        hints: &ScheduleHints,
    ) -> CtGraph {
        self.builder.with_schedule(base, &a.seq, &b.seq, hints)
    }
}

impl CoveragePredictor for Pic<'_> {
    fn predict_batch(&self, graphs: &[CtGraph]) -> Vec<PredictedCoverage> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.inferences.fetch_add(graphs.len() as u64, Ordering::Relaxed);
        // One session per batch: every graph after the first reuses the same
        // scratch buffers and CSR arrays, so steady-state inference does not
        // touch the allocator.
        let mut session = PicSession::new();
        graphs
            .iter()
            .map(|graph| {
                let mut probs = Vec::new();
                self.model.forward_into(graph, &mut session, &mut probs);
                let positive = probs.iter().map(|&p| p >= self.threshold).collect();
                PredictedCoverage { graph: graph.clone(), probs, positive }
            })
            .collect()
    }

    fn stats(&self) -> PredictorStats {
        PredictorStats {
            inferences: self.inferences.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            ..PredictorStats::default()
        }
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

impl FlowPredictor for Pic<'_> {
    fn predict_with_flows(&self, graph: &CtGraph) -> (PredictedCoverage, Vec<f32>) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.inferences.fetch_add(1, Ordering::Relaxed);
        let (probs, cache) = self.model.forward_cached(graph);
        let flows = self.model.forward_flows(graph, &cache);
        let positive = probs.iter().map(|&p| p >= self.threshold).collect();
        (PredictedCoverage { graph: graph.clone(), probs, positive }, flows)
    }
}

/// Content fingerprint of a checkpoint, used to key prediction caches: two
/// deployments of the same trained model agree, different trainings (almost
/// surely) differ. Hashes the provenance name, the threshold, the model
/// hyperparameters and a prefix of the learned token embedding.
pub fn checkpoint_fingerprint(ck: &Checkpoint) -> u64 {
    let mut h = fnv1a(0xcbf2_9ce4_8422_2325, ck.name.as_bytes());
    h = fnv1a(h, &ck.threshold.to_bits().to_le_bytes());
    h = fnv1a(h, &(ck.cfg.hidden as u64).to_le_bytes());
    h = fnv1a(h, &(ck.cfg.layers as u64).to_le_bytes());
    let emb = &ck.params.tok_emb.data;
    h = fnv1a(h, &(emb.len() as u64).to_le_bytes());
    for v in emb.iter().take(256) {
        h = fnv1a(h, &v.to_bits().to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_corpus::StiFuzzer;
    use snowcat_kernel::{generate, GenConfig};
    use snowcat_nn::PicConfig;
    use snowcat_vm::propose_hints;

    #[test]
    fn predictor_produces_aligned_outputs() {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let mut fz = StiFuzzer::new(&k, 1);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "t");
        let pic = Pic::new(&ck, &k, &cfg);
        let mut rng = rand::rngs::mock::StepRng::new(42, 77);
        let hints = propose_hints(&mut rng, corpus[0].seq.steps, corpus[1].seq.steps);
        let base = pic.base_graph(&corpus[0], &corpus[1]);
        let graph = pic.candidate_graph(&base, &corpus[0], &corpus[1], &hints);
        let pred = pic.predict_one(&graph);
        assert_eq!(pred.probs.len(), pred.graph.num_verts());
        assert_eq!(pred.positive.len(), pred.graph.num_verts());
        assert_eq!(pic.inferences(), 1);
        assert_eq!(pic.stats().inferences, 1);
        // positive_blocks consistent with positive flags.
        assert_eq!(pred.positive_blocks().len(), pred.positive_indices().len());
    }

    #[test]
    fn batch_prediction_matches_one_by_one() {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let mut fz = StiFuzzer::new(&k, 2);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "t");
        let pic = Pic::new(&ck, &k, &cfg);
        let mut rng = rand::rngs::mock::StepRng::new(7, 3);
        let base = pic.base_graph(&corpus[2], &corpus[3]);
        let graphs: Vec<CtGraph> = (0..4)
            .map(|_| {
                let hints = propose_hints(&mut rng, corpus[2].seq.steps, corpus[3].seq.steps);
                pic.candidate_graph(&base, &corpus[2], &corpus[3], &hints)
            })
            .collect();
        let batch = pic.predict_batch(&graphs);
        assert_eq!(batch.len(), graphs.len());
        for (g, p) in graphs.iter().zip(&batch) {
            let one = pic.predict_one(g);
            assert_eq!(one.graph, p.graph);
            assert_eq!(one.probs, p.probs);
            assert_eq!(one.positive, p.positive);
        }
        assert_eq!(pic.inferences(), 8, "4 batched + 4 single");
    }

    #[test]
    fn checkpoint_fingerprint_distinguishes_models() {
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let a = Checkpoint::new(&model, 0.5, "a");
        let b = Checkpoint::new(&model, 0.5, "b");
        let c = Checkpoint::new(&model, 0.25, "a");
        assert_eq!(checkpoint_fingerprint(&a), checkpoint_fingerprint(&a));
        assert_ne!(checkpoint_fingerprint(&a), checkpoint_fingerprint(&b));
        assert_ne!(checkpoint_fingerprint(&a), checkpoint_fingerprint(&c));
    }
}
