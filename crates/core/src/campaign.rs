//! Cumulative testing campaigns over a CTI stream (Figure 5).
//!
//! A campaign feeds a stream of CTIs to an explorer (PCT or MLPCT+strategy),
//! gives each a fixed execution budget, and tracks cumulative unique
//! potential data races, schedule-dependent block coverage and exposed bugs
//! against *simulated testing time* (see [`crate::costmodel`]).

use crate::costmodel::CostModel;
use crate::error::SnowcatError;
use crate::mlpct::{explore_mlpct, explore_pct, ExploreConfig};
use crate::pic::Pic;
use crate::predictor::PredictorService;
use crate::strategy::{S1NewBitmap, S2NewBlocks, S3LimitedTrials, SelectionStrategy};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use snowcat_cfg::KernelCfg;
use snowcat_corpus::StiProfile;
use snowcat_events::{CampaignEvent, EventSink};
use snowcat_kernel::{BugId, Kernel};
use snowcat_nn::Checkpoint;
use snowcat_race::RaceSet;
use snowcat_vm::BitSet;

/// One point on a campaign's coverage-vs-time curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistoryPoint {
    /// CTIs processed so far.
    pub ctis: usize,
    /// Dynamic executions so far.
    pub executions: u64,
    /// Inferences so far.
    pub inferences: u64,
    /// Simulated hours elapsed (cost model).
    pub hours: f64,
    /// Unique potential data races so far.
    pub races: usize,
    /// Unique harmful (non-benign) races so far.
    pub harmful_races: usize,
    /// Schedule-dependent blocks covered so far.
    pub sched_dep_blocks: usize,
    /// Planted bugs exposed so far.
    pub bugs: usize,
}

/// A full campaign result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Explorer label (`"PCT"`, `"MLPCT-S1"`, …).
    pub label: String,
    /// History sampled after every CTI.
    pub history: Vec<HistoryPoint>,
    /// Bugs exposed, in discovery order.
    pub bugs_found: Vec<BugId>,
}

impl CampaignResult {
    /// Final history point (zeros if the stream was empty).
    pub fn last(&self) -> HistoryPoint {
        self.history.last().copied().unwrap_or(HistoryPoint {
            ctis: 0,
            executions: 0,
            inferences: 0,
            hours: 0.0,
            races: 0,
            harmful_races: 0,
            sched_dep_blocks: 0,
            bugs: 0,
        })
    }

    /// Simulated hours at which `races` unique races were first reached,
    /// if ever (used for the "SKI took 304 hours to reach 3,500 races"
    /// style comparisons).
    pub fn hours_to_races(&self, races: usize) -> Option<f64> {
        self.history.iter().find(|h| h.races >= races).map(|h| h.hours)
    }
}

/// Which explorer a campaign uses.
pub enum Explorer<'p, 'k> {
    /// Plain PCT (the SKI baseline).
    Pct,
    /// MLPCT: a predictor service + a selection strategy.
    MlPct {
        /// The predictor service (graph building + inference chain).
        service: PredictorService<'p, 'k>,
        /// The candidate-selection strategy.
        strategy: Box<dyn SelectionStrategy>,
    },
}

impl<'p, 'k> Explorer<'p, 'k> {
    /// MLPCT explorer predicting directly through the deployed PIC.
    pub fn mlpct(pic: &'p Pic<'k>, strategy: Box<dyn SelectionStrategy>) -> Self {
        Explorer::MlPct { service: PredictorService::direct(pic), strategy }
    }
}

impl Explorer<'_, '_> {
    /// Display label for campaign results (`"PCT"`, `"MLPCT-S1"`, …).
    pub fn label(&self) -> String {
        match self {
            Explorer::Pct => "PCT".into(),
            Explorer::MlPct { strategy, .. } => format!("MLPCT-{}", strategy.name()),
        }
    }
}

/// Run a campaign over `stream` (pairs of corpus indices).
///
/// Equivalent to [`run_campaign_budgeted`] with no time budget.
pub fn run_campaign(
    kernel: &Kernel,
    corpus: &[StiProfile],
    stream: &[(usize, usize)],
    explorer: Explorer<'_, '_>,
    explore_cfg: &ExploreConfig,
    cost: &CostModel,
) -> CampaignResult {
    run_campaign_budgeted(kernel, corpus, stream, explorer, explore_cfg, cost, None)
}

/// Run a campaign over `stream`, stopping once `max_hours` of simulated
/// testing time has been spent (if given). Time-budgeted campaigns are the
/// faithful Figure-5 comparison: a cheap explorer processes more CTIs in
/// the same wall-clock window.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_budgeted(
    kernel: &Kernel,
    corpus: &[StiProfile],
    stream: &[(usize, usize)],
    mut explorer: Explorer<'_, '_>,
    explore_cfg: &ExploreConfig,
    cost: &CostModel,
    max_hours: Option<f64>,
) -> CampaignResult {
    let label = explorer.label();
    let mut races = RaceSet::new();
    let mut harmful = RaceSet::new();
    let mut blocks = BitSet::new(kernel.num_blocks());
    let mut bugs_found: Vec<BugId> = Vec::new();
    let mut executions = 0u64;
    let mut inferences = 0u64;
    let mut history = Vec::with_capacity(stream.len());

    for (ci, &(ia, ib)) in stream.iter().enumerate() {
        if let Some(h) = max_hours {
            if cost.hours(executions, inferences) >= h {
                break;
            }
        }
        let a = &corpus[ia];
        let b = &corpus[ib];
        let cfg = ExploreConfig {
            // Decorrelate schedule proposals across CTIs deterministically.
            seed: explore_cfg.seed ^ (ci as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..*explore_cfg
        };
        let outcome = match &mut explorer {
            Explorer::Pct => explore_pct(kernel, a, b, &cfg),
            Explorer::MlPct { service, strategy } => {
                explore_mlpct(kernel, service, strategy.as_mut(), a, b, &cfg)
            }
        };
        executions += outcome.executions;
        inferences += outcome.inferences;
        for r in &outcome.races {
            races.insert(r.key);
            if !r.benign {
                harmful.insert(r.key);
            }
        }
        blocks.union_with(&outcome.sched_dep_blocks);
        for bug in outcome.bugs {
            if !bugs_found.contains(&bug) {
                bugs_found.push(bug);
            }
        }
        history.push(HistoryPoint {
            ctis: ci + 1,
            executions,
            inferences,
            hours: cost.hours(executions, inferences),
            races: races.len(),
            harmful_races: harmful.len(),
            sched_dep_blocks: blocks.count(),
            bugs: bugs_found.len(),
        });
    }
    CampaignResult { label, history, bugs_found }
}

/// Owned description of an explorer, usable across threads (unlike
/// [`Explorer`], which borrows a deployed [`Pic`]).
#[allow(clippy::large_enum_variant)] // checkpoints are megabytes; Pct is a tag
#[derive(Clone)]
pub enum ExplorerSpec {
    /// Plain PCT.
    Pct,
    /// MLPCT with its own copy of the model and a strategy.
    MlPct {
        /// Model checkpoint (each campaign thread deploys its own copy).
        checkpoint: Checkpoint,
        /// Which selection strategy to run.
        strategy: StrategyKind,
    },
    /// Fault-injection seam: the worker panics with `reason` instead of
    /// running. Used by the harness's fault plans to prove that a panicking
    /// campaign thread is contained per-campaign rather than aborting the
    /// process.
    Faulty {
        /// The panic payload the worker will raise.
        reason: String,
        /// The fault-plan entry that planted this spec (e.g. `panic@1`),
        /// threaded into [`SnowcatError::CampaignFailed`] so per-slot
        /// results keep naming what fired.
        fault: Option<String>,
    },
}

/// Strategy selector for [`ExplorerSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// S1 — new predicted-coverage bitmap.
    S1,
    /// S2 — new predicted-positive block.
    S2,
    /// S3 — per-block trial limit.
    S3(usize),
}

impl StrategyKind {
    /// Instantiate the strategy.
    pub fn build(self) -> Box<dyn SelectionStrategy> {
        match self {
            StrategyKind::S1 => Box::new(S1NewBitmap::new()),
            StrategyKind::S2 => Box::new(S2NewBlocks::new()),
            StrategyKind::S3(limit) => Box::new(S3LimitedTrials::new(limit)),
        }
    }
}

impl ExplorerSpec {
    /// Display label matching what the spawned [`Explorer`] would report.
    pub fn label(&self) -> String {
        match self {
            ExplorerSpec::Pct => "PCT".into(),
            ExplorerSpec::MlPct { strategy, .. } => {
                format!("MLPCT-{}", strategy.build().name())
            }
            ExplorerSpec::Faulty { .. } => "FAULTY".into(),
        }
    }
}

/// Render a `catch_unwind` panic payload as a message (string payloads are
/// passed through; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".into()
    }
}

/// Run several campaigns over the same stream concurrently, one OS thread
/// per explorer (campaigns are embarrassingly parallel: each owns its model
/// copy, strategy state and VM executions).
///
/// Results come back in spec order, identical to running each campaign
/// serially with [`run_campaign`]. A panicking worker is contained to its
/// own slot as [`SnowcatError::CampaignFailed`]; the other campaigns'
/// results are preserved.
pub fn run_campaigns_parallel(
    kernel: &Kernel,
    cfg: &KernelCfg,
    corpus: &[StiProfile],
    stream: &[(usize, usize)],
    specs: &[ExplorerSpec],
    explore_cfg: &ExploreConfig,
    cost: &CostModel,
) -> Vec<Result<CampaignResult, SnowcatError>> {
    run_campaigns_parallel_budgeted(kernel, cfg, corpus, stream, specs, explore_cfg, cost, None)
}

/// [`run_campaigns_parallel`] with a per-campaign simulated-time budget.
#[allow(clippy::too_many_arguments)]
pub fn run_campaigns_parallel_budgeted(
    kernel: &Kernel,
    cfg: &KernelCfg,
    corpus: &[StiProfile],
    stream: &[(usize, usize)],
    specs: &[ExplorerSpec],
    explore_cfg: &ExploreConfig,
    cost: &CostModel,
    max_hours: Option<f64>,
) -> Vec<Result<CampaignResult, SnowcatError>> {
    run_campaigns_parallel_instrumented(
        kernel,
        cfg,
        corpus,
        stream,
        specs,
        explore_cfg,
        cost,
        max_hours,
        None,
    )
}

/// [`run_campaigns_parallel_budgeted`] plus worker-lifecycle events: each
/// slot emits `WorkerStarted` when its thread begins and `WorkerFinished`
/// (with the triggering fault-plan entry, if any) when it stores its
/// result. With `events: None` this is exactly the uninstrumented runner.
#[allow(clippy::too_many_arguments)]
pub fn run_campaigns_parallel_instrumented(
    kernel: &Kernel,
    cfg: &KernelCfg,
    corpus: &[StiProfile],
    stream: &[(usize, usize)],
    specs: &[ExplorerSpec],
    explore_cfg: &ExploreConfig,
    cost: &CostModel,
    max_hours: Option<f64>,
    events: Option<&EventSink>,
) -> Vec<Result<CampaignResult, SnowcatError>> {
    type Slot = Option<Result<CampaignResult, SnowcatError>>;
    let results: Mutex<Vec<Slot>> = Mutex::new((0..specs.len()).map(|_| None).collect());
    // The scope itself only errors if a *worker thread* panicked past its
    // own catch_unwind, which the per-worker wrapper below makes impossible.
    let scope_result = crossbeam::thread::scope(|scope| {
        for (i, spec) in specs.iter().enumerate() {
            let results = &results;
            scope.spawn(move |_| {
                let spawned_at = std::time::Instant::now();
                if let Some(sink) = events {
                    sink.campaign(CampaignEvent::WorkerStarted {
                        slot: i as u64,
                        label: spec.label(),
                    });
                }
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match spec {
                    ExplorerSpec::Pct => run_campaign_budgeted(
                        kernel,
                        corpus,
                        stream,
                        Explorer::Pct,
                        explore_cfg,
                        cost,
                        max_hours,
                    ),
                    ExplorerSpec::MlPct { checkpoint, strategy } => {
                        let pic = Pic::new(checkpoint, kernel, cfg);
                        run_campaign_budgeted(
                            kernel,
                            corpus,
                            stream,
                            Explorer::mlpct(&pic, strategy.build()),
                            explore_cfg,
                            cost,
                            max_hours,
                        )
                    }
                    ExplorerSpec::Faulty { reason, .. } => panic!("{}", reason.clone()),
                }));
                let injected = match spec {
                    ExplorerSpec::Faulty { fault, .. } => fault.clone(),
                    _ => None,
                };
                let res = run.map_err(|payload| SnowcatError::CampaignFailed {
                    label: spec.label(),
                    message: panic_message(payload.as_ref()),
                    fault: injected.clone(),
                });
                if let Some(sink) = events {
                    sink.campaign(CampaignEvent::WorkerFinished {
                        slot: i as u64,
                        label: spec.label(),
                        ok: res.is_ok(),
                        fault: injected,
                        elapsed_us: spawned_at.elapsed().as_micros() as u64,
                    });
                }
                results.lock()[i] = Some(res);
            });
        }
    });
    debug_assert!(scope_result.is_ok(), "worker panics are contained by catch_unwind");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every campaign thread stores its result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::S1NewBitmap;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use snowcat_cfg::KernelCfg;
    use snowcat_corpus::{random_cti_pairs, StiFuzzer};
    use snowcat_kernel::{generate, GenConfig};
    use snowcat_nn::{Checkpoint, PicConfig, PicModel};

    fn setup() -> (Kernel, KernelCfg, Vec<StiProfile>, Vec<(usize, usize)>) {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let mut fz = StiFuzzer::new(&k, 1);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let stream = random_cti_pairs(&mut rng, corpus.len(), 5);
        (k, cfg, corpus, stream)
    }

    #[test]
    fn pct_campaign_accumulates_monotonically() {
        let (k, _, corpus, stream) = setup();
        let cfg = ExploreConfig { exec_budget: 6, ..Default::default() };
        let res = run_campaign(&k, &corpus, &stream, Explorer::Pct, &cfg, &CostModel::default());
        assert_eq!(res.label, "PCT");
        assert_eq!(res.history.len(), stream.len());
        for w in res.history.windows(2) {
            assert!(w[1].races >= w[0].races);
            assert!(w[1].sched_dep_blocks >= w[0].sched_dep_blocks);
            assert!(w[1].hours >= w[0].hours);
            assert!(w[1].bugs >= w[0].bugs);
        }
    }

    #[test]
    fn mlpct_campaign_counts_inferences() {
        let (k, cfg_k, corpus, stream) = setup();
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "t");
        let pic = Pic::new(&ck, &k, &cfg_k);
        let cfg = ExploreConfig { exec_budget: 4, inference_cap: 40, ..Default::default() };
        let res = run_campaign(
            &k,
            &corpus,
            &stream,
            Explorer::mlpct(&pic, Box::new(S1NewBitmap::new())),
            &cfg,
            &CostModel::default(),
        );
        assert_eq!(res.label, "MLPCT-S1");
        let last = res.last();
        assert!(last.inferences > 0);
        assert!(last.inferences >= last.executions);
    }

    #[test]
    fn time_budget_truncates_campaign() {
        let (k, _, corpus, stream) = setup();
        let cfg = ExploreConfig { exec_budget: 6, ..Default::default() };
        let cost = CostModel::default();
        let full = run_campaign(&k, &corpus, &stream, Explorer::Pct, &cfg, &cost);
        let budget = full.last().hours / 2.0;
        let cut =
            run_campaign_budgeted(&k, &corpus, &stream, Explorer::Pct, &cfg, &cost, Some(budget));
        assert!(cut.history.len() < full.history.len());
        // The budget is checked before each CTI, so at most one CTI of
        // overshoot is possible.
        assert!(cut.last().hours <= budget + full.last().hours / stream.len() as f64 + 1e-9);
    }

    #[test]
    fn parallel_campaigns_match_serial() {
        let (k, cfg_k, corpus, stream) = setup();
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "t");
        let ecfg = ExploreConfig { exec_budget: 4, inference_cap: 40, ..Default::default() };
        let cost = CostModel::default();
        let specs = vec![
            ExplorerSpec::Pct,
            ExplorerSpec::MlPct { checkpoint: ck.clone(), strategy: StrategyKind::S1 },
            ExplorerSpec::MlPct { checkpoint: ck.clone(), strategy: StrategyKind::S3(2) },
        ];
        let par: Vec<CampaignResult> =
            run_campaigns_parallel(&k, &cfg_k, &corpus, &stream, &specs, &ecfg, &cost)
                .into_iter()
                .map(|r| r.expect("no faults injected"))
                .collect();
        // Serial reference.
        let serial_pct = run_campaign(&k, &corpus, &stream, Explorer::Pct, &ecfg, &cost);
        assert_eq!(par[0].history, serial_pct.history);
        let pic = Pic::new(&ck, &k, &cfg_k);
        let serial_s1 = run_campaign(
            &k,
            &corpus,
            &stream,
            Explorer::mlpct(&pic, Box::new(S1NewBitmap::new())),
            &ecfg,
            &cost,
        );
        assert_eq!(par[1].history, serial_s1.history);
        assert_eq!(par[2].label, "MLPCT-S3(2)");
    }

    #[test]
    fn panicking_worker_is_contained_per_campaign() {
        let (k, cfg_k, corpus, stream) = setup();
        let ecfg = ExploreConfig { exec_budget: 4, ..Default::default() };
        let cost = CostModel::default();
        let specs = vec![
            ExplorerSpec::Pct,
            ExplorerSpec::Faulty {
                reason: "injected worker fault".into(),
                fault: Some("panic@1".into()),
            },
            ExplorerSpec::Pct,
        ];
        let par = run_campaigns_parallel(&k, &cfg_k, &corpus, &stream, &specs, &ecfg, &cost);
        assert_eq!(par.len(), 3);
        // The healthy campaigns both finish and agree with a serial run.
        let serial = run_campaign(&k, &corpus, &stream, Explorer::Pct, &ecfg, &cost);
        assert_eq!(par[0].as_ref().unwrap().history, serial.history);
        assert_eq!(par[2].as_ref().unwrap().history, serial.history);
        // The faulty one surfaces as a typed error naming its label and
        // carrying the panic payload.
        match &par[1] {
            Err(SnowcatError::CampaignFailed { label, message, fault }) => {
                assert_eq!(label, "FAULTY");
                assert_eq!(message, "injected worker fault");
                assert_eq!(fault.as_deref(), Some("panic@1"));
            }
            other => panic!("expected CampaignFailed, got {other:?}"),
        }
    }

    #[test]
    fn hours_to_races_finds_first_crossing() {
        let (k, _, corpus, stream) = setup();
        let cfg = ExploreConfig { exec_budget: 6, ..Default::default() };
        let res = run_campaign(&k, &corpus, &stream, Explorer::Pct, &cfg, &CostModel::default());
        let total = res.last().races;
        if total > 0 {
            let h = res.hours_to_races(1).expect("some point reached 1 race");
            assert!(h > 0.0);
            assert!(res.hours_to_races(total + 1).is_none());
        }
    }
}
