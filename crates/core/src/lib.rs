//! # snowcat-core — the Snowcat concurrency-testing framework
//!
//! The paper's primary contribution, assembled from the substrate crates:
//!
//! * [`pic`] — the deployed coverage predictor (model + threshold + graphs),
//! * [`strategy`] — CT-candidate selection strategies S1/S2/S3 (§3.3),
//! * [`mlpct`] — per-CTI interleaving exploration: PCT baseline vs MLPCT
//!   (§5.3.1),
//! * [`campaign`] — cumulative campaigns over CTI streams with simulated
//!   time accounting (Figure 5),
//! * [`razzer`] — directed race reproduction: Razzer / Razzer-Relax /
//!   Razzer-PIC (§5.6.1, Table 4),
//! * [`prefilter`] — sound static may-race pre-filter that vetoes and
//!   ranks CT candidates before GNN scoring (built on `snowcat-analysis`),
//! * [`snowboard`] — INS-PAIR clustering and exemplar sampling: SB-RND /
//!   SB-PIC (§5.6.2, Table 5),
//! * [`costmodel`] — the execution/inference cost model and the §A.6
//!   analytic filter economics,
//! * [`pipeline`] — end-to-end data collection + training + tuning,
//! * [`predictor`] — the unified [`predictor::CoveragePredictor`] service:
//!   batched inference, Table-1 baselines, a parallel worker-pool wrapper
//!   and the [`predictor::PredictorService`] bundle,
//! * [`predcache`] — content-addressed prediction memoization,
//! * [`error`] — [`error::SnowcatError`] and checkpoint/dataset I/O helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod costmodel;
pub mod error;
pub mod mlpct;
pub mod pic;
pub mod pipeline;
pub mod predcache;
pub mod predictor;
pub mod prefilter;
pub mod razzer;
pub mod snowboard;
pub mod strategy;
pub mod triage;

pub use campaign::{
    run_campaign, run_campaign_budgeted, run_campaigns_parallel, run_campaigns_parallel_budgeted,
    run_campaigns_parallel_instrumented, CampaignResult, Explorer, ExplorerSpec, HistoryPoint,
    StrategyKind,
};
pub use costmodel::{filter_economics, simulate_filter, CostModel, FilterEconomics};
pub use error::{
    decode_dataset_auto, decode_model_checkpoint_framed, encode_model_checkpoint_framed,
    load_checkpoint, load_dataset, save_checkpoint, save_checkpoint_json, save_dataset,
    SnowcatError, MIN_MODEL_VERSION, MODEL_MAGIC, MODEL_VERSION,
};
pub use mlpct::{explore_mlpct, explore_pct, explore_pct_native, ExploreConfig, ExploreOutcome};
pub use pic::{checkpoint_fingerprint, Pic, PredictedCoverage};
pub use pipeline::{
    as_flow_labeled, as_labeled, collect_data, fine_tune, pretrain_encoder, train_on,
    train_on_with_flows, train_pic, CollectedData, PipelineConfig, PipelineOutput, PipelineSummary,
};
pub use predcache::CachedPredictor;
pub use predictor::{
    graph_fingerprint, BaselineService, CoveragePredictor, FlowPredictor, ParallelPredictor,
    PredictorService, PredictorStats,
};
pub use prefilter::RacePrefilter;
pub use razzer::{
    find_candidates, find_candidates_prefiltered, racing_blocks, reproduce, RazzerMode, ReproResult,
};
pub use snowboard::{
    cluster_ctis, member_exposes_bug, predict_members, run_sampling_trials, sample_cluster,
    ClusterMember, InsPair, Sampler, SamplingOutcome,
};
pub use strategy::{
    standard_strategies, S1NewBitmap, S2NewBlocks, S3LimitedTrials, SelectionStrategy,
    StrategySnapshot,
};
pub use triage::{render_findings, triage, Finding};
