//! Static may-race pre-filter for CT candidate ranking.
//!
//! Razzer-PIC spends one GNN inference batch per candidate CTI. Many of
//! those candidates are statically hopeless: the target instruction pair is
//! consistently lock-protected, or the candidate STIs invoke syscalls whose
//! reachable accesses cannot overlap. The must-lockset analysis in
//! `snowcat-analysis` proves both facts *soundly* (its may-race set
//! over-approximates every dynamic race), so dropping such candidates
//! before GNN scoring can never lose a reproducible race — it only removes
//! inference work.
//!
//! [`RacePrefilter`] packages the static results for the testing workflow:
//! a target-level veto ([`RacePrefilter::blocks_may_race`]), a per-CTI
//! density score ([`RacePrefilter::sti_density`]) and a candidate ranking
//! ([`RacePrefilter::rank`]) used by
//! [`crate::razzer::find_candidates_prefiltered`].

use snowcat_analysis::{LocksetAnalysis, MayRace, ValueFlow};
use snowcat_cfg::KernelCfg;
use snowcat_corpus::StiProfile;
use snowcat_kernel::{BlockId, Kernel};
use snowcat_vm::{BitSet, Sti};
use std::sync::atomic::{AtomicU64, Ordering};

/// Static may-race knowledge, packaged for candidate filtering.
///
/// The filter keeps two runtime counters — candidates *vetoed* (dropped
/// without a prediction) and candidates *surviving* into GNN scoring — so
/// campaigns can report how much inference work the static layer saved.
pub struct RacePrefilter {
    may_race: MayRace,
    vetoes: AtomicU64,
    survivors: AtomicU64,
}

impl RacePrefilter {
    /// Run the static analysis and build the pre-filter on the
    /// alias-*refined* may-race set (value-flow pruned; still a sound
    /// over-approximation of every dynamic race).
    pub fn new(kernel: &Kernel, cfg: &KernelCfg) -> Self {
        let locksets = LocksetAnalysis::compute(kernel, cfg);
        let vf = ValueFlow::compute(kernel, cfg, &locksets);
        let (_coarse, refined) = MayRace::compute_refined(kernel, cfg, &locksets, &vf);
        Self::from_may_race(refined)
    }

    /// Build the pre-filter on the alias-blind (PR 3) may-race set — the
    /// `--coarse` compatibility mode and the baseline for precision
    /// comparisons.
    pub fn new_coarse(kernel: &Kernel, cfg: &KernelCfg) -> Self {
        let locksets = LocksetAnalysis::compute(kernel, cfg);
        Self::from_may_race(MayRace::compute(kernel, cfg, &locksets))
    }

    /// Wrap an already-computed may-race set.
    pub fn from_may_race(may_race: MayRace) -> Self {
        Self { may_race, vetoes: AtomicU64::new(0), survivors: AtomicU64::new(0) }
    }

    /// Candidates dropped by this filter (target vetoes + zero-density
    /// candidates) without spending a prediction.
    pub fn vetoed(&self) -> u64 {
        self.vetoes.load(Ordering::Relaxed)
    }

    /// Candidates that passed the static cuts into GNN scoring.
    pub fn survivors(&self) -> u64 {
        self.survivors.load(Ordering::Relaxed)
    }

    /// Record a target-level veto (used by
    /// [`crate::razzer::find_candidates_prefiltered`] when the racing-block
    /// pair itself cannot race and the whole reach set is skipped).
    pub(crate) fn count_target_veto(&self, dropped: u64) {
        self.vetoes.fetch_add(dropped, Ordering::Relaxed);
    }

    /// The underlying may-race set.
    pub fn may_race(&self) -> &MayRace {
        &self.may_race
    }

    /// Blocks participating in any may-race pair, for
    /// [`crate::pic::Pic::with_may_race_blocks`].
    pub fn may_race_blocks(&self) -> BitSet {
        self.may_race.blocks().clone()
    }

    /// Whether any may-race pair connects the two blocks (in either
    /// orientation). `false` means the static analysis *proves* no dynamic
    /// race between instructions of these blocks — e.g. every conflicting
    /// access pair shares a must-held lock.
    pub fn blocks_may_race(&self, a: BlockId, b: BlockId) -> bool {
        self.may_race
            .iter()
            .any(|k| (k.0.block == a && k.1.block == b) || (k.0.block == b && k.1.block == a))
    }

    /// May-race density of a CTI: total density over all syscall pairs the
    /// two STIs can run concurrently. Zero means no access of `a`'s
    /// syscalls can race any access of `b`'s.
    pub fn sti_density(&self, a: &Sti, b: &Sti) -> u64 {
        let mut total = 0u64;
        for ca in &a.calls {
            for cb in &b.calls {
                total += self.may_race.density(ca.syscall, cb.syscall);
            }
        }
        total
    }

    /// Rank candidate CTIs (corpus index pairs) by descending may-race
    /// density, dropping zero-density candidates entirely. The sort is
    /// stable, so equal-density candidates keep their discovery order.
    pub fn rank(
        &self,
        corpus: &[StiProfile],
        candidates: &[(usize, usize)],
    ) -> Vec<(usize, usize)> {
        let mut scored: Vec<((usize, usize), u64)> = candidates
            .iter()
            .map(|&(i, j)| ((i, j), self.sti_density(&corpus[i].sti, &corpus[j].sti)))
            .filter(|&(_, d)| d > 0)
            .collect();
        scored.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
        self.vetoes.fetch_add((candidates.len() - scored.len()) as u64, Ordering::Relaxed);
        self.survivors.fetch_add(scored.len() as u64, Ordering::Relaxed);
        scored.into_iter().map(|(pair, _)| pair).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_corpus::StiFuzzer;
    use snowcat_kernel::{generate, GenConfig};

    fn setup() -> (Kernel, KernelCfg, Vec<StiProfile>) {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let mut fz = StiFuzzer::new(&k, 1);
        fz.seed_each_syscall();
        fz.fuzz(20);
        let corpus = fz.into_corpus();
        (k, cfg, corpus)
    }

    #[test]
    fn planted_racing_blocks_survive_the_target_veto() {
        let (k, cfg, _) = setup();
        let pf = RacePrefilter::new(&k, &cfg);
        for bug in &k.bugs {
            let (a, b) = crate::razzer::racing_blocks(&k, bug).unwrap();
            assert!(pf.blocks_may_race(a, b), "bug {} vetoed statically", bug.id);
        }
    }

    #[test]
    fn carrier_syscall_pairs_have_positive_density() {
        let (k, cfg, _) = setup();
        let pf = RacePrefilter::new(&k, &cfg);
        for bug in &k.bugs {
            let a = Sti::new(vec![snowcat_vm::SyscallInvocation {
                syscall: bug.syscalls.0,
                args: [0; 3],
            }]);
            let b = Sti::new(vec![snowcat_vm::SyscallInvocation {
                syscall: bug.syscalls.1,
                args: [0; 3],
            }]);
            assert!(pf.sti_density(&a, &b) > 0, "bug {} carriers scored zero", bug.id);
        }
    }

    #[test]
    fn rank_is_a_stable_descending_permutation_of_positive_candidates() {
        let (k, cfg, corpus) = setup();
        let pf = RacePrefilter::new(&k, &cfg);
        let candidates: Vec<(usize, usize)> =
            (0..corpus.len().min(8)).flat_map(|i| (0..4).map(move |j| (i, j))).collect();
        let ranked = pf.rank(&corpus, &candidates);
        assert!(ranked.len() <= candidates.len());
        for pair in &ranked {
            assert!(candidates.contains(pair));
            assert!(pf.sti_density(&corpus[pair.0].sti, &corpus[pair.1].sti) > 0);
        }
        let densities: Vec<u64> =
            ranked.iter().map(|&(i, j)| pf.sti_density(&corpus[i].sti, &corpus[j].sti)).collect();
        assert!(densities.windows(2).all(|w| w[0] >= w[1]), "not descending: {densities:?}");
    }

    #[test]
    fn refined_prefilter_spends_strictly_fewer_inferences_than_coarse() {
        use crate::razzer::{find_candidates_prefiltered, RazzerMode};
        use snowcat_kernel::bugs::BugDifficulty;
        use snowcat_kernel::{BugId, BugKind, BugSpec, SyscallId};
        use snowcat_nn::{Checkpoint, PicConfig, PicModel};

        let (k, cfg, corpus) = setup();
        let coarse = RacePrefilter::new_coarse(&k, &cfg);
        let refined = RacePrefilter::new(&k, &cfg);
        assert!(
            refined.may_race().len() < coarse.may_race().len(),
            "refined set must shrink: {} vs {}",
            refined.may_race().len(),
            coarse.may_race().len()
        );

        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "t");
        let spend = |pf: &RacePrefilter, bug: &BugSpec| -> u64 {
            let pic = crate::pic::Pic::new(&ck, &k, &cfg);
            let svc = crate::predictor::PredictorService::direct(&pic);
            let _ = find_candidates_prefiltered(
                &k,
                &cfg,
                &corpus,
                bug,
                RazzerMode::Pic,
                Some(&svc),
                pf,
                2,
            );
            pic.inferences()
        };

        // Hand Razzer the false races the alias refinement disproves: coarse
        // may-race pairs whose block pair carries *no* refined pair (distinct
        // fields of one region, conflated by the field-insensitive pass).
        let func_syscall =
            |f| k.syscalls.iter().position(|s| s.func == f).map(|i| SyscallId(i as u32));
        let mut coarse_total = 0u64;
        let mut refined_total = 0u64;
        let mut pseudo_targets = 0u64;
        for key in coarse.may_race().iter() {
            if refined.blocks_may_race(key.0.block, key.1.block) {
                continue;
            }
            let (fx, fy) = (k.block(key.0.block).func, k.block(key.1.block).func);
            let (Some(sx), Some(sy)) = (func_syscall(fx), func_syscall(fy)) else {
                continue;
            };
            let pseudo = BugSpec {
                id: BugId(9000 + pseudo_targets as u16),
                kind: BugKind::DataRace,
                difficulty: BugDifficulty::Easy,
                subsystem: k.syscall(sx).subsystem,
                summary: "pseudo: alias-disproved pair".into(),
                syscalls: (sx, sy),
                racing_instrs: vec![key.0, key.1],
                harmful: false,
            };
            coarse_total += spend(&coarse, &pseudo);
            refined_total += spend(&refined, &pseudo);
            pseudo_targets += 1;
            if pseudo_targets >= 8 {
                break;
            }
        }
        assert!(pseudo_targets > 0, "refinement should disprove some block pair entirely");
        assert_eq!(refined_total, 0, "refined filter must veto alias-disproved targets");
        assert!(
            coarse_total > refined_total,
            "alias refinement must cut GNN inferences: refined {refined_total} vs coarse {coarse_total}"
        );
        // Planted bugs still survive into scoring under the refined filter,
        // and the runtime counters expose both sides of the cut.
        for bug in &k.bugs {
            let _ = spend(&refined, bug);
        }
        assert!(refined.survivors() > 0, "planted-bug candidates must survive");
        assert!(refined.vetoed() > 0, "alias-disproved targets must be counted as vetoes");
    }

    #[test]
    fn may_race_blocks_match_the_analysis_bitset() {
        let (k, cfg, _) = setup();
        let pf = RacePrefilter::new(&k, &cfg);
        let blocks = pf.may_race_blocks();
        assert!(blocks.count() > 0);
        for key in pf.may_race().iter() {
            assert!(blocks.contains(key.0.block.index()));
            assert!(blocks.contains(key.1.block.index()));
        }
    }
}
