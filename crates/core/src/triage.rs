//! Post-campaign triage.
//!
//! The paper spent ~100 person-hours manually pruning benign races and
//! deduplicating findings before reporting Table 3. This module automates
//! the mechanical part: group detected races by *function pair* (many
//! instruction-level races are one logical finding), drop the benign
//! classes (statistics counters), join against the planted-bug registry,
//! and rank what is left for human attention.

use serde::{Deserialize, Serialize};
use snowcat_kernel::{BugId, FuncId, Kernel};
use snowcat_race::{match_planted_bug, RaceReport};
use std::collections::HashMap;

/// One triaged finding: a function pair with its supporting race reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Finding {
    /// The two functions involved (normalized order).
    pub funcs: (FuncId, FuncId),
    /// Display names.
    pub func_names: (String, String),
    /// Distinct instruction-level races supporting this finding.
    pub race_count: usize,
    /// Any write/write race present (usually more severe).
    pub has_write_write: bool,
    /// Minimum serialized distance seen (tighter = easier to reproduce).
    pub min_distance: u64,
    /// Planted bug this finding matches, if any (ground truth available
    /// only on synthetic kernels — real campaigns leave this empty).
    pub matched_bug: Option<BugId>,
}

impl Finding {
    /// Ranking score: matched bugs first, then write/write races, then
    /// tight races with many supporting reports.
    fn score(&self) -> (u8, u8, usize, std::cmp::Reverse<u64>) {
        (
            u8::from(self.matched_bug.is_some()),
            u8::from(self.has_write_write),
            self.race_count,
            std::cmp::Reverse(self.min_distance),
        )
    }
}

/// Triage a pile of race reports (typically the union over a campaign).
///
/// Benign-classified reports are dropped; the rest are grouped by function
/// pair and ranked most-suspicious-first.
pub fn triage(kernel: &Kernel, reports: &[RaceReport]) -> Vec<Finding> {
    let mut groups: HashMap<(FuncId, FuncId), Finding> = HashMap::new();
    for r in reports {
        if r.benign {
            continue;
        }
        let fa = kernel.block(r.key.0.block).func;
        let fb = kernel.block(r.key.1.block).func;
        let funcs = if fa <= fb { (fa, fb) } else { (fb, fa) };
        let entry = groups.entry(funcs).or_insert_with(|| Finding {
            funcs,
            func_names: (kernel.func(funcs.0).name.clone(), kernel.func(funcs.1).name.clone()),
            race_count: 0,
            has_write_write: false,
            min_distance: u64::MAX,
            matched_bug: None,
        });
        entry.race_count += 1;
        entry.has_write_write |= r.write_write;
        entry.min_distance = entry.min_distance.min(r.distance);
        if entry.matched_bug.is_none() {
            entry.matched_bug = match_planted_bug(kernel, r);
        }
    }
    let mut findings: Vec<Finding> = groups.into_values().collect();
    findings.sort_by_key(|f| std::cmp::Reverse(f.score()));
    findings
}

/// Render a triage summary for human review.
pub fn render_findings(kernel: &Kernel, findings: &[Finding]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(s, "{} suspicious findings after triage:", findings.len()).unwrap();
    for (i, f) in findings.iter().enumerate() {
        let bug = match f.matched_bug {
            Some(id) => format!(" [planted bug #{} — {}]", id.0, kernel.bugs[id.index()].summary),
            None => String::new(),
        };
        writeln!(
            s,
            "{:>3}. {}() ~ {}()  races={} {}min_dist={}{}",
            i + 1,
            f.func_names.0,
            f.func_names.1,
            f.race_count,
            if f.has_write_write { "W/W " } else { "" },
            f.min_distance,
            bug,
        )
        .unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use snowcat_corpus::StiFuzzer;
    use snowcat_kernel::{generate, GenConfig};
    use snowcat_race::RaceDetector;
    use snowcat_vm::{propose_hints, run_ct, Cti, VmConfig};

    fn campaign_reports(k: &Kernel) -> Vec<RaceReport> {
        let mut fz = StiFuzzer::new(k, 3);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        let det = RaceDetector::default();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut reports = Vec::new();
        for bug in k.bugs.iter().take(4) {
            let ia = corpus.iter().position(|p| p.sti.calls[0].syscall == bug.syscalls.0).unwrap();
            let ib = corpus.iter().position(|p| p.sti.calls[0].syscall == bug.syscalls.1).unwrap();
            let cti = Cti::new(corpus[ia].sti.clone(), corpus[ib].sti.clone());
            for _ in 0..25 {
                let hints = propose_hints(&mut rng, corpus[ia].seq.steps, corpus[ib].seq.steps);
                let r = run_ct(k, &cti, hints, VmConfig::default());
                reports.extend(det.detect(k, &r));
            }
        }
        reports
    }

    #[test]
    fn triage_groups_drops_benign_and_ranks_bugs_first() {
        let k = generate(&GenConfig::default());
        let reports = campaign_reports(&k);
        assert!(!reports.is_empty(), "carrier pairs should race");
        let findings = triage(&k, &reports);
        assert!(!findings.is_empty());
        // No benign reports survive.
        for f in &findings {
            assert!(f.race_count > 0);
        }
        // Every matched-bug finding ranks above every unmatched one.
        let first_unmatched = findings.iter().position(|f| f.matched_bug.is_none());
        let last_matched = findings.iter().rposition(|f| f.matched_bug.is_some());
        if let (Some(u), Some(m)) = (first_unmatched, last_matched) {
            assert!(m < u || findings[m].matched_bug.is_some());
            assert!(
                findings[..u].iter().all(|f| f.matched_bug.is_some()) || u == 0,
                "matched bugs must sort first"
            );
        }
        // At least one planted bug should be re-discovered by pure race
        // triage.
        assert!(
            findings.iter().any(|f| f.matched_bug.is_some()),
            "triage should match some planted data race"
        );
    }

    #[test]
    fn render_mentions_functions_and_bugs() {
        let k = generate(&GenConfig::default());
        let reports = campaign_reports(&k);
        let findings = triage(&k, &reports);
        let text = render_findings(&k, &findings);
        assert!(text.contains("suspicious findings"));
        if let Some(f) = findings.first() {
            assert!(text.contains(&f.func_names.0));
        }
    }

    #[test]
    fn empty_reports_triage_to_nothing() {
        let k = generate(&GenConfig::default());
        assert!(triage(&k, &[]).is_empty());
    }
}
