//! Interleaving exploration per CTI: the PCT baseline and MLPCT (§5.3).
//!
//! Both explorers draw candidate schedules from the same constrained-random
//! family (two scheduling hints per CT, the PCT-style proposal of
//! [`snowcat_vm::propose_hints`]). PCT executes every candidate until the
//! execution budget is spent; MLPCT first predicts each candidate's coverage
//! with PIC and only executes those a [`SelectionStrategy`] finds
//! interesting, capped by an inference budget (the paper caps at 1,600
//! inferences for a 50-execution budget).

use crate::predictor::PredictorService;
use crate::strategy::SelectionStrategy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_corpus::StiProfile;
use snowcat_kernel::{BugId, Kernel};
use snowcat_race::{RaceDetector, RaceKey, RaceReport};
use snowcat_vm::{propose_hints, run_ct, BitSet, Cti, VmConfig};
use std::collections::HashSet;

/// Exploration budget for one CTI.
///
/// Construct with [`ExploreConfig::default`] and refine with the `with_*`
/// builders; the struct is `#[non_exhaustive]` so fields can be added
/// without breaking downstream crates.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ExploreConfig {
    /// Dynamic executions allowed.
    pub exec_budget: usize,
    /// Model inferences allowed (MLPCT only).
    pub inference_cap: usize,
    /// Schedule-proposal seed.
    pub seed: u64,
    /// Fuel (VM step) budget per dynamic execution. Runs that exhaust it
    /// exit with `StepLimit` and are counted in [`ExploreOutcome::hangs`].
    /// The default matches [`VmConfig::default`], so unsupervised callers
    /// see identical behaviour.
    pub fuel_budget: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self { exec_budget: 50, inference_cap: 1600, seed: 0xE791, fuel_budget: 1 << 20 }
    }
}

impl ExploreConfig {
    /// Set the dynamic-execution budget.
    pub fn with_exec_budget(mut self, exec_budget: usize) -> Self {
        self.exec_budget = exec_budget;
        self
    }

    /// Set the inference cap (MLPCT only).
    pub fn with_inference_cap(mut self, inference_cap: usize) -> Self {
        self.inference_cap = inference_cap;
        self
    }

    /// Set the schedule-proposal seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the per-execution fuel (VM step) budget.
    pub fn with_fuel_budget(mut self, fuel_budget: u64) -> Self {
        self.fuel_budget = fuel_budget;
        self
    }

    /// The [`VmConfig`] this exploration runs each candidate under.
    pub fn vm_config(&self) -> VmConfig {
        VmConfig::with_fuel(self.fuel_budget)
    }
}

/// What one CTI's exploration produced.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Dynamic executions performed.
    pub executions: u64,
    /// Model inferences performed (0 for plain PCT).
    pub inferences: u64,
    /// Unique potential data races observed (deduplicated in-run).
    pub races: Vec<RaceReport>,
    /// Planted bugs whose oracles fired.
    pub bugs: Vec<BugId>,
    /// Schedule-dependent blocks covered: concurrent coverage minus the
    /// union of the two STIs' sequential coverage.
    pub sched_dep_blocks: BitSet,
    /// Executions that exhausted the fuel budget (`ExitReason::StepLimit`).
    pub hangs: u64,
    /// Executions that aborted on a deadlock (`ExitReason::Deadlock`).
    pub crashes: u64,
}

impl ExploreOutcome {
    /// Unique race keys.
    pub fn race_keys(&self) -> Vec<RaceKey> {
        let mut keys: Vec<RaceKey> = self.races.iter().map(|r| r.key).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }
}

fn seq_union(kernel: &Kernel, a: &StiProfile, b: &StiProfile) -> BitSet {
    let mut u = BitSet::new(kernel.num_blocks());
    u.union_with(&a.seq.coverage);
    u.union_with(&b.seq.coverage);
    u
}

/// Explore a CTI with plain PCT: execute `exec_budget` random 2-switch
/// schedules (deduplicated).
pub fn explore_pct(
    kernel: &Kernel,
    a: &StiProfile,
    b: &StiProfile,
    cfg: &ExploreConfig,
) -> ExploreOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let detector = RaceDetector::default();
    let cti = Cti::new(a.sti.clone(), b.sti.clone());
    let seq_cov = seq_union(kernel, a, b);
    let mut outcome = ExploreOutcome {
        executions: 0,
        inferences: 0,
        races: Vec::new(),
        bugs: Vec::new(),
        sched_dep_blocks: BitSet::new(kernel.num_blocks()),
        hangs: 0,
        crashes: 0,
    };
    let mut seen_races = HashSet::new();
    let mut seen_hints = HashSet::new();
    let mut attempts = 0usize;
    while (outcome.executions as usize) < cfg.exec_budget && attempts < cfg.exec_budget * 20 {
        attempts += 1;
        let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
        if !seen_hints.insert(hints.clone()) {
            continue;
        }
        let r = run_ct(kernel, &cti, hints, cfg.vm_config());
        outcome.executions += 1;
        outcome.hangs += u64::from(r.hung());
        outcome.crashes += u64::from(r.crashed());
        for report in detector.detect(kernel, &r) {
            if seen_races.insert(report.key) {
                outcome.races.push(report);
            }
        }
        outcome.bugs.extend(r.unique_bugs());
        outcome.sched_dep_blocks.union_with(&r.coverage.difference(&seq_cov));
    }
    outcome.bugs.sort_unstable();
    outcome.bugs.dedup();
    outcome
}

/// Explore a CTI with the *native* PCT scheduler (random priorities +
/// priority-change points at instruction granularity), instead of 2-switch
/// hint schedules. This is how the original SKI drives exploration when no
/// hint encoding is needed; it is exposed for fidelity studies — the
/// campaign experiments use the hint-based family so that PCT and MLPCT
/// draw candidates from the same distribution.
pub fn explore_pct_native(
    kernel: &Kernel,
    a: &StiProfile,
    b: &StiProfile,
    cfg: &ExploreConfig,
    depth: usize,
) -> ExploreOutcome {
    use snowcat_vm::{PctScheduler, Vm};
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let detector = RaceDetector::default();
    let seq_cov = seq_union(kernel, a, b);
    let expected_len = a.seq.steps + b.seq.steps;
    let mut outcome = ExploreOutcome {
        executions: 0,
        inferences: 0,
        races: Vec::new(),
        bugs: Vec::new(),
        sched_dep_blocks: BitSet::new(kernel.num_blocks()),
        hangs: 0,
        crashes: 0,
    };
    let mut seen_races = HashSet::new();
    for _ in 0..cfg.exec_budget {
        let mut sched = PctScheduler::new(&mut rng, 2, expected_len, depth);
        let vm = Vm::new(kernel, vec![a.sti.clone(), b.sti.clone()], cfg.vm_config());
        let r = vm.run(&mut sched);
        outcome.executions += 1;
        outcome.hangs += u64::from(r.hung());
        outcome.crashes += u64::from(r.crashed());
        for report in detector.detect(kernel, &r) {
            if seen_races.insert(report.key) {
                outcome.races.push(report);
            }
        }
        outcome.bugs.extend(r.unique_bugs());
        outcome.sched_dep_blocks.union_with(&r.coverage.difference(&seq_cov));
    }
    outcome.bugs.sort_unstable();
    outcome.bugs.dedup();
    outcome
}

/// Explore a CTI with MLPCT: same proposal stream, but only candidates the
/// strategy selects (based on the predicted coverage) are executed.
///
/// Predictions go through the [`PredictorService`]'s inference chain, so
/// callers can route them through a cache or a worker pool transparently.
pub fn explore_mlpct(
    kernel: &Kernel,
    service: &PredictorService<'_, '_>,
    strategy: &mut dyn SelectionStrategy,
    a: &StiProfile,
    b: &StiProfile,
    cfg: &ExploreConfig,
) -> ExploreOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let detector = RaceDetector::default();
    let cti = Cti::new(a.sti.clone(), b.sti.clone());
    let seq_cov = seq_union(kernel, a, b);
    let base = service.base_graph(a, b);
    let mut outcome = ExploreOutcome {
        executions: 0,
        inferences: 0,
        races: Vec::new(),
        bugs: Vec::new(),
        sched_dep_blocks: BitSet::new(kernel.num_blocks()),
        hangs: 0,
        crashes: 0,
    };
    let mut seen_races = HashSet::new();
    let mut seen_hints = HashSet::new();
    while (outcome.executions as usize) < cfg.exec_budget
        && (outcome.inferences as usize) < cfg.inference_cap
    {
        let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
        if !seen_hints.insert(hints.clone()) {
            // The proposal space for short CTIs can be exhausted; count the
            // wasted draw against the inference cap to guarantee progress.
            outcome.inferences += 1;
            continue;
        }
        let pred = service.predict_candidate(&base, a, b, &hints);
        outcome.inferences += 1;
        if !strategy.select(&pred) {
            continue;
        }
        let r = run_ct(kernel, &cti, hints, cfg.vm_config());
        outcome.executions += 1;
        outcome.hangs += u64::from(r.hung());
        outcome.crashes += u64::from(r.crashed());
        for report in detector.detect(kernel, &r) {
            if seen_races.insert(report.key) {
                outcome.races.push(report);
            }
        }
        outcome.bugs.extend(r.unique_bugs());
        outcome.sched_dep_blocks.union_with(&r.coverage.difference(&seq_cov));
    }
    outcome.bugs.sort_unstable();
    outcome.bugs.dedup();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pic::Pic;
    use crate::strategy::S1NewBitmap;
    use snowcat_cfg::KernelCfg;
    use snowcat_corpus::StiFuzzer;
    use snowcat_kernel::{generate, GenConfig};
    use snowcat_nn::{Checkpoint, PicConfig, PicModel};

    fn setup() -> (Kernel, KernelCfg, Vec<StiProfile>) {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let mut fz = StiFuzzer::new(&k, 1);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        (k, cfg, corpus)
    }

    #[test]
    fn pct_respects_budget_and_finds_coverage() {
        let (k, _, corpus) = setup();
        let cfg = ExploreConfig { exec_budget: 10, ..Default::default() };
        let bug = &k.bugs[0];
        let a = corpus.iter().find(|p| p.sti.calls[0].syscall == bug.syscalls.0).unwrap();
        let b = corpus.iter().find(|p| p.sti.calls[0].syscall == bug.syscalls.1).unwrap();
        let out = explore_pct(&k, a, b, &cfg);
        assert!(out.executions <= 10);
        assert_eq!(out.inferences, 0);
    }

    #[test]
    fn mlpct_executes_at_most_selected() {
        let (k, cfg_k, corpus) = setup();
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "t");
        let pic = Pic::new(&ck, &k, &cfg_k);
        let svc = PredictorService::direct(&pic);
        let mut strat = S1NewBitmap::new();
        let cfg = ExploreConfig::default().with_exec_budget(8).with_inference_cap(60).with_seed(3);
        let out = explore_mlpct(&k, &svc, &mut strat, &corpus[0], &corpus[1], &cfg);
        assert!(out.executions <= 8);
        assert!(out.inferences <= 60);
        assert!(out.inferences >= out.executions, "every execution was predicted first");
    }

    #[test]
    fn native_pct_exploration_finds_coverage() {
        let (k, _, corpus) = setup();
        let cfg = ExploreConfig { exec_budget: 8, ..Default::default() };
        let out = explore_pct_native(&k, &corpus[0], &corpus[1], &cfg, 3);
        assert_eq!(out.executions, 8);
        assert_eq!(out.inferences, 0);
        // Deterministic given seed.
        let out2 = explore_pct_native(&k, &corpus[0], &corpus[1], &cfg, 3);
        assert_eq!(out.race_keys(), out2.race_keys());
    }

    #[test]
    fn exploration_is_deterministic_given_seed() {
        let (k, _, corpus) = setup();
        let cfg =
            ExploreConfig { exec_budget: 6, inference_cap: 100, seed: 9, ..Default::default() };
        let x = explore_pct(&k, &corpus[2], &corpus[3], &cfg);
        let y = explore_pct(&k, &corpus[2], &corpus[3], &cfg);
        assert_eq!(x.executions, y.executions);
        assert_eq!(x.race_keys(), y.race_keys());
        assert_eq!(x.sched_dep_blocks, y.sched_dep_blocks);
    }

    #[test]
    fn sched_dep_blocks_exclude_sequential_coverage() {
        let (k, _, corpus) = setup();
        let cfg = ExploreConfig { exec_budget: 12, ..Default::default() };
        let out = explore_pct(&k, &corpus[0], &corpus[1], &cfg);
        let mut seq = BitSet::new(k.num_blocks());
        seq.union_with(&corpus[0].seq.coverage);
        seq.union_with(&corpus[1].seq.coverage);
        for blk in out.sched_dep_blocks.iter() {
            assert!(!seq.contains(blk), "block {blk} is sequentially covered");
        }
    }
}
