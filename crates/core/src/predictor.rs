//! The predictor service: a unified, batched coverage-prediction API.
//!
//! Everything that consumes coverage predictions — MLPCT exploration,
//! Razzer-PIC candidate filtering, Snowboard exemplar sampling, campaign
//! runs, the experiment regenerators — goes through one trait:
//!
//! * [`CoveragePredictor`] — batched inference over pre-built CT graphs,
//!   with [`PredictorStats`] counters behind `&self` (interior mutability),
//!   so predictors can be shared across threads.
//!
//! Implementors:
//!
//! * [`crate::pic::Pic`] — the trained GNN + tuned threshold,
//! * [`BaselineService`] — the Table-1 baselines (all-positive, fair coin,
//!   biased coin), deterministic per graph,
//! * [`ParallelPredictor`] — fans a batch out over a scoped worker pool with
//!   work stealing; results are bit-identical to serial evaluation,
//! * [`crate::predcache::CachedPredictor`] — content-addressed memoization.
//!
//! The wrappers compose: `CachedPredictor<ParallelPredictor<&Pic>>` caches
//! batched parallel inference. [`PredictorService`] bundles a predictor
//! chain with the graph-building [`Pic`] so workflow code can go from (CTI,
//! scheduling hints) to predictions in one call.

use crate::pic::{Pic, PredictedCoverage};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use snowcat_corpus::StiProfile;
use snowcat_graph::CtGraph;
use snowcat_nn::BaselinePredictor;
use snowcat_vm::ScheduleHints;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// FNV-1a over a byte slice, continuing from `h` (so hashes can be chained).
pub(crate) fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Content fingerprint of a CT graph. Two graphs with the same vertices
/// (block, thread, kind, schedule mark, tokens) and the same edge list hash
/// equal; CT graphs are pure functions of (checkpointed corpus, CTI pair,
/// scheduling hints), so this fingerprints the prediction *input*.
pub fn graph_fingerprint(g: &CtGraph) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv1a(h, &(g.verts.len() as u64).to_le_bytes());
    for v in &g.verts {
        h = fnv1a(h, &v.block.0.to_le_bytes());
        h = fnv1a(h, &[v.thread.0, v.kind as u8, v.sched_mark.index() as u8, u8::from(v.may_race)]);
        h = fnv1a(h, &v.static_feats.bytes());
        for t in &v.tokens {
            h = fnv1a(h, &t.to_le_bytes());
        }
    }
    h = fnv1a(h, &(g.edges.len() as u64).to_le_bytes());
    for e in &g.edges {
        h = fnv1a(h, &e.from.to_le_bytes());
        h = fnv1a(h, &e.to.to_le_bytes());
        h = fnv1a(h, &[e.kind.index() as u8]);
    }
    h
}

/// Counter snapshot of a predictor (chain). Wrapper predictors merge their
/// own counters into the inner predictor's snapshot, so the stats of the
/// outermost predictor describe the whole chain.
///
/// The fields are private and the struct is `#[non_exhaustive]`: consumers
/// read counters through accessors ([`batches`](Self::batches),
/// [`cache_hits`](Self::cache_hits), …) and wrapper predictors compose
/// snapshots through the `with_*`/`add_*` builders, so future exporters can
/// add counters without breaking downstream code.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorStats {
    pub(crate) inferences: u64,
    pub(crate) batches: u64,
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
    pub(crate) cache_evictions: u64,
    pub(crate) degraded_batches: u64,
    pub(crate) fallback_predictions: u64,
    pub(crate) queue_depth_max: u64,
    pub(crate) coalesced_graphs: u64,
    pub(crate) server_flushes: u64,
    pub(crate) flush_capacity: u64,
    pub(crate) shed_requests: u64,
}

impl PredictorStats {
    /// An all-zero snapshot (identical to `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of a leaf predictor: `inferences` model evaluations over
    /// `batches` batch calls, no cache or degradation activity.
    pub fn of_inference_counts(inferences: u64, batches: u64) -> Self {
        PredictorStats { inferences, batches, ..Self::default() }
    }

    /// Model inferences actually performed (cache hits excluded).
    pub fn inferences(&self) -> u64 {
        self.inferences
    }

    /// `predict_batch` calls on the outermost predictor.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Prediction requests served without an inference.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Prediction requests that had to run an inference.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Cached predictions dropped to respect the cache capacity.
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions
    }

    /// Batches that failed (panic or latency-budget violation) and were
    /// served by the degradation fallback instead.
    pub fn degraded_batches(&self) -> u64 {
        self.degraded_batches
    }

    /// Individual predictions produced by the fallback predictor.
    pub fn fallback_predictions(&self) -> u64 {
        self.fallback_predictions
    }

    /// Replace the batch count: a wrapper reports *its* batch calls, not
    /// the inner predictor's.
    pub fn with_batches(mut self, batches: u64) -> Self {
        self.batches = batches;
        self
    }

    /// Merge cache-layer counters on top of the inner snapshot.
    pub fn add_cache_activity(&mut self, hits: u64, misses: u64, evictions: u64) {
        self.cache_hits += hits;
        self.cache_misses += misses;
        self.cache_evictions += evictions;
    }

    /// Merge degradation-layer counters on top of the inner snapshot.
    pub fn add_degradation(&mut self, degraded_batches: u64, fallback_predictions: u64) {
        self.degraded_batches += degraded_batches;
        self.fallback_predictions += fallback_predictions;
    }

    /// Deepest the serving queue has been, in pending graphs (0 when no
    /// inference server is in the chain).
    pub fn queue_depth_max(&self) -> u64 {
        self.queue_depth_max
    }

    /// Caller requests that bypassed the serving queue under the shed
    /// overload policy (predicted inline instead of queued).
    pub fn shed_requests(&self) -> u64 {
        self.shed_requests
    }

    /// Micro-batches flushed by an inference server.
    pub fn server_flushes(&self) -> u64 {
        self.server_flushes
    }

    /// Mean fill of the server's micro-batches: coalesced graphs over the
    /// total `max_batch` capacity of every flush (0.0 when no server is in
    /// the chain). 1.0 means every flush left at `max_batch`; low values
    /// mean the latency deadline, not the batch size, drives flushes.
    pub fn batch_fill(&self) -> f64 {
        if self.flush_capacity == 0 {
            0.0
        } else {
            self.coalesced_graphs as f64 / self.flush_capacity as f64
        }
    }

    /// Merge serving-layer counters on top of the inner snapshot:
    /// high-water queue depth (merged by max), graphs coalesced into
    /// flushed micro-batches, flush count, the summed `max_batch` capacity
    /// of those flushes, and shed requests.
    pub fn add_serving(
        &mut self,
        queue_depth_max: u64,
        coalesced_graphs: u64,
        flushes: u64,
        flush_capacity: u64,
        shed: u64,
    ) {
        self.queue_depth_max = self.queue_depth_max.max(queue_depth_max);
        self.coalesced_graphs += coalesced_graphs;
        self.server_flushes += flushes;
        self.flush_capacity += flush_capacity;
        self.shed_requests += shed;
    }

    /// Fraction of cache-mediated requests served from the cache
    /// (0.0 when no cache is in the chain).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// A coverage predictor: CT graphs in, per-vertex coverage predictions out.
///
/// Implementations take `&self` and are `Sync`, so one predictor can serve
/// several exploration threads; counters use interior mutability and come
/// back via [`CoveragePredictor::stats`].
pub trait CoveragePredictor: Sync {
    /// Predict coverage for a batch of CT graphs. The output is aligned
    /// with the input: `out[i]` is the prediction for `graphs[i]`.
    fn predict_batch(&self, graphs: &[CtGraph]) -> Vec<PredictedCoverage>;

    /// Counter snapshot for the whole predictor chain.
    fn stats(&self) -> PredictorStats;

    /// Content fingerprint of the underlying model (for cache keying);
    /// wrappers forward to the predictor that actually infers.
    fn fingerprint(&self) -> u64;

    /// Human-readable name of the chain ("PIC-5", "cached(parallel(PIC-5))").
    fn name(&self) -> String;

    /// Predict coverage for a single CT graph.
    fn predict_one(&self, graph: &CtGraph) -> PredictedCoverage {
        self.predict_batch(std::slice::from_ref(graph))
            .pop()
            .expect("predict_batch returns one prediction per input graph")
    }
}

impl<P: CoveragePredictor + ?Sized> CoveragePredictor for &P {
    fn predict_batch(&self, graphs: &[CtGraph]) -> Vec<PredictedCoverage> {
        (**self).predict_batch(graphs)
    }

    fn stats(&self) -> PredictorStats {
        (**self).stats()
    }

    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn predict_one(&self, graph: &CtGraph) -> PredictedCoverage {
        (**self).predict_one(graph)
    }
}

/// Coverage prediction with the auxiliary inter-thread-flow head (§6). Only
/// meaningful on models trained with [`snowcat_nn::train_with_flows`]; the
/// flow scores are aligned with `graph.edges` (0.0 on non-InterFlow edges).
pub trait FlowPredictor: CoveragePredictor {
    /// Predict coverage *and* per-edge inter-thread-flow probabilities.
    fn predict_with_flows(&self, graph: &CtGraph) -> (PredictedCoverage, Vec<f32>);
}

/// The Table-1 baseline predictors behind the unified API. Coin flips are
/// derived deterministically from the graph fingerprint, so a baseline is
/// `Sync`, repeatable, and parallel evaluation is bit-identical to serial.
pub struct BaselineService {
    kind: BaselinePredictor,
    seed: u64,
    inferences: AtomicU64,
    batches: AtomicU64,
}

impl BaselineService {
    /// Wrap a baseline; `seed` decorrelates coin flips across services.
    pub fn new(kind: BaselinePredictor, seed: u64) -> Self {
        Self { kind, seed, inferences: AtomicU64::new(0), batches: AtomicU64::new(0) }
    }

    /// Predict every vertex positive.
    pub fn all_pos() -> Self {
        Self::new(BaselinePredictor::AllPos, 0)
    }

    /// Fair coin per vertex.
    pub fn fair_coin(seed: u64) -> Self {
        Self::new(BaselinePredictor::FairCoin, seed)
    }

    /// Coin biased to the training-set URB base rate.
    pub fn biased_coin(rate: f64, seed: u64) -> Self {
        Self::new(BaselinePredictor::BiasedCoin(rate), seed)
    }
}

impl CoveragePredictor for BaselineService {
    fn predict_batch(&self, graphs: &[CtGraph]) -> Vec<PredictedCoverage> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.inferences.fetch_add(graphs.len() as u64, Ordering::Relaxed);
        graphs
            .iter()
            .map(|graph| {
                let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ graph_fingerprint(graph));
                let positive = self.kind.predict(&mut rng, graph.num_verts());
                let probs = positive.iter().map(|&p| if p { 1.0 } else { 0.0 }).collect();
                PredictedCoverage { graph: graph.clone(), probs, positive }
            })
            .collect()
    }

    fn stats(&self) -> PredictorStats {
        PredictorStats {
            inferences: self.inferences.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            ..PredictorStats::default()
        }
    }

    fn fingerprint(&self) -> u64 {
        let tag: u64 = match self.kind {
            BaselinePredictor::AllPos => 1,
            BaselinePredictor::FairCoin => 2,
            BaselinePredictor::BiasedCoin(p) => 3 ^ p.to_bits(),
        };
        fnv1a(0x6261_7365_6c69_6e65, &(tag ^ self.seed).to_le_bytes())
    }

    fn name(&self) -> String {
        match self.kind {
            BaselinePredictor::AllPos => "all-pos".into(),
            BaselinePredictor::FairCoin => "fair-coin".into(),
            BaselinePredictor::BiasedCoin(p) => format!("biased-coin({p:.2})"),
        }
    }
}

/// Fans `predict_batch` out over a scoped worker pool. Workers steal graph
/// indices from a shared counter, so an uneven batch (graphs vary widely in
/// vertex count) still balances; each prediction lands back in its input
/// slot, making the output bit-identical to serial evaluation.
pub struct ParallelPredictor<P> {
    inner: P,
    workers: usize,
    batches: AtomicU64,
}

impl<P: CoveragePredictor> ParallelPredictor<P> {
    /// Wrap `inner`, evaluating batches on up to `workers` threads.
    pub fn new(inner: P, workers: usize) -> Self {
        Self { inner, workers: workers.max(1), batches: AtomicU64::new(0) }
    }

    /// Worker pool size (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: CoveragePredictor> CoveragePredictor for ParallelPredictor<P> {
    fn predict_batch(&self, graphs: &[CtGraph]) -> Vec<PredictedCoverage> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if self.workers == 1 || graphs.len() <= 1 {
            return self.inner.predict_batch(graphs);
        }
        let next = AtomicUsize::new(0);
        let inner = &self.inner;
        let predicted: Vec<(usize, PredictedCoverage)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers.min(graphs.len()))
                .map(|_| {
                    scope.spawn(|_| {
                        let mut got = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= graphs.len() {
                                break;
                            }
                            got.push((i, inner.predict_one(&graphs[i])));
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("predictor worker panicked")).collect()
        })
        .expect("predictor pool panicked");
        let mut out: Vec<Option<PredictedCoverage>> = graphs.iter().map(|_| None).collect();
        for (i, p) in predicted {
            out[i] = Some(p);
        }
        out.into_iter().map(|p| p.expect("every batch index predicted exactly once")).collect()
    }

    fn stats(&self) -> PredictorStats {
        // The inner predictor sees one "batch" per stolen graph; report the
        // batches this wrapper was actually asked for.
        PredictorStats { batches: self.batches.load(Ordering::Relaxed), ..self.inner.stats() }
    }

    fn fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }

    fn name(&self) -> String {
        format!("parallel{}({})", self.workers, self.inner.name())
    }
}

/// Graph construction + a predictor chain, bundled so workflow code can go
/// from (CTI, scheduling hints) straight to predictions. The [`Pic`] side
/// builds graphs; the [`CoveragePredictor`] side — by default the same
/// `Pic`, optionally a cached/parallel chain around it — infers.
#[derive(Clone, Copy)]
pub struct PredictorService<'a, 'k> {
    pic: &'a Pic<'k>,
    predictor: &'a dyn CoveragePredictor,
}

impl<'a, 'k> PredictorService<'a, 'k> {
    /// Serve predictions directly from the deployed PIC.
    pub fn direct(pic: &'a Pic<'k>) -> Self {
        Self { pic, predictor: pic }
    }

    /// Serve predictions through `predictor` (a chain that must wrap the
    /// same deployed model for the predictions to be meaningful).
    pub fn with(pic: &'a Pic<'k>, predictor: &'a dyn CoveragePredictor) -> Self {
        Self { pic, predictor }
    }

    /// The graph-building PIC deployment.
    pub fn pic(&self) -> &'a Pic<'k> {
        self.pic
    }

    /// The inference chain predictions go through.
    pub fn predictor(&self) -> &'a dyn CoveragePredictor {
        self.predictor
    }

    /// Build the schedule-independent base graph of a CTI.
    pub fn base_graph(&self, a: &StiProfile, b: &StiProfile) -> CtGraph {
        self.pic.base_graph(a, b)
    }

    /// Predict one CT candidate given its CTI's base graph.
    pub fn predict_candidate(
        &self,
        base: &CtGraph,
        a: &StiProfile,
        b: &StiProfile,
        hints: &ScheduleHints,
    ) -> PredictedCoverage {
        let graph = self.pic.candidate_graph(base, a, b, hints);
        self.predictor.predict_one(&graph)
    }

    /// Predict a batch of CT candidates of the same CTI, one per entry of
    /// `hints` (output aligned with `hints`).
    pub fn predict_candidates(
        &self,
        base: &CtGraph,
        a: &StiProfile,
        b: &StiProfile,
        hints: &[ScheduleHints],
    ) -> Vec<PredictedCoverage> {
        let graphs: Vec<CtGraph> =
            hints.iter().map(|h| self.pic.candidate_graph(base, a, b, h)).collect();
        self.predictor.predict_batch(&graphs)
    }

    /// Predict one CT candidate from scratch (base graph built and dropped).
    pub fn predict_ct(
        &self,
        a: &StiProfile,
        b: &StiProfile,
        hints: &ScheduleHints,
    ) -> PredictedCoverage {
        let base = self.base_graph(a, b);
        self.predict_candidate(&base, a, b, hints)
    }

    /// Counter snapshot of the inference chain.
    pub fn stats(&self) -> PredictorStats {
        self.predictor.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_cfg::KernelCfg;
    use snowcat_corpus::StiFuzzer;
    use snowcat_kernel::{generate, GenConfig};
    use snowcat_nn::{Checkpoint, PicConfig, PicModel};
    use snowcat_vm::propose_hints;

    fn setup_graphs(n: usize) -> (Vec<CtGraph>, Checkpoint) {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let mut fz = StiFuzzer::new(&k, 9);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "t");
        let pic = Pic::new(&ck, &k, &cfg);
        let mut rng = rand::rngs::mock::StepRng::new(11, 13);
        let base = pic.base_graph(&corpus[0], &corpus[1]);
        let graphs = (0..n)
            .map(|_| {
                let hints = propose_hints(&mut rng, corpus[0].seq.steps, corpus[1].seq.steps);
                pic.candidate_graph(&base, &corpus[0], &corpus[1], &hints)
            })
            .collect();
        (graphs, ck)
    }

    #[test]
    fn graph_fingerprint_is_content_addressed() {
        let (graphs, _) = setup_graphs(3);
        assert_eq!(graph_fingerprint(&graphs[0]), graph_fingerprint(&graphs[0].clone()));
        // Distinct schedules give distinct graphs and distinct fingerprints.
        if graphs[0] != graphs[1] {
            assert_ne!(graph_fingerprint(&graphs[0]), graph_fingerprint(&graphs[1]));
        }
        let mut tweaked = graphs[0].clone();
        tweaked.verts[0].tokens.push(7);
        assert_ne!(graph_fingerprint(&graphs[0]), graph_fingerprint(&tweaked));
    }

    #[test]
    fn serving_stats_accessors_compose() {
        let mut s = PredictorStats::of_inference_counts(10, 2);
        assert_eq!(s.queue_depth_max(), 0);
        assert_eq!(s.batch_fill(), 0.0, "no server in the chain");
        s.add_serving(7, 24, 4, 32, 1);
        s.add_serving(3, 8, 1, 8, 0);
        assert_eq!(s.queue_depth_max(), 7, "high-water mark merges by max, not sum");
        assert_eq!(s.server_flushes(), 5);
        assert_eq!(s.shed_requests(), 1);
        assert!((s.batch_fill() - 32.0 / 40.0).abs() < 1e-12);
        assert_eq!(s.inferences(), 10, "serving counters leave inference counts alone");
    }

    #[test]
    fn baselines_are_deterministic_and_aligned() {
        let (graphs, _) = setup_graphs(2);
        for svc in [
            BaselineService::all_pos(),
            BaselineService::fair_coin(3),
            BaselineService::biased_coin(0.2, 3),
        ] {
            let a = svc.predict_batch(&graphs);
            let b = svc.predict_batch(&graphs);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.positive, y.positive, "{}", svc.name());
                assert_eq!(x.positive.len(), x.graph.num_verts());
            }
        }
        let all = BaselineService::all_pos().predict_one(&graphs[0]);
        assert!(all.positive.iter().all(|&p| p));
        assert_eq!(BaselineService::all_pos().stats().inferences, 0);
    }

    #[test]
    fn parallel_predictor_is_bit_identical_to_serial() {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let (graphs, ck) = setup_graphs(9);
        let pic = Pic::new(&ck, &k, &cfg);
        let serial = pic.predict_batch(&graphs);
        let par = ParallelPredictor::new(&pic, 4);
        let parallel = par.predict_batch(&graphs);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.graph, p.graph);
            assert_eq!(s.probs, p.probs);
            assert_eq!(s.positive, p.positive);
        }
        let stats = par.stats();
        assert_eq!(stats.inferences, 18, "9 serial + 9 parallel on the shared Pic");
        assert_eq!(stats.batches, 1);
        assert_eq!(par.fingerprint(), pic.fingerprint());
    }

    #[test]
    fn service_candidate_paths_agree() {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let mut fz = StiFuzzer::new(&k, 9);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "t");
        let pic = Pic::new(&ck, &k, &cfg);
        let svc = PredictorService::direct(&pic);
        let mut rng = rand::rngs::mock::StepRng::new(5, 17);
        let (a, b) = (&corpus[0], &corpus[1]);
        let base = svc.base_graph(a, b);
        let hints: Vec<_> =
            (0..3).map(|_| propose_hints(&mut rng, a.seq.steps, b.seq.steps)).collect();
        let batch = svc.predict_candidates(&base, a, b, &hints);
        for (h, p) in hints.iter().zip(&batch) {
            let one = svc.predict_candidate(&base, a, b, h);
            assert_eq!(one.probs, p.probs);
            let fresh = svc.predict_ct(a, b, h);
            assert_eq!(fresh.probs, p.probs);
        }
    }
}
