//! CT-candidate selection strategies (§3.3).
//!
//! Given the *predicted* coverage of a candidate CT, a strategy decides
//! whether it is worth a dynamic execution:
//!
//! * **S1 — new set of positive blocks**: select if the predicted coverage
//!   bitmap (as a set of (thread, block) positives) has never been seen.
//! * **S2 — new positive blocks**: select if at least one predicted-covered
//!   block has never been predicted-covered by a selected CT before.
//! * **S3 — positive blocks with limited trials**: select while some
//!   predicted-covered block has been attempted fewer than `limit` times;
//!   selecting charges one trial to every predicted-positive block.
//!
//! Strategies are stateful and cumulative across CTIs, exactly as in the
//! paper ("SNOWCAT remembers the predicted block coverage of each previously
//! chosen CT").

use crate::pic::PredictedCoverage;
use serde::{Deserialize, Serialize};
use snowcat_kernel::BlockId;
use std::collections::{HashMap, HashSet};

/// Serializable snapshot of a strategy's cumulative memory, used by the
/// campaign supervisor's checkpoint/resume path. Collections are sorted so
/// the encoding is deterministic for a given state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategySnapshot {
    /// [`S1NewBitmap`] memory: sorted fingerprints of seen bitmaps.
    S1 {
        /// Seen coverage-bitmap fingerprints.
        seen: Vec<u64>,
    },
    /// [`S2NewBlocks`] memory: sorted seen block ids.
    S2 {
        /// Seen predicted-positive blocks.
        seen: Vec<u32>,
    },
    /// [`S3LimitedTrials`] memory: sorted (block, trials) pairs + limit.
    S3 {
        /// Per-block trial counts.
        trials: Vec<(u32, usize)>,
        /// The per-block trial limit.
        limit: usize,
    },
}

/// A candidate-selection strategy.
pub trait SelectionStrategy: Send {
    /// Decide whether to execute this candidate; selecting updates the
    /// strategy's memory.
    fn select(&mut self, pred: &PredictedCoverage) -> bool;

    /// Short name for reports ("S1", "S2", "S3(3)").
    fn name(&self) -> String;

    /// Export the cumulative memory for checkpointing.
    fn snapshot(&self) -> StrategySnapshot;

    /// Restore memory from a snapshot. Returns `false` (leaving the
    /// strategy untouched) if the snapshot belongs to a different strategy
    /// kind.
    fn restore(&mut self, snap: &StrategySnapshot) -> bool;
}

/// S1: new set of positive blocks (coverage-bitmap novelty).
#[derive(Debug, Default)]
pub struct S1NewBitmap {
    seen: HashSet<u64>,
}

impl S1NewBitmap {
    /// Fresh strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

fn bitmap_fingerprint(pred: &PredictedCoverage) -> u64 {
    let mut blocks: Vec<(u8, u32)> =
        pred.positive_blocks().iter().map(|(t, b)| (t.0, b.0)).collect();
    blocks.sort_unstable();
    // FNV-1a over the sorted positive set.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (t, b) in blocks {
        h ^= (u64::from(t) << 32) | u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl SelectionStrategy for S1NewBitmap {
    fn select(&mut self, pred: &PredictedCoverage) -> bool {
        self.seen.insert(bitmap_fingerprint(pred))
    }

    fn name(&self) -> String {
        "S1".into()
    }

    fn snapshot(&self) -> StrategySnapshot {
        let mut seen: Vec<u64> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        StrategySnapshot::S1 { seen }
    }

    fn restore(&mut self, snap: &StrategySnapshot) -> bool {
        match snap {
            StrategySnapshot::S1 { seen } => {
                self.seen = seen.iter().copied().collect();
                true
            }
            _ => false,
        }
    }
}

/// S2: at least one never-before-predicted-covered block.
#[derive(Debug, Default)]
pub struct S2NewBlocks {
    seen: HashSet<BlockId>,
}

impl S2NewBlocks {
    /// Fresh strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SelectionStrategy for S2NewBlocks {
    fn select(&mut self, pred: &PredictedCoverage) -> bool {
        let fresh: Vec<BlockId> = pred
            .positive_blocks()
            .iter()
            .map(|&(_, b)| b)
            .filter(|b| !self.seen.contains(b))
            .collect();
        if fresh.is_empty() {
            return false;
        }
        self.seen.extend(fresh);
        true
    }

    fn name(&self) -> String {
        "S2".into()
    }

    fn snapshot(&self) -> StrategySnapshot {
        let mut seen: Vec<u32> = self.seen.iter().map(|b| b.0).collect();
        seen.sort_unstable();
        StrategySnapshot::S2 { seen }
    }

    fn restore(&mut self, snap: &StrategySnapshot) -> bool {
        match snap {
            StrategySnapshot::S2 { seen } => {
                self.seen = seen.iter().map(|&b| BlockId(b)).collect();
                true
            }
            _ => false,
        }
    }
}

/// S3: per-block trial budget.
#[derive(Debug)]
pub struct S3LimitedTrials {
    trials: HashMap<BlockId, usize>,
    limit: usize,
}

impl S3LimitedTrials {
    /// Strategy allowing each positive block to be attempted `limit` times.
    pub fn new(limit: usize) -> Self {
        Self { trials: HashMap::new(), limit: limit.max(1) }
    }
}

impl SelectionStrategy for S3LimitedTrials {
    fn select(&mut self, pred: &PredictedCoverage) -> bool {
        let blocks: Vec<BlockId> = pred.positive_blocks().iter().map(|&(_, b)| b).collect();
        let interesting =
            blocks.iter().any(|b| self.trials.get(b).copied().unwrap_or(0) < self.limit);
        if interesting {
            for b in blocks {
                *self.trials.entry(b).or_insert(0) += 1;
            }
        }
        interesting
    }

    fn name(&self) -> String {
        format!("S3({})", self.limit)
    }

    fn snapshot(&self) -> StrategySnapshot {
        let mut trials: Vec<(u32, usize)> = self.trials.iter().map(|(b, &n)| (b.0, n)).collect();
        trials.sort_unstable();
        StrategySnapshot::S3 { trials, limit: self.limit }
    }

    fn restore(&mut self, snap: &StrategySnapshot) -> bool {
        match snap {
            StrategySnapshot::S3 { trials, limit } => {
                self.trials = trials.iter().map(|&(b, n)| (BlockId(b), n)).collect();
                self.limit = (*limit).max(1);
                true
            }
            _ => false,
        }
    }
}

/// The strategy lineup evaluated in the paper's §5.3.
pub fn standard_strategies() -> Vec<Box<dyn SelectionStrategy>> {
    vec![
        Box::new(S1NewBitmap::new()),
        Box::new(S2NewBlocks::new()),
        Box::new(S3LimitedTrials::new(3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_graph::{CtGraph, VertKind, Vertex};
    use snowcat_kernel::ThreadId;

    fn pred_with_blocks(blocks: &[(u8, u32)], positive: &[bool]) -> PredictedCoverage {
        let verts = blocks
            .iter()
            .map(|&(t, b)| Vertex {
                block: BlockId(b),
                thread: ThreadId(t),
                kind: VertKind::Scb,
                sched_mark: snowcat_graph::SchedMark::None,
                may_race: false,
                tokens: vec![1],
                static_feats: Default::default(),
            })
            .collect();
        PredictedCoverage {
            graph: CtGraph { verts, edges: vec![] },
            probs: positive.iter().map(|&p| if p { 0.9 } else { 0.1 }).collect(),
            positive: positive.to_vec(),
        }
    }

    #[test]
    fn s1_rejects_repeated_bitmap() {
        let mut s = S1NewBitmap::new();
        let p = pred_with_blocks(&[(0, 1), (0, 2)], &[true, true]);
        assert!(s.select(&p));
        assert!(!s.select(&p));
        // Different subset → new bitmap.
        let q = pred_with_blocks(&[(0, 1), (0, 2)], &[true, false]);
        assert!(s.select(&q));
    }

    #[test]
    fn s1_bitmap_is_order_independent() {
        let mut s = S1NewBitmap::new();
        let p = pred_with_blocks(&[(0, 1), (0, 2)], &[true, true]);
        let q = pred_with_blocks(&[(0, 2), (0, 1)], &[true, true]);
        assert!(s.select(&p));
        assert!(!s.select(&q), "same positive set in different order must collide");
    }

    #[test]
    fn s2_needs_a_new_block() {
        let mut s = S2NewBlocks::new();
        assert!(s.select(&pred_with_blocks(&[(0, 1), (0, 2)], &[true, true])));
        // Subset of already-seen blocks → rejected (unlike S1).
        assert!(!s.select(&pred_with_blocks(&[(0, 1)], &[true])));
        assert!(s.select(&pred_with_blocks(&[(0, 1), (1, 9)], &[true, true])));
    }

    #[test]
    fn s2_rejects_all_negative() {
        let mut s = S2NewBlocks::new();
        assert!(!s.select(&pred_with_blocks(&[(0, 1)], &[false])));
    }

    #[test]
    fn s3_respects_trial_limit() {
        let mut s = S3LimitedTrials::new(2);
        let p = pred_with_blocks(&[(0, 5)], &[true]);
        assert!(s.select(&p));
        assert!(s.select(&p));
        assert!(!s.select(&p), "third trial exceeds the limit");
        // A fresh block resets interest.
        assert!(s.select(&pred_with_blocks(&[(0, 5), (0, 6)], &[true, true])));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(S1NewBitmap::new().name(), "S1");
        assert_eq!(S2NewBlocks::new().name(), "S2");
        assert_eq!(S3LimitedTrials::new(3).name(), "S3(3)");
    }

    #[test]
    fn snapshots_roundtrip_and_preserve_decisions() {
        // Drive each strategy, snapshot it, restore into a fresh instance,
        // and check the fresh instance makes the same next decision — the
        // property the supervisor's checkpoint/resume path relies on.
        let p = pred_with_blocks(&[(0, 1), (0, 2)], &[true, true]);
        let q = pred_with_blocks(&[(0, 1)], &[true]);
        let r = pred_with_blocks(&[(1, 9)], &[true]);

        let mut s1 = S1NewBitmap::new();
        s1.select(&p);
        let mut s1b = S1NewBitmap::new();
        assert!(s1b.restore(&s1.snapshot()));
        assert!(!s1b.select(&p), "restored S1 remembers the seen bitmap");
        assert!(s1b.select(&q));

        let mut s2 = S2NewBlocks::new();
        s2.select(&p);
        let mut s2b = S2NewBlocks::new();
        assert!(s2b.restore(&s2.snapshot()));
        assert!(!s2b.select(&q), "restored S2 remembers seen blocks");
        assert!(s2b.select(&r));

        let mut s3 = S3LimitedTrials::new(2);
        s3.select(&q);
        s3.select(&q);
        let mut s3b = S3LimitedTrials::new(2);
        assert!(s3b.restore(&s3.snapshot()));
        assert!(!s3b.select(&q), "restored S3 remembers exhausted trials");

        // Kind mismatch leaves the strategy untouched.
        let mut s1c = S1NewBitmap::new();
        assert!(!s1c.restore(&s3.snapshot()));
        assert!(s1c.select(&p));

        // Snapshots are deterministic for a given state (sorted encoding).
        assert_eq!(s3.snapshot(), s3b.snapshot());
    }
}
