//! Time accounting and the analytic rejection-filter model (§A.6).
//!
//! Dynamic kernel executions in the paper run inside an instrumented QEMU
//! and cost ~2.8 s each, while one PIC inference costs ~0.015 s. Our
//! substrate executes a synthetic kernel, so raw wall-clock would not
//! reflect the paper's economics; campaigns therefore account *simulated
//! testing time* with the paper's per-operation costs (both constants are
//! configurable, and the bench harness also reports locally measured
//! values).

use serde::{Deserialize, Serialize};

/// Per-operation cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Seconds per dynamic CT execution (paper: 2.8 s under SKI).
    pub exec_seconds: f64,
    /// Seconds per PIC inference including graph assembly (paper: 0.015 s).
    pub inference_seconds: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { exec_seconds: 2.8, inference_seconds: 0.015 }
    }
}

impl CostModel {
    /// Simulated seconds for a mix of executions and inferences.
    pub fn seconds(&self, executions: u64, inferences: u64) -> f64 {
        executions as f64 * self.exec_seconds + inferences as f64 * self.inference_seconds
    }

    /// Simulated hours.
    pub fn hours(&self, executions: u64, inferences: u64) -> f64 {
        self.seconds(executions, inferences) / 3600.0
    }
}

/// §A.6 — expected number of *candidate evaluations* a filtered workflow
/// needs to reach one fruitful dynamic execution, and the expected dynamic
/// executions it spends, given:
///
/// * `base_rate` — probability a random candidate is fruitful,
/// * `precision`/`recall` — of the filter's positive predictions.
///
/// Without a filter, reaching one fruitful test costs `1/base_rate` dynamic
/// executions in expectation. With the filter, only predicted-positive
/// candidates are executed: a fraction `pp = base_rate·recall/precision` of
/// candidates are predicted positive, and each executed candidate is
/// fruitful with probability `precision`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterEconomics {
    /// Expected dynamic executions per fruitful test, unfiltered.
    pub unfiltered_execs: f64,
    /// Expected dynamic executions per fruitful test, filtered.
    pub filtered_execs: f64,
    /// Expected model inferences per fruitful test, filtered.
    pub filtered_inferences: f64,
    /// Expected seconds per fruitful test, unfiltered.
    pub unfiltered_seconds: f64,
    /// Expected seconds per fruitful test, filtered.
    pub filtered_seconds: f64,
}

/// Evaluate the analytic model.
///
/// # Panics
/// Panics if `base_rate`, `precision` or `recall` are outside (0, 1].
pub fn filter_economics(
    cost: &CostModel,
    base_rate: f64,
    precision: f64,
    recall: f64,
) -> FilterEconomics {
    assert!(base_rate > 0.0 && base_rate <= 1.0, "base_rate out of range");
    assert!(precision > 0.0 && precision <= 1.0, "precision out of range");
    assert!(recall > 0.0 && recall <= 1.0, "recall out of range");
    // Fraction of candidates predicted positive.
    let predicted_positive = base_rate * recall / precision;
    // Executed candidates are the predicted positives; each is fruitful with
    // probability `precision`, so 1/precision executions per fruitful test.
    let filtered_execs = 1.0 / precision;
    // Candidates *inspected* per fruitful test: we must see enough
    // candidates for 1/precision of them to be predicted positive.
    let filtered_inferences = filtered_execs / predicted_positive.max(f64::MIN_POSITIVE);
    let unfiltered_execs = 1.0 / base_rate;
    FilterEconomics {
        unfiltered_execs,
        filtered_execs,
        filtered_inferences,
        unfiltered_seconds: unfiltered_execs * cost.exec_seconds,
        filtered_seconds: filtered_execs * cost.exec_seconds
            + filtered_inferences * cost.inference_seconds,
    }
}

/// Monte-Carlo check of [`filter_economics`]: simulate a candidate stream
/// with the given rates and average the cost to the first fruitful executed
/// test. Used by tests and the §A.6 bench.
pub fn simulate_filter<R: rand::Rng>(
    rng: &mut R,
    cost: &CostModel,
    base_rate: f64,
    precision: f64,
    recall: f64,
    trials: usize,
) -> FilterEconomics {
    let mut f_execs = 0.0;
    let mut f_infer = 0.0;
    let mut f_secs = 0.0;
    let mut u_execs = 0.0;
    for _ in 0..trials {
        // Unfiltered: geometric in base_rate.
        let mut n = 1u64;
        while !rng.gen_bool(base_rate) {
            n += 1;
        }
        u_execs += n as f64;
        // Filtered.
        let mut execs = 0u64;
        let mut infer = 0u64;
        loop {
            infer += 1;
            let fruitful = rng.gen_bool(base_rate);
            let predicted = if fruitful {
                rng.gen_bool(recall)
            } else {
                // FP rate chosen to produce the target precision:
                // P(pred|¬fruitful) = base·recall·(1−precision) /
                //                     (precision·(1−base)).
                let fp_rate = (base_rate * recall * (1.0 - precision)
                    / (precision * (1.0 - base_rate)))
                    .clamp(0.0, 1.0);
                rng.gen_bool(fp_rate)
            };
            if predicted {
                execs += 1;
                if fruitful {
                    break;
                }
            }
        }
        f_execs += execs as f64;
        f_infer += infer as f64;
        f_secs += cost.seconds(execs, infer);
    }
    let t = trials as f64;
    FilterEconomics {
        unfiltered_execs: u_execs / t,
        filtered_execs: f_execs / t,
        filtered_inferences: f_infer / t,
        unfiltered_seconds: (u_execs / t) * cost.exec_seconds,
        filtered_seconds: f_secs / t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cost_model_arithmetic() {
        let c = CostModel::default();
        assert!((c.seconds(10, 100) - (28.0 + 1.5)).abs() < 1e-9);
        assert!((c.hours(3600, 0) - 2.8).abs() < 1e-9);
    }

    #[test]
    fn filter_beats_unfiltered_at_paper_operating_point() {
        // Paper-ish numbers: ~1.1% fruitful candidates, PIC precision ~0.49,
        // recall ~0.69, 2.8 s executions, 0.015 s inferences.
        let c = CostModel::default();
        let e = filter_economics(&c, 0.011, 0.49, 0.69);
        assert!(e.filtered_seconds < e.unfiltered_seconds / 10.0, "expected ≥10x speedup: {e:?}");
    }

    #[test]
    fn perfect_filter_costs_one_execution() {
        let c = CostModel::default();
        let e = filter_economics(&c, 0.01, 1.0, 1.0);
        assert!((e.filtered_execs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_agrees_with_analytic() {
        let c = CostModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ana = filter_economics(&c, 0.05, 0.5, 0.7);
        let sim = simulate_filter(&mut rng, &c, 0.05, 0.5, 0.7, 4000);
        let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-9);
        assert!(rel(sim.unfiltered_execs, ana.unfiltered_execs) < 0.15, "{sim:?} vs {ana:?}");
        assert!(rel(sim.filtered_execs, ana.filtered_execs) < 0.15, "{sim:?} vs {ana:?}");
        assert!(rel(sim.filtered_inferences, ana.filtered_inferences) < 0.2, "{sim:?} vs {ana:?}");
    }

    #[test]
    #[should_panic(expected = "precision out of range")]
    fn rejects_invalid_precision() {
        filter_economics(&CostModel::default(), 0.5, 0.0, 0.5);
    }
}
