//! Content-addressed memoization for coverage predictors.
//!
//! Snowcat's workflows re-predict: MLPCT revisits a CTI across campaign
//! rounds, Razzer filters overlapping candidate pools, Snowboard re-ranks
//! the same cluster exemplars. A CT graph is a pure function of the CTI
//! pair and the scheduling hints, and a prediction is a pure function of
//! the CT graph and the checkpoint, so memoizing on
//! `(checkpoint fingerprint, graph fingerprint)` is sound: a hit returns
//! bit-identical output to a fresh inference.

use crate::pic::PredictedCoverage;
use crate::predictor::{fnv1a, graph_fingerprint, CoveragePredictor, PredictorStats};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Recency bookkeeping for LRU eviction, kept apart from the prediction
/// map so hot-path probes stay on the `RwLock` read side.
///
/// Uses timestamped lazy deletion instead of an intrusive linked list: every
/// touch appends `(stamp, key)` and records the key's latest stamp; popping
/// the LRU key skips queue entries whose stamp is stale (the key was touched
/// again later). Touches are O(1), eviction is amortized O(1), and the queue
/// is compacted once it outgrows the live set by a constant factor.
#[derive(Default)]
struct Recency {
    stamp: u64,
    /// Latest stamp per live key — the authoritative recency.
    last: HashMap<u64, u64>,
    /// Append-only touch log, oldest first, with stale entries skipped
    /// (and periodically compacted away).
    queue: VecDeque<(u64, u64)>,
}

impl Recency {
    fn touch(&mut self, key: u64) {
        self.stamp += 1;
        self.last.insert(key, self.stamp);
        self.queue.push_back((self.stamp, key));
    }

    /// Remove and return the least-recently-used live key.
    fn pop_lru(&mut self) -> Option<u64> {
        while let Some((stamp, key)) = self.queue.pop_front() {
            if self.last.get(&key) == Some(&stamp) {
                self.last.remove(&key);
                return Some(key);
            }
        }
        None
    }

    /// Drop stale queue entries once they dominate the log.
    fn compact(&mut self, capacity: usize) {
        if self.queue.len() > 8 * capacity.max(2) {
            let last = &self.last;
            self.queue.retain(|(stamp, key)| last.get(key) == Some(stamp));
        }
    }

    fn clear(&mut self) {
        self.last.clear();
        self.queue.clear();
    }
}

/// A memoizing wrapper around any [`CoveragePredictor`]. Keys combine the
/// inner predictor's model fingerprint with the graph's content
/// fingerprint, so caches never leak predictions across checkpoints.
/// Bounded LRU: when more than `capacity` distinct graphs have been
/// predicted, the least-recently-*used* entry is evicted — a cache hit
/// refreshes its entry's recency, so the skewed revisit patterns of
/// campaign workloads keep their hot graphs resident.
pub struct CachedPredictor<P> {
    inner: P,
    capacity: usize,
    map: RwLock<HashMap<u64, PredictedCoverage>>,
    /// LRU recency for eviction (hits and inserts both touch).
    recency: Mutex<Recency>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    batches: AtomicU64,
}

impl<P: CoveragePredictor> CachedPredictor<P> {
    /// Wrap `inner` with a cache holding up to `capacity` predictions.
    pub fn new(inner: P, capacity: usize) -> Self {
        Self {
            inner,
            capacity: capacity.max(1),
            map: RwLock::new(HashMap::new()),
            recency: Mutex::new(Recency::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        }
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Maximum number of cached predictions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of predictions currently cached.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all cached predictions (counters are kept).
    pub fn clear(&self) {
        self.map.write().clear();
        self.recency.lock().clear();
    }

    /// Cached predictions dropped so far to respect [`capacity`](Self::capacity).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn key(&self, g: &snowcat_graph::CtGraph) -> u64 {
        fnv1a(self.inner.fingerprint(), &graph_fingerprint(g).to_le_bytes())
    }

    /// Refresh recency for keys served from the cache. Touches only keys
    /// still resident (a concurrent eviction between probe and touch must
    /// not resurrect a recency entry with no cached prediction behind it).
    fn touch_hits(&self, keys: &[u64]) {
        let map = self.map.read();
        let mut recency = self.recency.lock();
        for &k in keys {
            if map.contains_key(&k) {
                recency.touch(k);
            }
        }
        recency.compact(self.capacity);
    }

    fn insert(&self, key: u64, pred: PredictedCoverage) {
        let mut map = self.map.write();
        let mut recency = self.recency.lock();
        if map.insert(key, pred).is_none() {
            recency.touch(key);
            while map.len() > self.capacity {
                match recency.pop_lru() {
                    // A popped key may already be gone (cleared between
                    // batches); only map removals count as evictions.
                    Some(old) => {
                        if map.remove(&old).is_some() {
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    None => break,
                }
            }
            recency.compact(self.capacity);
        }
    }
}

impl<P: CoveragePredictor> CoveragePredictor for CachedPredictor<P> {
    fn predict_batch(&self, graphs: &[snowcat_graph::CtGraph]) -> Vec<PredictedCoverage> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let keys: Vec<u64> = graphs.iter().map(|g| self.key(g)).collect();

        // Probe under the read lock; remember which slots missed.
        let mut out: Vec<Option<PredictedCoverage>> = {
            let map = self.map.read();
            keys.iter().map(|k| map.get(k).cloned()).collect()
        };

        // Hits refresh recency (that is what makes this LRU rather than
        // FIFO); one lock acquisition covers the whole batch.
        let hit_keys: Vec<u64> =
            out.iter().zip(&keys).filter_map(|(slot, &k)| slot.as_ref().map(|_| k)).collect();
        if !hit_keys.is_empty() {
            self.touch_hits(&hit_keys);
        }

        // One inner batch for the distinct missing graphs (an intra-batch
        // duplicate is inferred once and fans out to all its slots).
        let mut miss_keys: Vec<u64> = Vec::new();
        let mut miss_graphs: Vec<snowcat_graph::CtGraph> = Vec::new();
        for (i, slot) in out.iter().enumerate() {
            if slot.is_none() && !miss_keys.contains(&keys[i]) {
                miss_keys.push(keys[i]);
                miss_graphs.push(graphs[i].clone());
            }
        }
        let mut fresh: HashMap<u64, PredictedCoverage> = HashMap::new();
        if !miss_graphs.is_empty() {
            let predicted = self.inner.predict_batch(&miss_graphs);
            for (k, p) in miss_keys.iter().zip(predicted) {
                self.insert(*k, p.clone());
                fresh.insert(*k, p);
            }
        }

        let mut hits = 0u64;
        let mut misses = 0u64;
        for (i, slot) in out.iter_mut().enumerate() {
            if slot.is_some() {
                hits += 1;
            } else {
                misses += 1;
                // Resolve from `fresh`, not the map: with a tiny capacity the
                // entry may already have been evicted again.
                *slot = Some(
                    fresh.get(&keys[i]).expect("every miss key was inferred this batch").clone(),
                );
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        out.into_iter().map(|p| p.expect("every slot resolved")).collect()
    }

    fn stats(&self) -> PredictorStats {
        let inner = self.inner.stats();
        PredictorStats {
            batches: self.batches.load(Ordering::Relaxed),
            cache_hits: inner.cache_hits + self.hits.load(Ordering::Relaxed),
            cache_misses: inner.cache_misses + self.misses.load(Ordering::Relaxed),
            cache_evictions: inner.cache_evictions + self.evictions.load(Ordering::Relaxed),
            ..inner
        }
    }

    fn fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }

    fn name(&self) -> String {
        format!("cached{}({})", self.capacity, self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pic::Pic;
    use rand::SeedableRng;
    use snowcat_cfg::KernelCfg;
    use snowcat_corpus::StiFuzzer;
    use snowcat_graph::CtGraph;
    use snowcat_kernel::{generate, GenConfig, Kernel};
    use snowcat_nn::{Checkpoint, PicConfig, PicModel};
    use snowcat_vm::propose_hints;

    fn setup(n: usize) -> (Kernel, Checkpoint, Vec<CtGraph>) {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let mut fz = StiFuzzer::new(&k, 5);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "t");
        let graphs = {
            let pic = Pic::new(&ck, &k, &cfg);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xD15_71AC);
            let base = pic.base_graph(&corpus[0], &corpus[1]);
            let mut out: Vec<CtGraph> = Vec::new();
            let mut fps = std::collections::HashSet::new();
            while out.len() < n {
                let hints = propose_hints(&mut rng, corpus[0].seq.steps, corpus[1].seq.steps);
                let g = pic.candidate_graph(&base, &corpus[0], &corpus[1], &hints);
                if fps.insert(graph_fingerprint(&g)) {
                    out.push(g);
                }
            }
            out
        };
        (k, ck, graphs)
    }

    #[test]
    fn repeats_hit_and_match_fresh_inference() {
        let (k, ck, graphs) = setup(4);
        let cfg = KernelCfg::build(&k);
        let pic = Pic::new(&ck, &k, &cfg);
        let cached = CachedPredictor::new(&pic, 64);
        let first = cached.predict_batch(&graphs);
        let second = cached.predict_batch(&graphs);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.probs, b.probs);
            assert_eq!(a.positive, b.positive);
        }
        let s = cached.stats();
        assert_eq!(s.cache_misses, 4);
        assert_eq!(s.cache_hits, 4);
        assert_eq!(s.inferences, 4, "second pass served entirely from cache");
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
        assert_eq!(cached.len(), 4);
    }

    #[test]
    fn intra_batch_duplicates_infer_once() {
        let (k, ck, graphs) = setup(2);
        let cfg = KernelCfg::build(&k);
        let pic = Pic::new(&ck, &k, &cfg);
        let cached = CachedPredictor::new(&pic, 64);
        let doubled =
            vec![graphs[0].clone(), graphs[1].clone(), graphs[0].clone(), graphs[1].clone()];
        let out = cached.predict_batch(&doubled);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].probs, out[2].probs);
        assert_eq!(out[1].probs, out[3].probs);
        assert_eq!(cached.stats().inferences, 2, "duplicates deduped before inference");
        assert_eq!(cached.stats().cache_misses, 4, "all four slots missed the cache");
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let (k, ck, graphs) = setup(5);
        let cfg = KernelCfg::build(&k);
        let pic = Pic::new(&ck, &k, &cfg);
        let cached = CachedPredictor::new(&pic, 2);
        for g in &graphs {
            cached.predict_one(g);
        }
        assert!(cached.len() <= 2);
        let s = cached.stats();
        assert_eq!(s.cache_misses, 5);
        assert!(s.cache_evictions >= 3);
        assert_eq!(cached.evictions(), s.cache_evictions, "accessor mirrors the stats counter");
        cached.clear();
        assert!(cached.is_empty());
    }

    #[test]
    fn hits_refresh_recency_so_hot_entries_survive() {
        let (k, ck, graphs) = setup(3);
        let cfg = KernelCfg::build(&k);
        let pic = Pic::new(&ck, &k, &cfg);
        let cached = CachedPredictor::new(&pic, 2);
        cached.predict_one(&graphs[0]); // miss: cache {0}
        cached.predict_one(&graphs[1]); // miss: cache {0, 1}
        cached.predict_one(&graphs[0]); // hit: 0 becomes most recent
        cached.predict_one(&graphs[2]); // miss: evicts LRU = 1, not FIFO-oldest 0
        assert_eq!(cached.evictions(), 1);
        assert_eq!(cached.stats().inferences, 3);
        cached.predict_one(&graphs[0]); // still resident: no new inference
        assert_eq!(cached.stats().inferences, 3, "hot entry survived the eviction");
        cached.predict_one(&graphs[1]); // was evicted: must re-infer
        assert_eq!(cached.stats().inferences, 4, "cold entry was the one evicted");
    }

    #[test]
    fn distinct_checkpoints_do_not_share_entries() {
        let (k, ck_a, graphs) = setup(1);
        let cfg = KernelCfg::build(&k);
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck_b = Checkpoint::new(&model, 0.25, "other");
        let pic_a = Pic::new(&ck_a, &k, &cfg);
        let pic_b = Pic::new(&ck_b, &k, &cfg);
        let cached_a = CachedPredictor::new(&pic_a, 8);
        let cached_b = CachedPredictor::new(&pic_b, 8);
        cached_a.predict_one(&graphs[0]);
        cached_b.predict_one(&graphs[0]);
        // Same graph, different model fingerprints: distinct keys.
        assert_ne!(
            fnv1a(pic_a.fingerprint(), &graph_fingerprint(&graphs[0]).to_le_bytes()),
            fnv1a(pic_b.fingerprint(), &graph_fingerprint(&graphs[0]).to_le_bytes()),
        );
    }
}
