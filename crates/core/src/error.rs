//! Error handling for checkpoint and dataset persistence.
//!
//! The substrate crates return their own error types (`serde_json::Error`,
//! [`snowcat_corpus::DecodeError`]); this module folds them — together with
//! filesystem failures — into one [`SnowcatError`] so callers (notably the
//! CLI) can report a path-qualified message and exit non-zero instead of
//! panicking on a missing or corrupt file.

use snowcat_corpus::{decode_dataset, encode_dataset, Dataset};
use snowcat_nn::Checkpoint;
use std::fmt;
use std::path::{Path, PathBuf};

/// Unified error for checkpoint/dataset load and save paths.
#[derive(Debug)]
pub enum SnowcatError {
    /// A filesystem read or write failed.
    Io {
        /// The file being read or written.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A file was read but its contents could not be parsed.
    Parse {
        /// The file being parsed.
        path: PathBuf,
        /// What the parser objected to.
        message: String,
    },
    /// A configuration was rejected before any I/O happened.
    Config(String),
    /// A concurrent test exhausted its fuel budget on every retry and was
    /// quarantined as hung.
    ExecutionHung {
        /// The (STI, STI) index pair identifying the concurrent test.
        cti: (usize, usize),
        /// The fuel (step) budget each attempt was given.
        fuel: u64,
    },
    /// A campaign checkpoint failed its integrity checks (bad magic, torn
    /// length framing, or checksum mismatch) and no fallback was usable.
    CheckpointCorrupt {
        /// The checkpoint file.
        path: PathBuf,
        /// What the integrity check objected to.
        detail: String,
    },
    /// A campaign worker panicked; the other campaigns' results survive.
    CampaignFailed {
        /// Label of the failed campaign (explorer name).
        label: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The predictor chain degraded to the baseline fallback (reported when
    /// the caller asked degradation to be fatal via `--fail-on-degraded`).
    PredictorDegraded {
        /// Description of the predictor chain that degraded.
        chain: String,
        /// How many batches fell back to the baseline.
        degraded_batches: u64,
    },
}

impl fmt::Display for SnowcatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnowcatError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            SnowcatError::Parse { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            SnowcatError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SnowcatError::ExecutionHung { cti, fuel } => {
                write!(
                    f,
                    "concurrent test (sti {}, sti {}) hung: exhausted fuel budget of {fuel} \
                     steps on every attempt",
                    cti.0, cti.1
                )
            }
            SnowcatError::CheckpointCorrupt { path, detail } => {
                write!(f, "{}: checkpoint corrupt: {detail}", path.display())
            }
            SnowcatError::CampaignFailed { label, message } => {
                write!(f, "campaign '{label}' failed: worker panicked: {message}")
            }
            SnowcatError::PredictorDegraded { chain, degraded_batches } => {
                write!(
                    f,
                    "predictor '{chain}' degraded: {degraded_batches} batch(es) fell back \
                     to the baseline service"
                )
            }
        }
    }
}

impl SnowcatError {
    /// Stable, documented process exit code for each failure class (the CLI
    /// maps errors through this so scripts can distinguish fault kinds).
    pub fn exit_code(&self) -> i32 {
        match self {
            SnowcatError::Io { .. } | SnowcatError::Parse { .. } => 1,
            SnowcatError::Config(_) => 2,
            SnowcatError::ExecutionHung { .. } => 3,
            SnowcatError::CheckpointCorrupt { .. } => 4,
            SnowcatError::CampaignFailed { .. } => 5,
            SnowcatError::PredictorDegraded { .. } => 6,
        }
    }
}

impl std::error::Error for SnowcatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnowcatError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Load a PIC checkpoint from a JSON file.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, SnowcatError> {
    let text = std::fs::read_to_string(path)
        .map_err(|source| SnowcatError::Io { path: path.to_owned(), source })?;
    Checkpoint::from_json(&text).map_err(|e| SnowcatError::Parse {
        path: path.to_owned(),
        message: format!("not a PIC checkpoint: {e}"),
    })
}

/// Save a PIC checkpoint as JSON.
pub fn save_checkpoint(path: &Path, ck: &Checkpoint) -> Result<(), SnowcatError> {
    let json = ck.to_json().map_err(|e| SnowcatError::Parse {
        path: path.to_owned(),
        message: format!("checkpoint serialization failed: {e}"),
    })?;
    std::fs::write(path, json).map_err(|source| SnowcatError::Io { path: path.to_owned(), source })
}

/// Load a dataset, accepting either the SCDS binary format or JSON (the
/// format is sniffed from the leading byte, so either output of
/// [`save_dataset`] round-trips).
pub fn load_dataset(path: &Path) -> Result<Dataset, SnowcatError> {
    let bytes =
        std::fs::read(path).map_err(|source| SnowcatError::Io { path: path.to_owned(), source })?;
    // JSON datasets start with '{' (possibly after whitespace); the SCDS
    // binary magic does not.
    let looks_json = bytes.iter().find(|b| !b.is_ascii_whitespace()) == Some(&b'{');
    if looks_json {
        let text = String::from_utf8(bytes).map_err(|e| SnowcatError::Parse {
            path: path.to_owned(),
            message: format!("not UTF-8 JSON: {e}"),
        })?;
        Dataset::from_json(&text).map_err(|e| SnowcatError::Parse {
            path: path.to_owned(),
            message: format!("not a dataset: {e}"),
        })
    } else {
        decode_dataset(bytes::Bytes::from(bytes)).map_err(|e| SnowcatError::Parse {
            path: path.to_owned(),
            message: format!("not an SCDS dataset: {e}"),
        })
    }
}

/// Save a dataset in the SCDS binary format.
pub fn save_dataset(path: &Path, ds: &Dataset) -> Result<(), SnowcatError> {
    let bytes = encode_dataset(ds);
    std::fs::write(path, bytes.as_slice())
        .map_err(|source| SnowcatError::Io { path: path.to_owned(), source })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_nn::{PicConfig, PicModel};

    #[test]
    fn checkpoint_roundtrip_and_error_paths() {
        let dir = std::env::temp_dir().join("snowcat-error-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let model = PicModel::new(PicConfig { hidden: 4, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "rt");
        let path = dir.join("ck.json");
        save_checkpoint(&path, &ck).unwrap();
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back.name, "rt");
        assert_eq!(back.threshold, 0.5);

        let missing = load_checkpoint(&dir.join("nope.json"));
        assert!(matches!(missing, Err(SnowcatError::Io { .. })));
        let msg = missing.unwrap_err().to_string();
        assert!(msg.contains("nope.json"), "error names the path: {msg}");

        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"not\": \"a checkpoint\"}").unwrap();
        let parse = load_checkpoint(&bad);
        assert!(matches!(parse, Err(SnowcatError::Parse { .. })));
    }

    #[test]
    fn dataset_roundtrip_binary_and_json() {
        let dir = std::env::temp_dir().join("snowcat-error-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let ds = Dataset::default();
        let bin = dir.join("ds.scds");
        save_dataset(&bin, &ds).unwrap();
        let back = load_dataset(&bin).unwrap();
        assert_eq!(back.examples.len(), ds.examples.len());

        let json = dir.join("ds.json");
        std::fs::write(&json, ds.to_json().unwrap()).unwrap();
        let back2 = load_dataset(&json).unwrap();
        assert_eq!(back2.examples.len(), ds.examples.len());

        let garbage = dir.join("garbage.bin");
        std::fs::write(&garbage, [0u8; 7]).unwrap();
        assert!(matches!(load_dataset(&garbage), Err(SnowcatError::Parse { .. })));
    }
}
