//! Error handling for checkpoint and dataset persistence.
//!
//! The substrate crates return their own error types (`serde_json::Error`,
//! [`snowcat_corpus::DecodeError`]); this module folds them — together with
//! filesystem failures — into one [`SnowcatError`] so callers (notably the
//! CLI) can report a path-qualified message and exit non-zero instead of
//! panicking on a missing or corrupt file.

use snowcat_corpus::{
    decode_dataset, encode_dataset, frame_checksummed, unframe_checksummed, Dataset,
};
use snowcat_nn::Checkpoint;
use std::fmt;
use std::path::{Path, PathBuf};

/// Magic of the Snowcat Model Checkpoint envelope (binary, bit-exact).
pub const MODEL_MAGIC: &[u8; 4] = b"SCMC";
/// Current model-checkpoint envelope version. v2 adds the static-channel
/// fields (`static_channels` in the config, the `w_static` tensor between
/// the output head and the flow head); v1 checkpoints still load as
/// channel-free models via [`MIN_MODEL_VERSION`] routing.
pub const MODEL_VERSION: u16 = 2;
/// Oldest model-checkpoint envelope version still readable.
pub const MIN_MODEL_VERSION: u16 = 1;

/// Unified error for checkpoint/dataset load and save paths.
#[derive(Debug)]
pub enum SnowcatError {
    /// A filesystem read or write failed.
    Io {
        /// The file being read or written.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A file was read but its contents could not be parsed.
    Parse {
        /// The file being parsed.
        path: PathBuf,
        /// What the parser objected to.
        message: String,
    },
    /// A configuration was rejected before any I/O happened.
    Config(String),
    /// A concurrent test exhausted its fuel budget on every retry and was
    /// quarantined as hung.
    ExecutionHung {
        /// The (STI, STI) index pair identifying the concurrent test.
        cti: (usize, usize),
        /// The fuel (step) budget each attempt was given.
        fuel: u64,
    },
    /// A campaign checkpoint failed its integrity checks (bad magic, torn
    /// length framing, or checksum mismatch) and no fallback was usable.
    CheckpointCorrupt {
        /// The checkpoint file.
        path: PathBuf,
        /// What the integrity check objected to.
        detail: String,
    },
    /// A campaign worker panicked; the other campaigns' results survive.
    CampaignFailed {
        /// Label of the failed campaign (explorer name).
        label: String,
        /// The panic payload, if it was a string.
        message: String,
        /// The fault-plan entry that triggered the panic (e.g. `panic@1`),
        /// when the failure came from deliberate fault injection.
        fault: Option<String>,
    },
    /// The predictor chain degraded to the baseline fallback (reported when
    /// the caller asked degradation to be fatal via `--fail-on-degraded`).
    PredictorDegraded {
        /// Description of the predictor chain that degraded.
        chain: String,
        /// How many batches fell back to the baseline.
        degraded_batches: u64,
    },
    /// Training hit an unrecoverable anomaly: an epoch kept producing
    /// NaN/Inf losses or gradient spikes through every salted retry.
    TrainingDiverged {
        /// The epoch that could not be completed.
        epoch: usize,
        /// Retries attempted after the first failure.
        retries: usize,
        /// The last anomaly observed.
        cause: String,
    },
    /// A fleet run could not produce a complete merged report: one or more
    /// shards ended in a non-recoverable state (quarantined after repeated
    /// lease losses, or failed outright).
    FleetFailed {
        /// Shards that never reached `Done`.
        failed_shards: Vec<usize>,
        /// Total shards in the fleet.
        shards: usize,
        /// Description of the first failure observed.
        detail: String,
    },
    /// A fleet worker died (panicked, was killed by fault injection, or
    /// exited without completing its shard) and the shard could not be
    /// recovered by work-stealing.
    WorkerLost {
        /// The worker slot that was lost.
        worker: usize,
        /// The shard the worker held when it died.
        shard: usize,
        /// What the coordinator observed.
        detail: String,
    },
    /// A shard lease expired: the holder missed its heartbeat deadline and
    /// the coordinator could not re-lease the shard to any worker.
    LeaseExpired {
        /// The shard whose lease expired.
        shard: usize,
        /// The worker slot that held the lease.
        worker: usize,
        /// The heartbeat deadline that was missed, in milliseconds.
        deadline_ms: u64,
    },
    /// The fleet degraded below its configured worker floor: live workers
    /// dropped under `--min-workers` (but not to zero), so the coordinator
    /// checkpointed and stopped rather than limping along. The SCFC stays
    /// on disk; rerun with `--resume`.
    FleetDegraded {
        /// Workers still alive when the fleet stopped.
        live_workers: usize,
        /// The configured worker floor.
        min_workers: usize,
        /// Where to resume from.
        detail: String,
    },
    /// A fault-plan spec was rejected: an unknown directive, a malformed
    /// token, or a position/slot outside the run it was applied to.
    FaultPlan {
        /// The offending token (or the whole spec when the token is unknown).
        token: String,
        /// What the parser or validator objected to.
        detail: String,
    },
}

impl fmt::Display for SnowcatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnowcatError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            SnowcatError::Parse { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            SnowcatError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SnowcatError::ExecutionHung { cti, fuel } => {
                write!(
                    f,
                    "concurrent test (sti {}, sti {}) hung: exhausted fuel budget of {fuel} \
                     steps on every attempt",
                    cti.0, cti.1
                )
            }
            SnowcatError::CheckpointCorrupt { path, detail } => {
                write!(f, "{}: checkpoint corrupt: {detail}", path.display())
            }
            SnowcatError::CampaignFailed { label, message, fault } => {
                write!(f, "campaign '{label}' failed: worker panicked: {message}")?;
                if let Some(entry) = fault {
                    write!(f, " [injected by fault-plan entry '{entry}']")?;
                }
                Ok(())
            }
            SnowcatError::PredictorDegraded { chain, degraded_batches } => {
                write!(
                    f,
                    "predictor '{chain}' degraded: {degraded_batches} batch(es) fell back \
                     to the baseline service"
                )
            }
            SnowcatError::TrainingDiverged { epoch, retries, cause } => {
                write!(
                    f,
                    "training diverged at epoch {epoch} after {retries} salted retr{}: {cause}",
                    if *retries == 1 { "y" } else { "ies" }
                )
            }
            SnowcatError::FleetFailed { failed_shards, shards, detail } => {
                write!(
                    f,
                    "fleet failed: {}/{} shard(s) did not complete ({:?}): {detail}",
                    failed_shards.len(),
                    shards,
                    failed_shards
                )
            }
            SnowcatError::WorkerLost { worker, shard, detail } => {
                write!(f, "fleet worker {worker} lost while holding shard {shard}: {detail}")
            }
            SnowcatError::LeaseExpired { shard, worker, deadline_ms } => {
                write!(
                    f,
                    "lease on shard {shard} expired: worker {worker} missed its \
                     {deadline_ms}ms heartbeat deadline"
                )
            }
            SnowcatError::FleetDegraded { live_workers, min_workers, detail } => {
                write!(
                    f,
                    "fleet degraded: {live_workers} live worker(s) left, below the \
                     --min-workers floor of {min_workers}: {detail}"
                )
            }
            SnowcatError::FaultPlan { token, detail } => {
                write!(f, "invalid fault plan: '{token}': {detail}")
            }
        }
    }
}

impl SnowcatError {
    /// Stable, documented process exit code for each failure class (the CLI
    /// maps errors through this so scripts can distinguish fault kinds).
    pub fn exit_code(&self) -> i32 {
        match self {
            SnowcatError::Io { .. } | SnowcatError::Parse { .. } => 1,
            SnowcatError::Config(_) | SnowcatError::FaultPlan { .. } => 2,
            SnowcatError::ExecutionHung { .. } => 3,
            SnowcatError::CheckpointCorrupt { .. } => 4,
            SnowcatError::CampaignFailed { .. } => 5,
            SnowcatError::PredictorDegraded { .. } => 6,
            SnowcatError::TrainingDiverged { .. } => 7,
            SnowcatError::FleetFailed { .. }
            | SnowcatError::WorkerLost { .. }
            | SnowcatError::LeaseExpired { .. }
            | SnowcatError::FleetDegraded { .. } => 8,
        }
    }
}

impl std::error::Error for SnowcatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnowcatError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Serialize a PIC checkpoint into its checksummed SCMC envelope.
pub fn encode_model_checkpoint_framed(ck: &Checkpoint) -> Vec<u8> {
    let payload = snowcat_nn::encode_model_checkpoint(ck);
    frame_checksummed(MODEL_MAGIC, MODEL_VERSION, &payload).to_vec()
}

/// Decode an SCMC envelope, verifying magic, version, length and checksum.
pub fn decode_model_checkpoint_framed(
    path: &Path,
    bytes: &[u8],
) -> Result<Checkpoint, SnowcatError> {
    let corrupt =
        |detail: String| SnowcatError::CheckpointCorrupt { path: path.to_owned(), detail };
    let (version, payload) = unframe_checksummed(
        MODEL_MAGIC,
        MIN_MODEL_VERSION,
        MODEL_VERSION,
        bytes::Bytes::from(bytes.to_vec()),
    )
    .map_err(|e| corrupt(e.to_string()))?;
    let decoded = if version >= 2 {
        snowcat_nn::decode_model_checkpoint(payload.as_slice())
    } else {
        snowcat_nn::decode_model_checkpoint_legacy(payload.as_slice())
    };
    decoded.map_err(|e| corrupt(format!("payload is not a model checkpoint: {e}")))
}

/// Load a PIC checkpoint: the binary SCMC format, or legacy JSON (sniffed
/// from the leading byte so pre-existing checkpoints and `--export-json`
/// output both load).
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, SnowcatError> {
    let bytes =
        std::fs::read(path).map_err(|source| SnowcatError::Io { path: path.to_owned(), source })?;
    let looks_json = bytes.iter().find(|b| !b.is_ascii_whitespace()) == Some(&b'{');
    if looks_json {
        let text = std::str::from_utf8(&bytes).map_err(|e| SnowcatError::Parse {
            path: path.to_owned(),
            message: format!("not UTF-8 JSON: {e}"),
        })?;
        Checkpoint::from_json(text).map_err(|e| SnowcatError::Parse {
            path: path.to_owned(),
            message: format!("not a PIC checkpoint: {e}"),
        })
    } else {
        decode_model_checkpoint_framed(path, &bytes)
    }
}

/// Save a PIC checkpoint in the binary SCMC format (bit-exact floats,
/// CRC-protected). Use [`save_checkpoint_json`] for an inspectable export.
pub fn save_checkpoint(path: &Path, ck: &Checkpoint) -> Result<(), SnowcatError> {
    std::fs::write(path, encode_model_checkpoint_framed(ck))
        .map_err(|source| SnowcatError::Io { path: path.to_owned(), source })
}

/// Save a PIC checkpoint as JSON for human inspection. JSON is *lossy* for
/// non-finite floats (they serialize as null) — the binary format is the
/// authoritative one.
pub fn save_checkpoint_json(path: &Path, ck: &Checkpoint) -> Result<(), SnowcatError> {
    let json = ck.to_json().map_err(|e| SnowcatError::Parse {
        path: path.to_owned(),
        message: format!("checkpoint serialization failed: {e}"),
    })?;
    std::fs::write(path, json).map_err(|source| SnowcatError::Io { path: path.to_owned(), source })
}

/// Decode dataset bytes as read from `path` — SCDS binary or JSON, sniffed
/// from the leading byte. Split out of [`load_dataset`] so callers that
/// need to intercept the raw bytes (fault injection, shard quarantine) can
/// reuse the exact decode path.
pub fn decode_dataset_auto(path: &Path, bytes: Vec<u8>) -> Result<Dataset, SnowcatError> {
    // JSON datasets start with '{' (possibly after whitespace); the SCDS
    // binary magic does not.
    let looks_json = bytes.iter().find(|b| !b.is_ascii_whitespace()) == Some(&b'{');
    if looks_json {
        let text = String::from_utf8(bytes).map_err(|e| SnowcatError::Parse {
            path: path.to_owned(),
            message: format!("not UTF-8 JSON: {e}"),
        })?;
        Dataset::from_json(&text).map_err(|e| SnowcatError::Parse {
            path: path.to_owned(),
            message: format!("not a dataset: {e}"),
        })
    } else {
        decode_dataset(bytes::Bytes::from(bytes)).map_err(|e| SnowcatError::Parse {
            path: path.to_owned(),
            message: format!("not an SCDS dataset: {e}"),
        })
    }
}

/// Load a dataset, accepting either the SCDS binary format or JSON (the
/// format is sniffed from the leading byte, so either output of
/// [`save_dataset`] round-trips).
pub fn load_dataset(path: &Path) -> Result<Dataset, SnowcatError> {
    let bytes =
        std::fs::read(path).map_err(|source| SnowcatError::Io { path: path.to_owned(), source })?;
    decode_dataset_auto(path, bytes)
}

/// Save a dataset in the SCDS binary format.
pub fn save_dataset(path: &Path, ds: &Dataset) -> Result<(), SnowcatError> {
    let bytes = encode_dataset(ds);
    std::fs::write(path, bytes.as_slice())
        .map_err(|source| SnowcatError::Io { path: path.to_owned(), source })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_nn::{PicConfig, PicModel};

    #[test]
    fn checkpoint_roundtrip_and_error_paths() {
        let dir = std::env::temp_dir().join("snowcat-error-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let model = PicModel::new(PicConfig { hidden: 4, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.5, "rt");
        let path = dir.join("ck.json");
        save_checkpoint(&path, &ck).unwrap();
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back.name, "rt");
        assert_eq!(back.threshold, 0.5);

        let missing = load_checkpoint(&dir.join("nope.json"));
        assert!(matches!(missing, Err(SnowcatError::Io { .. })));
        let msg = missing.unwrap_err().to_string();
        assert!(msg.contains("nope.json"), "error names the path: {msg}");

        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"not\": \"a checkpoint\"}").unwrap();
        let parse = load_checkpoint(&bad);
        assert!(matches!(parse, Err(SnowcatError::Parse { .. })));
    }

    #[test]
    fn model_checkpoint_binary_is_authoritative_and_json_still_loads() {
        let dir = std::env::temp_dir().join("snowcat-error-tests-scmc");
        std::fs::create_dir_all(&dir).unwrap();
        let model = PicModel::new(PicConfig { hidden: 4, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.45, "scmc");

        // Binary round-trip is exact (full struct equality, not just name).
        let bin = dir.join("ck.scmc");
        save_checkpoint(&bin, &ck).unwrap();
        let raw = std::fs::read(&bin).unwrap();
        assert_eq!(&raw[..4], MODEL_MAGIC, "file leads with the SCMC magic");
        assert_eq!(load_checkpoint(&bin).unwrap(), ck);

        // Legacy / exported JSON loads through the same entry point.
        let json = dir.join("ck.json");
        save_checkpoint_json(&json, &ck).unwrap();
        assert_eq!(load_checkpoint(&json).unwrap(), ck);

        // A flipped byte is detected by the CRC, not deserialized.
        let mut bad = raw.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        let bad_path = dir.join("ck-bad.scmc");
        std::fs::write(&bad_path, &bad).unwrap();
        assert!(matches!(load_checkpoint(&bad_path), Err(SnowcatError::CheckpointCorrupt { .. })));
    }

    #[test]
    fn v1_model_checkpoints_still_load_as_channel_free_models() {
        use snowcat_corpus::frame_checksummed;
        let dir = std::env::temp_dir().join("snowcat-error-tests-scmc-v1");
        std::fs::create_dir_all(&dir).unwrap();
        // Re-create the v1 payload byte-for-byte: the legacy config layout
        // (no static_channels) followed by the legacy parameter layout (no
        // w_static), framed with version 1.
        let model = PicModel::new(PicConfig {
            hidden: 4,
            layers: 1,
            static_channels: 0,
            ..Default::default()
        });
        let ck = Checkpoint::new(&model, 0.5, "v1");
        let mut e = snowcat_nn::Enc::new();
        e.put_u32(ck.cfg.hidden as u32);
        e.put_u32(ck.cfg.layers as u32);
        e.put_u32(ck.cfg.vocab as u32);
        e.put_f32(ck.cfg.pos_weight);
        e.put_f32(ck.cfg.urb_weight);
        e.put_f32(ck.cfg.flow_weight);
        e.put_u64(ck.cfg.seed);
        for m in [
            &ck.params.tok_emb,
            &ck.params.type_emb,
            &ck.params.sched_emb,
            &ck.params.w_in,
            &ck.params.b_in,
        ] {
            e.put_mat(m);
        }
        e.put_u32(ck.params.layers.len() as u32);
        for layer in &ck.params.layers {
            e.put_mat(&layer.w_self);
            e.put_u32(layer.w_rel.len() as u32);
            for w in &layer.w_rel {
                e.put_mat(w);
            }
            e.put_mat(&layer.b);
        }
        e.put_mat(&ck.params.w_out);
        e.put_mat(&ck.params.b_out);
        e.put_mat(&ck.params.w_flow);
        e.put_mat(&ck.params.b_flow);
        e.put_f32(ck.threshold);
        e.put_str(&ck.name);
        let framed = frame_checksummed(MODEL_MAGIC, 1, &e.finish());
        let path = dir.join("v1.scmc");
        std::fs::write(&path, framed.as_slice()).unwrap();
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back.cfg.static_channels, 0);
        assert_eq!(back.cfg.hidden, ck.cfg.hidden);
        assert_eq!(back.params.w_flow, ck.params.w_flow);
        assert_eq!(back.name, "v1");
    }

    #[test]
    fn training_diverged_has_its_own_exit_code() {
        let err = SnowcatError::TrainingDiverged { epoch: 3, retries: 2, cause: "NaN loss".into() };
        assert_eq!(err.exit_code(), 7);
        let msg = err.to_string();
        assert!(msg.contains("epoch 3") && msg.contains("NaN loss"), "{msg}");
    }

    #[test]
    fn fleet_errors_share_exit_code_8() {
        let failed = SnowcatError::FleetFailed {
            failed_shards: vec![1, 3],
            shards: 4,
            detail: "shard 1 quarantined".into(),
        };
        let lost =
            SnowcatError::WorkerLost { worker: 2, shard: 1, detail: "worker panicked".into() };
        let expired = SnowcatError::LeaseExpired { shard: 3, worker: 0, deadline_ms: 500 };
        let degraded = SnowcatError::FleetDegraded {
            live_workers: 1,
            min_workers: 2,
            detail: "resume from run/fleet.scfc".into(),
        };
        for err in [&failed, &lost, &expired, &degraded] {
            assert_eq!(err.exit_code(), 8, "{err}");
        }
        assert!(failed.to_string().contains("2/4 shard(s)"), "{failed}");
        assert!(lost.to_string().contains("worker 2"), "{lost}");
        assert!(expired.to_string().contains("500ms"), "{expired}");
        assert!(degraded.to_string().contains("below the --min-workers floor of 2"), "{degraded}");
    }

    #[test]
    fn fault_plan_errors_are_config_class() {
        let err = SnowcatError::FaultPlan {
            token: "hang@99".into(),
            detail: "position 99 is outside the 16-CTI stream".into(),
        };
        assert_eq!(err.exit_code(), 2);
        let msg = err.to_string();
        assert!(msg.contains("hang@99") && msg.contains("outside"), "{msg}");
    }

    #[test]
    fn dataset_roundtrip_binary_and_json() {
        let dir = std::env::temp_dir().join("snowcat-error-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let ds = Dataset::default();
        let bin = dir.join("ds.scds");
        save_dataset(&bin, &ds).unwrap();
        let back = load_dataset(&bin).unwrap();
        assert_eq!(back.examples.len(), ds.examples.len());

        let json = dir.join("ds.json");
        std::fs::write(&json, ds.to_json().unwrap()).unwrap();
        let back2 = load_dataset(&json).unwrap();
        assert_eq!(back2.examples.len(), ds.examples.len());

        let garbage = dir.join("garbage.bin");
        std::fs::write(&garbage, [0u8; 7]).unwrap();
        assert!(matches!(load_dataset(&garbage), Err(SnowcatError::Parse { .. })));
    }
}
