//! Snowboard-style CTI clustering and exemplar sampling (§5.6.2).
//!
//! Snowboard clusters CTIs by the INS-PAIR strategy: two STIs fall into the
//! cluster of every (write-instruction, read-instruction) pair that touches
//! the same shared-memory address in their single-thread executions. From
//! each cluster it samples *exemplar* CTIs for dynamic testing. We reproduce
//! three samplers:
//!
//! * **SB-RND(p)** — sample a fixed percentage of the cluster at random,
//! * **SB-PIC(S1)** / **SB-PIC(S2)** — predict each member's coverage under
//!   a synthetic scheduling hint that forces the write to yield to the read,
//!   and keep members the selection strategy finds interesting.

use crate::predictor::PredictorService;
use crate::strategy::{S1NewBitmap, S2NewBlocks, SelectionStrategy};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use snowcat_corpus::StiProfile;
use snowcat_kernel::{InstrLoc, Kernel, ThreadId};
use snowcat_race::match_planted_bug;
use snowcat_race::RaceDetector;
use snowcat_vm::{run_ct, Cti, ScheduleHints, SwitchPoint, VmConfig};
use std::collections::HashMap;

/// An INS-PAIR cluster key: a write instruction and a read instruction that
/// touched the same address in the constituent STIs' sequential runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InsPair {
    /// The writing instruction (in the first STI).
    pub write: InstrLoc,
    /// The reading instruction (in the second STI).
    pub read: InstrLoc,
}

/// One cluster member: a CTI (corpus index pair, writer side first) plus the
/// step at which the write occurred in the writer's sequential run — used to
/// synthesize the write-yields-to-read scheduling hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterMember {
    /// (writer STI, reader STI) corpus indices.
    pub pair: (usize, usize),
    /// Writer-thread executed count at the write.
    pub write_step: u64,
}

/// INS-PAIR clustering of a CTI list.
pub fn cluster_ctis(
    corpus: &[StiProfile],
    ctis: &[(usize, usize)],
) -> HashMap<InsPair, Vec<ClusterMember>> {
    let mut clusters: HashMap<InsPair, Vec<ClusterMember>> = HashMap::new();
    for &(ia, ib) in ctis {
        // Orientation 1: writes from a, reads from b; orientation 2 swapped.
        for (wi, ri) in [(ia, ib), (ib, ia)] {
            let w_seq = &corpus[wi].seq;
            let r_seq = &corpus[ri].seq;
            let mut reads: HashMap<u32, Vec<InstrLoc>> = HashMap::new();
            for acc in &r_seq.accesses {
                if !acc.is_write {
                    let v = reads.entry(acc.addr.0).or_default();
                    if !v.contains(&acc.loc) {
                        v.push(acc.loc);
                    }
                }
            }
            let mut seen_pairs = std::collections::HashSet::new();
            for acc in &w_seq.accesses {
                if !acc.is_write {
                    continue;
                }
                if let Some(rlocs) = reads.get(&acc.addr.0) {
                    for &rloc in rlocs {
                        let key = InsPair { write: acc.loc, read: rloc };
                        if !seen_pairs.insert(key) {
                            continue;
                        }
                        clusters
                            .entry(key)
                            .or_default()
                            .push(ClusterMember { pair: (wi, ri), write_step: acc.step });
                    }
                }
            }
        }
    }
    clusters
}

/// The synthetic single scheduling hint Snowboard-PIC feeds the model: the
/// writer runs up to (and including) the write, then yields to the reader.
pub fn write_yield_hint(member: &ClusterMember) -> ScheduleHints {
    ScheduleHints {
        first: ThreadId(0),
        switches: vec![SwitchPoint { thread: ThreadId(0), after: member.write_step + 1 }],
    }
}

/// Run Snowboard's interleaving exploration on a cluster member and report
/// whether `bug` manifests: the write-yields-to-read hint first, then a few
/// perturbed variants (Snowboard explores interleavings of the predicted
/// data flow).
pub fn member_exposes_bug(
    kernel: &Kernel,
    corpus: &[StiProfile],
    member: &ClusterMember,
    bug_id: snowcat_kernel::BugId,
    extra_schedules: usize,
    seed: u64,
) -> bool {
    let detector = RaceDetector::default();
    let (wi, ri) = member.pair;
    let cti = Cti::new(corpus[wi].sti.clone(), corpus[ri].sti.clone());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut schedules = vec![write_yield_hint(member)];
    let reader_len = corpus[ri].seq.steps.max(1);
    for _ in 0..extra_schedules {
        // Perturb: writer yields around the write, reader yields back at a
        // random point.
        let jitter = rng.gen_range(0..4u64);
        schedules.push(ScheduleHints {
            first: ThreadId(0),
            switches: vec![
                SwitchPoint {
                    thread: ThreadId(0),
                    after: member.write_step.saturating_sub(jitter) + 1,
                },
                SwitchPoint { thread: ThreadId(1), after: rng.gen_range(1..=reader_len) },
            ],
        });
    }
    for hints in schedules {
        let r = run_ct(kernel, &cti, hints, VmConfig::default());
        if r.hit_bug(bug_id) {
            return true;
        }
        if detector
            .detect(kernel, &r)
            .iter()
            .any(|rep| match_planted_bug(kernel, rep) == Some(bug_id))
        {
            return true;
        }
    }
    false
}

/// A sampling approach for cluster exemplars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampler {
    /// Random p-fraction of the cluster.
    Random(f64),
    /// PIC + strategy S1 (new coverage bitmaps).
    PicS1,
    /// PIC + strategy S2 (new positive blocks).
    PicS2,
}

impl Sampler {
    /// Table 5 row label.
    pub fn label(self) -> String {
        match self {
            Sampler::Random(p) => format!("SB-RND({:.0}%)", p * 100.0),
            Sampler::PicS1 => "SB-PIC(S1)".into(),
            Sampler::PicS2 => "SB-PIC(S2)".into(),
        }
    }
}

/// Select exemplar member indices from a cluster.
///
/// For the PIC samplers, `predictions` must hold each member's predicted
/// coverage under its write-yield hint (precomputed once per cluster via
/// [`predict_members`]); the strategy's cumulative memory runs over the
/// members in the (shuffled) order given by `order`.
pub fn sample_cluster<R: Rng>(
    sampler: Sampler,
    order: &[usize],
    predictions: Option<&[crate::pic::PredictedCoverage]>,
    rng: &mut R,
) -> Vec<usize> {
    match sampler {
        Sampler::Random(p) => {
            let n = ((order.len() as f64 * p).ceil() as usize).clamp(1, order.len());
            // Reservoir-free: shuffle a copy and take n.
            let mut idx = order.to_vec();
            for i in (1..idx.len()).rev() {
                idx.swap(i, rng.gen_range(0..=i));
            }
            idx.truncate(n);
            idx
        }
        Sampler::PicS1 | Sampler::PicS2 => {
            let preds = predictions.expect("PIC sampler requires predictions");
            let mut strat: Box<dyn SelectionStrategy> = match sampler {
                Sampler::PicS1 => Box::new(S1NewBitmap::new()),
                _ => Box::new(S2NewBlocks::new()),
            };
            order.iter().copied().filter(|&m| strat.select(&preds[m])).collect()
        }
    }
}

/// Precompute each cluster member's PIC prediction under its write-yield
/// hint. Graphs for the whole cluster are built first and predicted as one
/// batch through the service's inference chain.
pub fn predict_members(
    service: &PredictorService<'_, '_>,
    corpus: &[StiProfile],
    members: &[ClusterMember],
) -> Vec<crate::pic::PredictedCoverage> {
    let graphs: Vec<_> = members
        .iter()
        .map(|m| {
            let (wi, ri) = m.pair;
            let (a, b) = (&corpus[wi], &corpus[ri]);
            let base = service.base_graph(a, b);
            service.pic().candidate_graph(&base, a, b, &write_yield_hint(m))
        })
        .collect();
    service.predictor().predict_batch(&graphs)
}

/// Table 5 outcome of running one sampler on one buggy cluster many times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplingOutcome {
    /// Sampler label.
    pub sampler: String,
    /// Fraction of trials whose sample contained a bug-exposing member.
    pub bug_finding_probability: f64,
    /// Mean CTIs executed per trial.
    pub mean_sampled: f64,
    /// Mean sampling rate (sampled / cluster size).
    pub sampling_rate: f64,
}

/// Run `trials` sampling trials on a cluster whose bug-exposing member set
/// is `exposing` (bitmask aligned with `members`).
pub fn run_sampling_trials<R: Rng>(
    sampler: Sampler,
    members_len: usize,
    exposing: &[bool],
    predictions: Option<&[crate::pic::PredictedCoverage]>,
    trials: usize,
    rng: &mut R,
) -> SamplingOutcome {
    assert_eq!(exposing.len(), members_len);
    let mut hits = 0usize;
    let mut total_sampled = 0usize;
    let mut order: Vec<usize> = (0..members_len).collect();
    for _ in 0..trials {
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let sampled = sample_cluster(sampler, &order, predictions, rng);
        total_sampled += sampled.len();
        if sampled.iter().any(|&m| exposing[m]) {
            hits += 1;
        }
    }
    SamplingOutcome {
        sampler: sampler.label(),
        bug_finding_probability: hits as f64 / trials.max(1) as f64,
        mean_sampled: total_sampled as f64 / trials.max(1) as f64,
        sampling_rate: total_sampled as f64 / (trials.max(1) * members_len.max(1)) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_corpus::StiFuzzer;
    use snowcat_kernel::{generate, GenConfig};

    fn setup() -> (Kernel, Vec<StiProfile>) {
        let k = generate(&GenConfig::default());
        let mut fz = StiFuzzer::new(&k, 1);
        fz.seed_each_syscall();
        fz.fuzz(30);
        let corpus = fz.into_corpus();
        (k, corpus)
    }

    #[test]
    fn clustering_groups_shared_memory_pairs() {
        let (k, corpus) = setup();
        // Same-subsystem neighbours (corpus entries 0..8 are the first
        // subsystem's syscalls) are guaranteed to share flag/stat words;
        // fully random pairs across 8 subsystems can legitimately share
        // nothing.
        let ctis: Vec<(usize, usize)> = (0..7).map(|i| (i, i + 1)).collect();
        let clusters = cluster_ctis(&corpus, &ctis);
        assert!(!clusters.is_empty(), "subsystem syscalls share flags/objects");
        for (key, members) in &clusters {
            assert!(!members.is_empty());
            // The write instruction must actually be a write in the writer's
            // sequential profile.
            for m in members {
                let w_seq = &corpus[m.pair.0].seq;
                assert!(w_seq
                    .accesses
                    .iter()
                    .any(|a| a.is_write && a.loc == key.write && a.step == m.write_step));
            }
        }
        let _ = k;
    }

    #[test]
    fn random_sampler_respects_fraction() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let order: Vec<usize> = (0..20).collect();
        let s = sample_cluster(Sampler::Random(0.25), &order, None, &mut rng);
        assert_eq!(s.len(), 5);
        let s = sample_cluster(Sampler::Random(0.01), &order, None, &mut rng);
        assert_eq!(s.len(), 1, "at least one exemplar is always sampled");
    }

    #[test]
    fn sampling_trials_probability_matches_rate() {
        // With 1 exposing member in 4 and 25% sampling (1 member), the hit
        // probability should be ≈ 0.25.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let exposing = vec![true, false, false, false];
        let out = run_sampling_trials(Sampler::Random(0.25), 4, &exposing, None, 4000, &mut rng);
        assert!((out.bug_finding_probability - 0.25).abs() < 0.05, "{out:?}");
        assert!((out.sampling_rate - 0.25).abs() < 1e-9);
    }

    #[test]
    fn write_yield_hint_switches_after_write() {
        let m = ClusterMember { pair: (0, 1), write_step: 7 };
        let h = write_yield_hint(&m);
        assert_eq!(h.first, ThreadId(0));
        assert_eq!(h.switches, vec![SwitchPoint { thread: ThreadId(0), after: 8 }]);
    }

    #[test]
    fn bug_carrier_cluster_exposes_planted_bug() {
        // Build a CTI from a bug's carrier syscalls; the write-yield hint
        // family should expose at least the easy order-violation bug.
        let (k, corpus) = setup();
        let bug =
            k.bugs.iter().find(|b| b.kind == snowcat_kernel::BugKind::OrderViolation).unwrap();
        let ia = corpus
            .iter()
            .position(|p| p.sti.calls.iter().any(|c| c.syscall == bug.syscalls.0))
            .unwrap();
        let ib = corpus
            .iter()
            .position(|p| p.sti.calls.iter().any(|c| c.syscall == bug.syscalls.1))
            .unwrap();
        let clusters = cluster_ctis(&corpus, &[(ia, ib)]);
        let mut exposed = false;
        for members in clusters.values() {
            for m in members {
                if member_exposes_bug(&k, &corpus, m, bug.id, 8, 5) {
                    exposed = true;
                    break;
                }
            }
        }
        assert!(exposed, "write-yield exploration should expose the OV bug");
    }
}
