//! End-to-end pipeline: kernel → corpus → datasets → pre-train → train →
//! tune → deployable checkpoint. This is the "240 hours of data collection
//! and training" step of the paper, scaled to minutes.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use snowcat_cfg::KernelCfg;
use snowcat_corpus::{build_dataset, make_splits, Dataset, DatasetConfig, StiFuzzer, StiProfile};
use snowcat_graph::GraphStats;
use snowcat_kernel::{asm, Kernel};
use snowcat_nn::{
    evaluate, pretrain, train, tune_threshold_f2_pooled, urb_average_precision, Checkpoint,
    LabeledGraph, MeanMetrics, PicConfig, PicModel, PretrainConfig, TrainConfig,
};

/// Pipeline configuration (scaled-down analogue of §5.1.1).
///
/// Construct with [`PipelineConfig::default`] and refine with the `with_*`
/// builders; the struct is `#[non_exhaustive]` so fields can be added
/// without breaking downstream crates.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct PipelineConfig {
    /// Fuzzing iterations for the STI corpus.
    pub fuzz_iterations: usize,
    /// Total CTIs drawn (split ≈48/6/46 into train/valid/eval).
    pub n_ctis: usize,
    /// Interleavings per training/validation CTI (paper: 64).
    pub train_interleavings: usize,
    /// Interleavings per evaluation CTI (paper: 1000).
    pub eval_interleavings: usize,
    /// Model hyperparameters.
    pub model: PicConfig,
    /// Training schedule.
    pub train: TrainConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            fuzz_iterations: 60,
            n_ctis: 40,
            train_interleavings: 8,
            eval_interleavings: 16,
            model: PicConfig::default(),
            train: TrainConfig::default(),
            seed: 0x517E,
        }
    }
}

impl PipelineConfig {
    /// Set the STI-corpus fuzzing iterations.
    pub fn with_fuzz_iterations(mut self, fuzz_iterations: usize) -> Self {
        self.fuzz_iterations = fuzz_iterations;
        self
    }

    /// Set the number of CTIs drawn.
    pub fn with_n_ctis(mut self, n_ctis: usize) -> Self {
        self.n_ctis = n_ctis;
        self
    }

    /// Set the interleavings per training/validation CTI.
    pub fn with_train_interleavings(mut self, train_interleavings: usize) -> Self {
        self.train_interleavings = train_interleavings;
        self
    }

    /// Set the interleavings per evaluation CTI.
    pub fn with_eval_interleavings(mut self, eval_interleavings: usize) -> Self {
        self.eval_interleavings = eval_interleavings;
        self
    }

    /// Set the model hyperparameters.
    pub fn with_model(mut self, model: PicConfig) -> Self {
        self.model = model;
        self
    }

    /// Set the training schedule.
    pub fn with_train(mut self, train: TrainConfig) -> Self {
        self.train = train;
        self
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything the pipeline produces.
pub struct PipelineOutput {
    /// The STI corpus with sequential profiles.
    pub corpus: Vec<StiProfile>,
    /// Labelled datasets.
    pub train_set: Dataset,
    /// Validation set (threshold/model selection).
    pub valid_set: Dataset,
    /// Evaluation set.
    pub eval_set: Dataset,
    /// The trained, threshold-tuned model.
    pub checkpoint: Checkpoint,
    /// Summary numbers.
    pub summary: PipelineSummary,
}

/// Reportable summary of a pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineSummary {
    /// Kernel version trained on.
    pub kernel_version: String,
    /// Corpus size.
    pub corpus_size: usize,
    /// Example counts (train/valid/eval).
    pub examples: (usize, usize, usize),
    /// Aggregate train-set graph stats.
    pub train_stats: GraphStats,
    /// URB positive base rate in the training set.
    pub urb_base_rate: f64,
    /// Final validation URB average precision.
    pub val_urb_ap: f64,
    /// Tuned threshold.
    pub threshold: f32,
    /// Masked-token pre-training accuracy.
    pub pretrain_accuracy: f64,
    /// Wall-clock training seconds.
    pub train_seconds: f64,
    /// Evaluation-set URB metrics at the tuned threshold.
    pub eval_urb: MeanMetrics,
}

/// Borrow a dataset as (graph, labels) pairs.
pub fn as_labeled(ds: &Dataset) -> Vec<LabeledGraph<'_>> {
    ds.examples.iter().map(|e| (&e.graph, e.labels.as_slice())).collect()
}

/// Borrow a dataset as (graph, labels, flow labels) triples for joint
/// coverage + flow training.
pub fn as_flow_labeled(ds: &Dataset) -> Vec<snowcat_nn::FlowLabeledGraph<'_>> {
    ds.examples.iter().map(|e| (&e.graph, e.labels.as_slice(), e.flow_labels.as_slice())).collect()
}

/// Like [`train_on`], but jointly trains the inter-thread-flow head
/// (`PicModel::backward_with_flows`). Returns the checkpoint, the summary,
/// and the flow head's average precision on the evaluation split.
pub fn train_on_with_flows(
    kernel: &Kernel,
    data: &CollectedData,
    model_cfg: PicConfig,
    train_cfg: TrainConfig,
    seed: u64,
    name: &str,
) -> (Checkpoint, PipelineSummary, f64) {
    use snowcat_nn::{flow_average_precision, train_with_flows};
    let pre = pretrain_encoder(kernel, &model_cfg, seed);
    let mut model = PicModel::new(model_cfg);
    model.params.tok_emb = pre.tok_emb.clone();
    let train_refs = as_flow_labeled(&data.train_set);
    let valid_refs = as_labeled(&data.valid_set);
    let report = train_with_flows(&mut model, &train_refs, &valid_refs, train_cfg);
    let threshold = tune_threshold_f2_pooled(&model, &valid_refs);
    let checkpoint = Checkpoint::new(&model, threshold, name);
    let eval_refs = as_labeled(&data.eval_set);
    let eval_flow_refs = as_flow_labeled(&data.eval_set);
    let flow_ap = flow_average_precision(&model, &eval_flow_refs);
    let summary = PipelineSummary {
        kernel_version: kernel.version.clone(),
        corpus_size: data.corpus.len(),
        examples: (data.train_set.len(), data.valid_set.len(), data.eval_set.len()),
        train_stats: data.train_set.stats(),
        urb_base_rate: data.train_set.urb_positive_rate(),
        val_urb_ap: urb_average_precision(&model, &valid_refs),
        threshold,
        pretrain_accuracy: pre.accuracy,
        train_seconds: report.train_seconds,
        eval_urb: evaluate(&model, &eval_refs, threshold, true),
    };
    (checkpoint, summary, flow_ap)
}

/// Collected data, reusable across model/hyperparameter variants.
pub struct CollectedData {
    /// STI corpus with sequential profiles.
    pub corpus: Vec<StiProfile>,
    /// Training dataset.
    pub train_set: Dataset,
    /// Validation dataset.
    pub valid_set: Dataset,
    /// Evaluation dataset.
    pub eval_set: Dataset,
}

/// Stage 1–2 of the pipeline: fuzz the STI corpus and collect the labelled
/// graph datasets (the SKI data-collection role). Separated from training so
/// hyperparameter sweeps and fine-tuning variants can reuse one collection.
pub fn collect_data(kernel: &Kernel, cfg: &KernelCfg, pcfg: &PipelineConfig) -> CollectedData {
    // STI corpus (Syzkaller role). Seed every syscall, fuzz for coverage,
    // then top up with unconditioned random STIs so CTI pairing draws from a
    // diverse pool (the paper pairs *random* STIs).
    let mut fz = StiFuzzer::new(kernel, pcfg.seed);
    fz.seed_each_syscall();
    fz.fuzz(pcfg.fuzz_iterations);
    fz.push_random(pcfg.fuzz_iterations / 2);
    let corpus = fz.into_corpus();

    let mut rng = ChaCha8Rng::seed_from_u64(pcfg.seed ^ 0xC71);
    let splits = make_splits(&mut rng, &corpus, pcfg.n_ctis);
    let dc_train =
        DatasetConfig { interleavings_per_cti: pcfg.train_interleavings, seed: pcfg.seed ^ 0x1 };
    let dc_eval =
        DatasetConfig { interleavings_per_cti: pcfg.eval_interleavings, seed: pcfg.seed ^ 0x2 };
    let train_set = build_dataset(kernel, cfg, &corpus, &splits.train, dc_train);
    let valid_set = build_dataset(kernel, cfg, &corpus, &splits.valid, dc_train);
    let eval_set = build_dataset(kernel, cfg, &corpus, &splits.eval, dc_eval);
    CollectedData { corpus, train_set, valid_set, eval_set }
}

/// Pre-train the assembly encoder on the whole kernel image (the
/// RoBERTa-pre-training role; done once per architecture dimension).
pub fn pretrain_encoder(
    kernel: &Kernel,
    model: &PicConfig,
    seed: u64,
) -> snowcat_nn::PretrainReport {
    let sequences: Vec<Vec<u32>> = kernel
        .blocks
        .iter()
        .map(|b| {
            asm::tokenize_block(kernel, b)
                .iter()
                .map(|t| snowcat_graph::repr::hash_token(t))
                .collect()
        })
        .collect();
    pretrain(
        &sequences,
        PretrainConfig {
            dim: model.hidden,
            vocab: model.vocab,
            seed: seed ^ 0xBE27,
            ..Default::default()
        },
    )
}

/// Stage 3–5: pre-train encoder, train the GNN, tune the threshold.
pub fn train_on(
    kernel: &Kernel,
    data: &CollectedData,
    model_cfg: PicConfig,
    train_cfg: TrainConfig,
    seed: u64,
    name: &str,
) -> (Checkpoint, PipelineSummary) {
    let pre = pretrain_encoder(kernel, &model_cfg, seed);
    let mut model = PicModel::new(model_cfg);
    model.params.tok_emb = pre.tok_emb.clone();
    let train_refs = as_labeled(&data.train_set);
    let valid_refs = as_labeled(&data.valid_set);
    let report = train(&mut model, &train_refs, &valid_refs, train_cfg);
    let threshold = tune_threshold_f2_pooled(&model, &valid_refs);
    let checkpoint = Checkpoint::new(&model, threshold, name);
    let eval_refs = as_labeled(&data.eval_set);
    let summary = PipelineSummary {
        kernel_version: kernel.version.clone(),
        corpus_size: data.corpus.len(),
        examples: (data.train_set.len(), data.valid_set.len(), data.eval_set.len()),
        train_stats: data.train_set.stats(),
        urb_base_rate: data.train_set.urb_positive_rate(),
        val_urb_ap: urb_average_precision(&model, &valid_refs),
        threshold,
        pretrain_accuracy: pre.accuracy,
        train_seconds: report.train_seconds,
        eval_urb: evaluate(&model, &eval_refs, threshold, true),
    };
    (checkpoint, summary)
}

/// Run the full pipeline on a kernel: fuzz, collect, pre-train, train, tune.
///
/// `name` tags the resulting checkpoint (e.g. `"PIC-5"`).
pub fn train_pic(
    kernel: &Kernel,
    cfg: &KernelCfg,
    pcfg: &PipelineConfig,
    name: &str,
) -> PipelineOutput {
    let data = collect_data(kernel, cfg, pcfg);
    let (checkpoint, summary) = train_on(kernel, &data, pcfg.model, pcfg.train, pcfg.seed, name);
    let CollectedData { corpus, train_set, valid_set, eval_set } = data;
    PipelineOutput { corpus, train_set, valid_set, eval_set, checkpoint, summary }
}

/// Fine-tune an existing checkpoint on a (usually smaller) dataset from a
/// new kernel version (§5.4's `PIC-6.ft.*` variants). Uses a reduced
/// learning rate and keeps the old threshold unless re-tuned.
pub fn fine_tune(
    base: &Checkpoint,
    train_set: &Dataset,
    valid_set: &Dataset,
    epochs: usize,
    name: &str,
) -> (Checkpoint, f64) {
    let mut model = base.restore();
    let train_refs = as_labeled(train_set);
    let valid_refs = as_labeled(valid_set);
    let cfg = TrainConfig { epochs, lr: 1e-3, ..Default::default() };
    train(&mut model, &train_refs, &valid_refs, cfg);
    let threshold = if valid_refs.is_empty() {
        base.threshold
    } else {
        tune_threshold_f2_pooled(&model, &valid_refs)
    };
    let ap = urb_average_precision(&model, &valid_refs);
    (Checkpoint::new(&model, threshold, name), ap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_kernel::{generate, GenConfig};

    fn small_pipeline() -> PipelineConfig {
        PipelineConfig {
            fuzz_iterations: 10,
            n_ctis: 8,
            train_interleavings: 3,
            eval_interleavings: 4,
            model: PicConfig { hidden: 8, layers: 1, ..Default::default() },
            train: TrainConfig { epochs: 1, ..Default::default() },
            seed: 7,
        }
    }

    #[test]
    fn pipeline_produces_consistent_output() {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let out = train_pic(&k, &cfg, &small_pipeline(), "PIC-test");
        assert!(!out.corpus.is_empty());
        assert!(!out.train_set.is_empty());
        assert!(!out.eval_set.is_empty());
        assert_eq!(out.checkpoint.name, "PIC-test");
        assert!((0.05..=0.95).contains(&out.summary.threshold));
        assert!(out.summary.urb_base_rate < 0.9);
        assert_eq!(out.summary.kernel_version, "5.12");
    }

    #[test]
    fn fine_tune_preserves_architecture() {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let out = train_pic(&k, &cfg, &small_pipeline(), "PIC-base");
        let (ft, _ap) = fine_tune(&out.checkpoint, &out.train_set, &out.valid_set, 1, "PIC-ft");
        assert_eq!(ft.cfg, out.checkpoint.cfg);
        assert_eq!(ft.name, "PIC-ft");
    }
}
