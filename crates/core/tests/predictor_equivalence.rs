//! Property tests for the predictor service: every wrapper in the
//! [`CoveragePredictor`] chain must be *bit-identical* to serial [`Pic`]
//! inference — parallelism and memoization are pure performance features,
//! never behavioural ones — and the cache must stay correct under
//! concurrent use.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_core::{CachedPredictor, CoveragePredictor, ParallelPredictor, Pic};
use snowcat_corpus::{StiFuzzer, StiProfile};
use snowcat_graph::CtGraph;
use snowcat_kernel::{generate, GenConfig, Kernel};
use snowcat_nn::{Checkpoint, PicConfig, PicModel};
use snowcat_vm::propose_hints;
use std::sync::OnceLock;

struct Fixture {
    kernel: Kernel,
    cfg: KernelCfg,
    corpus: Vec<StiProfile>,
    checkpoint: Checkpoint,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let kernel = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&kernel);
        let mut fz = StiFuzzer::new(&kernel, 0xE9);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        let model = PicModel::new(PicConfig { hidden: 10, layers: 2, ..Default::default() });
        let checkpoint = Checkpoint::new(&model, 0.5, "prop");
        Fixture { kernel, cfg, corpus, checkpoint }
    })
}

/// Build `n` candidate CT graphs for a seeded random CTI pair with seeded
/// random scheduling hints — the exact inputs the exploration loops feed
/// the predictor.
fn random_graphs(pic: &Pic<'_>, corpus: &[StiProfile], seed: u64, n: usize) -> Vec<CtGraph> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    use rand::Rng;
    let ia = rng.gen_range(0..corpus.len());
    let ib = rng.gen_range(0..corpus.len());
    let (a, b) = (&corpus[ia], &corpus[ib]);
    let base = pic.base_graph(a, b);
    (0..n)
        .map(|_| {
            let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
            pic.candidate_graph(&base, a, b, &hints)
        })
        .collect()
}

fn assert_bit_identical(
    label: &str,
    serial: &[snowcat_core::PredictedCoverage],
    other: &[snowcat_core::PredictedCoverage],
) {
    assert_eq!(serial.len(), other.len(), "{label}: batch length");
    for (i, (s, o)) in serial.iter().zip(other).enumerate() {
        assert_eq!(s.graph, o.graph, "{label}: graph {i}");
        assert_eq!(s.probs, o.probs, "{label}: probs {i}");
        assert_eq!(s.positive, o.positive, "{label}: positive {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ParallelPredictor is bit-identical to serial Pic inference for any
    /// worker count and batch size, including empty and single-item batches.
    #[test]
    fn parallel_matches_serial(seed in 0u64..1_000, workers in 1usize..8, n in 0usize..24) {
        let fx = fixture();
        let pic = Pic::new(&fx.checkpoint, &fx.kernel, &fx.cfg);
        let graphs = random_graphs(&pic, &fx.corpus, seed, n);
        let serial = pic.predict_batch(&graphs);
        let par = ParallelPredictor::new(&pic, workers);
        let parallel = par.predict_batch(&graphs);
        assert_bit_identical("parallel", &serial, &parallel);
    }

    /// CachedPredictor returns bit-identical predictions for any capacity
    /// (including capacities far smaller than the working set, which force
    /// evictions mid-stream) and any repetition pattern.
    #[test]
    fn cached_matches_serial(
        seed in 0u64..1_000,
        capacity in 1usize..48,
        pool in 1usize..12,
        picks in proptest::collection::vec(0usize..12, 0..40),
    ) {
        let fx = fixture();
        let pic = Pic::new(&fx.checkpoint, &fx.kernel, &fx.cfg);
        let pool_graphs = random_graphs(&pic, &fx.corpus, seed, pool);
        let stream: Vec<CtGraph> =
            picks.iter().map(|&i| pool_graphs[i % pool].clone()).collect();
        let serial = pic.predict_batch(&stream);
        let cached = CachedPredictor::new(&pic, capacity);
        // Feed the stream in two halves so the second half replays cached
        // entries from the first.
        let mid = stream.len() / 2;
        let mut out = cached.predict_batch(&stream[..mid]);
        out.extend(cached.predict_batch(&stream[mid..]));
        assert_bit_identical("cached", &serial, &out);
        prop_assert!(cached.len() <= capacity, "cache exceeded capacity");
        let st = cached.stats();
        prop_assert_eq!(st.cache_hits() + st.cache_misses(), stream.len() as u64);
    }

    /// The full composed chain — cache over a parallel pool over the Pic —
    /// is still bit-identical to serial inference.
    #[test]
    fn cached_parallel_chain_matches_serial(
        seed in 0u64..1_000,
        workers in 1usize..6,
        n in 0usize..20,
    ) {
        let fx = fixture();
        let pic = Pic::new(&fx.checkpoint, &fx.kernel, &fx.cfg);
        let graphs = random_graphs(&pic, &fx.corpus, seed, n);
        let serial = pic.predict_batch(&graphs);
        let par = ParallelPredictor::new(&pic, workers);
        let chain = CachedPredictor::new(&par, 64);
        let first = chain.predict_batch(&graphs);
        assert_bit_identical("chain (cold)", &serial, &first);
        // Replay: everything must now come from the cache, still identical.
        let second = chain.predict_batch(&graphs);
        assert_bit_identical("chain (warm)", &serial, &second);
    }
}

/// Many threads hammering one shared cache concurrently: every thread must
/// observe predictions bit-identical to serial inference, and the counters
/// must account for every request.
#[test]
fn concurrent_cache_is_correct_under_contention() {
    let fx = fixture();
    let pic = Pic::new(&fx.checkpoint, &fx.kernel, &fx.cfg);
    let pool = random_graphs(&pic, &fx.corpus, 0xC0DE, 12);
    let serial = pic.predict_batch(&pool);
    // Capacity smaller than the pool: threads race on insert *and* evict.
    let cached = CachedPredictor::new(&pic, 8);
    let n_threads = 8;
    let rounds = 6;
    std::thread::scope(|s| {
        for t in 0..n_threads {
            let cached = &cached;
            let pool = &pool;
            let serial = &serial;
            s.spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF ^ t as u64);
                use rand::Rng;
                for _ in 0..rounds {
                    // Each round predicts a random slice of the pool in a
                    // random order, mixing batched and single calls.
                    let mut idx: Vec<usize> = (0..pool.len()).collect();
                    for i in (1..idx.len()).rev() {
                        idx.swap(i, rng.gen_range(0..=i));
                    }
                    let take = rng.gen_range(1..=pool.len());
                    let batch: Vec<CtGraph> =
                        idx[..take].iter().map(|&i| pool[i].clone()).collect();
                    let preds = cached.predict_batch(&batch);
                    for (&i, p) in idx[..take].iter().zip(&preds) {
                        assert_eq!(p.probs, serial[i].probs, "thread {t}");
                        assert_eq!(p.positive, serial[i].positive, "thread {t}");
                    }
                    let lone = rng.gen_range(0..pool.len());
                    let p = cached.predict_one(&pool[lone]);
                    assert_eq!(p.probs, serial[lone].probs, "thread {t} (single)");
                }
            });
        }
    });
    let st = cached.stats();
    assert!(st.cache_hits() > 0, "contended run should produce hits");
    assert!(cached.len() <= 8, "cache exceeded capacity after contention");
}
