//! Property tests for the binary (SCMC) model checkpoint format: arbitrary
//! parameter values — including NaN payloads, infinities and signed zeros —
//! must round-trip bit-exactly through the framed envelope, and corrupted
//! envelopes must fail with typed errors rather than panic or decode into
//! garbage.

use proptest::prelude::*;
use snowcat_core::{decode_model_checkpoint_framed, encode_model_checkpoint_framed, SnowcatError};
use snowcat_nn::{Checkpoint, PicConfig, PicModel};
use std::path::Path;

/// Build a checkpoint whose parameters are filled from arbitrary `f32` bit
/// patterns, cycled across every tensor.
fn checkpoint_from_bits(bits: &[u32], threshold: u32, name: &str) -> Checkpoint {
    let mut model = PicModel::new(PicConfig { hidden: 4, layers: 1, ..Default::default() });
    let mut it = bits.iter().cycle();
    for t in model.params.tensors_mut() {
        for x in &mut t.data {
            *x = f32::from_bits(*it.next().unwrap());
        }
    }
    Checkpoint::new(&model, f32::from_bits(threshold), name)
}

/// Bit-level equality witness (derived `PartialEq` would treat NaN != NaN).
fn all_bits(ck: &Checkpoint) -> Vec<u32> {
    let mut out: Vec<u32> =
        ck.params.tensors().iter().flat_map(|t| t.data.iter().map(|x| x.to_bits())).collect();
    out.push(ck.threshold.to_bits());
    out
}

fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(97u8..123, 0..24).prop_map(|b| String::from_utf8(b).expect("ascii"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_bit_patterns_roundtrip_exactly(
        bits in proptest::collection::vec(0u32..=u32::MAX, 1..64),
        threshold in 0u32..=u32::MAX,
        name in arb_name(),
    ) {
        let ck = checkpoint_from_bits(&bits, threshold, &name);
        let framed = encode_model_checkpoint_framed(&ck);
        let back = decode_model_checkpoint_framed(Path::new("x"), &framed).unwrap();
        prop_assert_eq!(all_bits(&back), all_bits(&ck));
        prop_assert_eq!(back.cfg, ck.cfg);
        prop_assert_eq!(back.name, ck.name);
    }

    #[test]
    fn truncation_at_any_point_is_a_typed_error(
        bits in proptest::collection::vec(0u32..=u32::MAX, 1..16),
        cut_frac in 0.0f64..1.0,
    ) {
        let framed = encode_model_checkpoint_framed(&checkpoint_from_bits(&bits, 0, "t"));
        let cut = ((framed.len() - 1) as f64 * cut_frac) as usize;
        let err = decode_model_checkpoint_framed(Path::new("x"), &framed[..cut]).unwrap_err();
        prop_assert!(matches!(err, SnowcatError::CheckpointCorrupt { .. }), "{}", err);
    }

    #[test]
    fn any_single_byte_flip_is_detected(
        bits in proptest::collection::vec(0u32..=u32::MAX, 1..16),
        pos_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let mut framed = encode_model_checkpoint_framed(&checkpoint_from_bits(&bits, 0, "t"));
        let pos = ((framed.len() - 1) as f64 * pos_frac) as usize;
        framed[pos] ^= mask;
        let err = decode_model_checkpoint_framed(Path::new("x"), &framed).unwrap_err();
        prop_assert!(matches!(err, SnowcatError::CheckpointCorrupt { .. }), "{}", err);
    }
}
