//! # snowcat-cfg — whole-kernel static control-flow graph
//!
//! The paper builds a whole-kernel CFG with Angr to identify *uncovered
//! reachable blocks* (URBs): blocks not covered by the sequential execution
//! of a test input but statically reachable from covered blocks within a
//! small number of control-flow hops (the paper uses 1 hop).
//!
//! Because we own the synthetic kernel's IR, the CFG here is exact:
//! terminator edges plus call edges (from a block containing a `call` to the
//! callee's entry block).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use snowcat_kernel::{BlockId, FuncId, Instr, Kernel};
use snowcat_vm::BitSet;

/// An SCB→URB (or URB→URB for multi-hop) static control-flow edge discovered
/// during URB identification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UrbEdge {
    /// Source block (covered, or a URB found at an earlier hop).
    pub from: BlockId,
    /// The uncovered reachable block.
    pub to: BlockId,
}

/// The whole-kernel control-flow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCfg {
    succ: Vec<Vec<BlockId>>,
    pred: Vec<Vec<BlockId>>,
    /// Entry block per function (for reachability queries).
    entries: Vec<BlockId>,
}

impl KernelCfg {
    /// Build the CFG for `kernel`.
    pub fn build(kernel: &Kernel) -> Self {
        let n = kernel.num_blocks();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for (bi, block) in kernel.blocks.iter().enumerate() {
            let from = BlockId(bi as u32);
            for t in block.term.successors() {
                succ[bi].push(t);
                pred[t.index()].push(from);
            }
            for ins in &block.instrs {
                if let Instr::Call { func } = ins {
                    let entry = kernel.func(*func).entry;
                    succ[bi].push(entry);
                    pred[entry.index()].push(from);
                }
            }
        }
        // Deduplicate parallel edges for stable iteration.
        for v in succ.iter_mut().chain(pred.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        let entries = kernel.funcs.iter().map(|f| f.entry).collect();
        Self { succ, pred, entries }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.succ.len()
    }

    /// Static successors of `b` (branch/jump targets and called entries).
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        &self.succ[b.index()]
    }

    /// Static predecessors of `b`.
    pub fn predecessors(&self, b: BlockId) -> &[BlockId] {
        &self.pred[b.index()]
    }

    /// Entry block of `func`.
    pub fn entry(&self, func: FuncId) -> BlockId {
        self.entries[func.index()]
    }

    /// Identify URBs reachable within `hops` control-flow hops from the
    /// covered set, returning the discovery edges (for 1 hop: SCB → URB).
    ///
    /// This is the paper's URB definition: "blocks that are statically
    /// reachable from the sequentially-covered blocks, within a small number
    /// of control-flow hops, but that were not reached during the sequential
    /// execution". The paper sets `hops = 1` "to avoid path explosion".
    pub fn k_hop_urbs(&self, covered: &BitSet, hops: usize) -> Vec<UrbEdge> {
        assert_eq!(covered.capacity(), self.num_blocks(), "coverage map size mismatch");
        let mut edges = Vec::new();
        let mut seen = BitSet::new(self.num_blocks());
        let mut frontier: Vec<BlockId> = covered.iter().map(|i| BlockId(i as u32)).collect();
        for _ in 0..hops {
            let mut next = Vec::new();
            for &from in &frontier {
                for &to in self.successors(from) {
                    if covered.contains(to.index()) || seen.contains(to.index()) {
                        continue;
                    }
                    seen.insert(to.index());
                    edges.push(UrbEdge { from, to });
                    next.push(to);
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        edges
    }

    /// All blocks statically reachable from `roots` (inclusive).
    pub fn reachable_from(&self, roots: &[BlockId]) -> BitSet {
        let mut seen = BitSet::new(self.num_blocks());
        let mut stack: Vec<BlockId> = roots.to_vec();
        for r in roots {
            seen.insert(r.index());
        }
        while let Some(b) = stack.pop() {
            for &s in self.successors(b) {
                if seen.insert(s.index()) {
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Per-syscall forward reachability: element `i` is the set of blocks
    /// statically reachable from syscall `i`'s entry (inclusive).
    ///
    /// The static may-race analysis uses this to decide which syscall pairs
    /// can put two given accesses in concurrent threads, and the Razzer
    /// pre-filter sums may-race density over these sets.
    pub fn syscall_reachability(&self, kernel: &Kernel) -> Vec<BitSet> {
        kernel.syscalls.iter().map(|s| self.reachable_from(&[self.entry(s.func)])).collect()
    }

    /// Functions whose entry can statically reach `target` — used by the
    /// Razzer-style analysis to shortlist syscalls that might execute a
    /// racing instruction.
    pub fn funcs_reaching(&self, kernel: &Kernel, target: BlockId) -> Vec<FuncId> {
        // Reverse BFS from the target.
        let mut seen = BitSet::new(self.num_blocks());
        let mut stack = vec![target];
        seen.insert(target.index());
        while let Some(b) = stack.pop() {
            for &p in self.predecessors(b) {
                if seen.insert(p.index()) {
                    stack.push(p);
                }
            }
        }
        kernel
            .funcs
            .iter()
            .enumerate()
            .filter(|(_, f)| seen.contains(f.entry.index()))
            .map(|(i, _)| FuncId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_kernel::{generate, GenConfig, SyscallId};
    use snowcat_vm::{run_sequential, Sti, SyscallInvocation};

    fn setup() -> (Kernel, KernelCfg) {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        (k, cfg)
    }

    #[test]
    fn every_edge_is_bidirectional() {
        let (_, cfg) = setup();
        for b in 0..cfg.num_blocks() {
            let from = BlockId(b as u32);
            for &s in cfg.successors(from) {
                assert!(
                    cfg.predecessors(s).contains(&from),
                    "missing predecessor edge {from} -> {s}"
                );
            }
        }
    }

    #[test]
    fn intra_function_successors_stay_in_function() {
        let (k, cfg) = setup();
        for (bi, block) in k.blocks.iter().enumerate() {
            for &s in cfg.successors(BlockId(bi as u32)) {
                let sf = k.block(s).func;
                // Either same function, or the edge is a call edge to an
                // entry block.
                assert!(
                    sf == block.func || k.func(sf).entry == s,
                    "edge to non-entry block of another function"
                );
            }
        }
    }

    #[test]
    fn one_hop_urbs_are_uncovered_neighbors_of_covered() {
        let (k, cfg) = setup();
        let sti = Sti::new(vec![SyscallInvocation { syscall: SyscallId(0), args: [0; 3] }]);
        let r = run_sequential(&k, &sti);
        let urbs = cfg.k_hop_urbs(&r.coverage, 1);
        assert!(!urbs.is_empty(), "a branchy syscall should leave 1-hop URBs");
        for e in &urbs {
            assert!(r.coverage.contains(e.from.index()), "URB edge source must be covered");
            assert!(!r.coverage.contains(e.to.index()), "URB must be uncovered");
            assert!(cfg.successors(e.from).contains(&e.to));
        }
        // No duplicate URB targets.
        let mut targets: Vec<_> = urbs.iter().map(|e| e.to).collect();
        targets.sort_unstable();
        let before = targets.len();
        targets.dedup();
        assert_eq!(before, targets.len());
    }

    #[test]
    fn more_hops_find_at_least_as_many_urbs() {
        let (k, cfg) = setup();
        let sti = Sti::new(vec![SyscallInvocation { syscall: SyscallId(3), args: [1, 0, 0] }]);
        let r = run_sequential(&k, &sti);
        let one = cfg.k_hop_urbs(&r.coverage, 1).len();
        let two = cfg.k_hop_urbs(&r.coverage, 2).len();
        assert!(two >= one);
    }

    #[test]
    fn reachable_from_entry_covers_dynamic_coverage() {
        // Everything a syscall dynamically covers must be statically
        // reachable from its entry.
        let (k, cfg) = setup();
        for idx in [0usize, 5, 9] {
            let id = SyscallId(idx as u32 % k.syscalls.len() as u32);
            let sti = Sti::new(vec![SyscallInvocation { syscall: id, args: [2, 1, 0] }]);
            let r = run_sequential(&k, &sti);
            let entry = k.func(k.syscall(id).func).entry;
            let reach = cfg.reachable_from(&[entry]);
            for b in r.coverage.iter() {
                assert!(reach.contains(b), "covered block {b} not statically reachable");
            }
        }
    }

    #[test]
    fn syscall_reachability_matches_reachable_from() {
        let (k, cfg) = setup();
        let reach = cfg.syscall_reachability(&k);
        assert_eq!(reach.len(), k.syscalls.len());
        for (i, s) in k.syscalls.iter().enumerate() {
            let entry = cfg.entry(s.func);
            assert!(reach[i].contains(entry.index()), "entry must reach itself");
            assert_eq!(reach[i], cfg.reachable_from(&[entry]));
        }
    }

    #[test]
    fn funcs_reaching_finds_owning_function() {
        let (k, cfg) = setup();
        // Pick some block in the middle of a function.
        let target = BlockId(10);
        let owner = k.block(target).func;
        let funcs = cfg.funcs_reaching(&k, target);
        assert!(funcs.contains(&owner), "owning function must reach its own block");
    }

    #[test]
    fn zero_hops_yields_nothing() {
        let (k, cfg) = setup();
        let sti = Sti::new(vec![SyscallInvocation { syscall: SyscallId(0), args: [0; 3] }]);
        let r = run_sequential(&k, &sti);
        assert!(cfg.k_hop_urbs(&r.coverage, 0).is_empty());
    }
}
