//! Microbenchmark: the predictor service — serial vs parallel batched
//! inference over a 64-candidate pool, and the memoizing cache on a
//! repeated-CTI stream.
//!
//! The parallel/serial pair quantifies the ParallelPredictor speedup (the
//! wrapper is bit-identical to serial inference, so any gap is pure win);
//! the cached pair shows what content-addressed memoization buys when the
//! exploration loop re-proposes schedules it has already scored. Cache hit
//! rates are printed alongside the timings.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_core::{CachedPredictor, CoveragePredictor, ParallelPredictor, Pic};
use snowcat_corpus::StiFuzzer;
use snowcat_graph::CtGraph;
use snowcat_kernel::{generate, GenConfig};
use snowcat_nn::{Checkpoint, PicConfig, PicModel};
use snowcat_vm::propose_hints;

fn bench_service(c: &mut Criterion) {
    let kernel = generate(&GenConfig::default());
    let cfg = KernelCfg::build(&kernel);
    let mut fz = StiFuzzer::new(&kernel, 1);
    fz.seed_each_syscall();
    fz.push_random(10);
    let corpus = fz.into_corpus();
    let a = &corpus[corpus.len() - 1];
    let b = &corpus[corpus.len() - 2];

    let model = PicModel::new(PicConfig::default());
    let checkpoint = Checkpoint::new(&model, 0.5, "bench");
    let pic = Pic::new(&checkpoint, &kernel, &cfg);

    // A 64-candidate pool: one base graph, 64 random schedule overlays —
    // the shape of one MLPCT selection round.
    let base = pic.base_graph(a, b);
    let mut rng = ChaCha8Rng::seed_from_u64(64);
    let pool: Vec<CtGraph> = (0..64)
        .map(|_| {
            let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
            pic.candidate_graph(&base, a, b, &hints)
        })
        .collect();

    c.bench_function("predict_batch_64_serial", |bch| bch.iter(|| pic.predict_batch(&pool)));

    // At least two workers so the scoped pool + work stealing is always the
    // measured path (on a single-core host this shows the coordination
    // overhead; on multi-core hosts, the speedup).
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(2, 8);
    let par = ParallelPredictor::new(&pic, workers);
    c.bench_function(&format!("predict_batch_64_parallel_x{workers}"), |bch| {
        bch.iter(|| par.predict_batch(&pool))
    });

    // Repeated-CTI stream: the same 64 candidates replayed each iteration.
    // After the first (cold) batch every request is a cache hit, so the
    // steady-state timing measures lookup, not inference.
    let cached = CachedPredictor::new(&pic, 1024);
    cached.predict_batch(&pool); // warm
    c.bench_function("predict_batch_64_cached_warm", |bch| {
        bch.iter(|| cached.predict_batch(&pool))
    });

    let stats = cached.stats();
    println!(
        "\ncache [{}]: {} hits / {} misses ({:.1}% hit rate) over the warm stream",
        cached.name(),
        stats.cache_hits(),
        stats.cache_misses(),
        stats.hit_rate() * 100.0
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_service
}
criterion_main!(benches);
