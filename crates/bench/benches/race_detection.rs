//! Microbenchmark: DataCollider-style race detection over a CT trace.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_corpus::StiFuzzer;
use snowcat_kernel::{generate, GenConfig};
use snowcat_race::RaceDetector;
use snowcat_vm::{propose_hints, run_ct, Cti, VmConfig};

fn bench_race(c: &mut Criterion) {
    let kernel = generate(&GenConfig::default());
    let mut fz = StiFuzzer::new(&kernel, 1);
    fz.seed_each_syscall();
    let corpus = fz.into_corpus();
    let bug = &kernel.bugs[0];
    let a = corpus.iter().find(|p| p.sti.calls[0].syscall == bug.syscalls.0).unwrap();
    let b = corpus.iter().find(|p| p.sti.calls[0].syscall == bug.syscalls.1).unwrap();
    let cti = Cti::new(a.sti.clone(), b.sti.clone());
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
    let result = run_ct(&kernel, &cti, hints, VmConfig::default());
    let detector = RaceDetector::default();

    c.bench_function("race_detection_per_execution", |bch| {
        bch.iter(|| detector.detect(&kernel, &result))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_race
}
criterion_main!(benches);
