//! Fleet scaling and fault-recovery benchmark.
//!
//! Runs the same PCT campaign as a fleet at N = 1, 2, and 4 in-process
//! workers and reports end-to-end throughput (simulated schedule
//! executions per wall-clock second), then injects a stalling straggler
//! and measures what recovery costs: steals, re-executed positions, and
//! throughput relative to the fault-free run at the same width. A second
//! series re-runs the CLI campaign stream through both transports —
//! in-process `ThreadWorker` threads vs `snowcat fleet-worker`
//! subprocesses over the SCWP wire — and reports the process-isolation
//! overhead per fleet width (skipped with a note if the `snowcat` binary
//! is not built). Writes `results/BENCH_fleet.json`.
//!
//! Pass `--quick` for a CI-sized smoke run.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_core::{CostModel, ExploreConfig, Explorer};
use snowcat_corpus::{interacting_cti_pairs, random_cti_pairs, StiFuzzer, StiProfile};
use snowcat_harness::{
    run_fleet, FaultPlan, FleetCheckpoint, FleetConfig, ProcessWorker, ThreadWorker, WorkerCommand,
};
use snowcat_kernel::{generate, GenConfig, Kernel, KernelVersion};
use std::time::Instant;

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

const SEED: u64 = 0xF1EE7;

fn setup(stream_len: usize) -> (Kernel, Vec<StiProfile>, Vec<(usize, usize)>) {
    let k = generate(&GenConfig::default());
    let mut fz = StiFuzzer::new(&k, 1);
    fz.seed_each_syscall();
    let corpus = fz.into_corpus();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let stream = random_cti_pairs(&mut rng, corpus.len(), stream_len);
    (k, corpus, stream)
}

struct FleetRun {
    fc: FleetCheckpoint,
    wall_s: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_once(
    k: &Kernel,
    corpus: &[StiProfile],
    stream: &[(usize, usize)],
    ecfg: &ExploreConfig,
    tag: &str,
    workers: usize,
    fault_plan: FaultPlan,
    lease_ms: u64,
    checkpoint_every: usize,
) -> FleetRun {
    let dir = std::env::temp_dir().join(format!("snowcat-bench-fleet-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cost = CostModel::default();
    let mut cfg = FleetConfig::new(workers, &dir);
    cfg.lease_ms = lease_ms;
    cfg.checkpoint_every = checkpoint_every;
    cfg.fault_plan = fault_plan;
    let make = |_slot: usize| Explorer::Pct;
    let worker = ThreadWorker {
        kernel: k,
        corpus,
        stream,
        explore_cfg: ecfg,
        cost: &cost,
        cfg: &cfg,
        make_explorer: &make,
    };
    let t0 = Instant::now();
    let fc = run_fleet(&worker, "PCT", ecfg.seed, stream.len(), &cfg, false).unwrap();
    let wall_s = t0.elapsed().as_secs_f64();
    assert!(fc.is_complete(), "bench fleet did not complete");
    FleetRun { fc, wall_s }
}

fn executions(fc: &FleetCheckpoint) -> u64 {
    fc.shards.iter().filter_map(|s| s.checkpoint.as_ref()).map(|ck| ck.executions).sum()
}

/// Locate the `snowcat` CLI binary for the process-transport series:
/// `$SNOWCAT_BIN` if set, else walk up from this bench executable
/// (`target/<profile>/deps/fleet_scaling-…`) looking for a sibling
/// `snowcat` in a parent directory.
fn find_snowcat() -> Option<std::path::PathBuf> {
    if let Ok(p) = std::env::var("SNOWCAT_BIN") {
        let p = std::path::PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?;
    loop {
        let candidate = dir.join("snowcat");
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?;
    }
}

/// One process-transport fleet over the CLI campaign stream: the worker
/// subprocesses rebuild the same (version, seed, ctis) stream themselves,
/// so the parent only supplies the command line and the stream length.
#[allow(clippy::too_many_arguments)]
fn run_process_once(
    snowcat: &std::path::Path,
    tag: &str,
    workers: usize,
    seed: u64,
    n_ctis: usize,
    budget: usize,
    stream_len: usize,
    lease_ms: u64,
    checkpoint_every: usize,
) -> FleetRun {
    let dir = std::env::temp_dir().join(format!("snowcat-bench-fleet-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut cfg = FleetConfig::new(workers, &dir);
    cfg.lease_ms = lease_ms;
    cfg.checkpoint_every = checkpoint_every;
    cfg.respawn = true;
    let command = WorkerCommand {
        program: snowcat.to_path_buf(),
        args: vec![
            "fleet-worker".to_string(),
            "--version".into(),
            "5.12".into(),
            "--seed".into(),
            seed.to_string(),
            "--ctis".into(),
            n_ctis.to_string(),
            "--budget".into(),
            budget.to_string(),
            "--explorer".into(),
            "pct".into(),
            "--dir".into(),
            dir.display().to_string(),
            "--lease-ms".into(),
            lease_ms.to_string(),
            "--max-steals".into(),
            cfg.max_steals.to_string(),
            "--checkpoint-every".into(),
            checkpoint_every.to_string(),
            "--stall-ms".into(),
            "0".into(),
        ],
    };
    let worker = ProcessWorker { command, cfg: &cfg, label: "PCT".to_string(), seed, stream_len };
    let t0 = Instant::now();
    let fc = run_fleet(&worker, "PCT", seed, stream_len, &cfg, false).unwrap();
    let wall_s = t0.elapsed().as_secs_f64();
    assert!(fc.is_complete(), "bench process fleet did not complete");
    FleetRun { fc, wall_s }
}

#[derive(serde::Serialize)]
struct ScalePoint {
    workers: usize,
    executions: u64,
    wall_s: f64,
    exec_per_sec: f64,
    speedup_vs_n1: f64,
}

#[derive(serde::Serialize)]
struct StragglerPoint {
    workers: usize,
    fault: &'static str,
    executions: u64,
    wall_s: f64,
    exec_per_sec: f64,
    steals: u64,
    reexecutions: u64,
    lost_workers: u64,
    throughput_vs_fault_free: f64,
}

#[derive(serde::Serialize)]
struct TransportPoint {
    workers: usize,
    executions: u64,
    thread_wall_s: f64,
    thread_exec_per_sec: f64,
    process_wall_s: f64,
    process_exec_per_sec: f64,
    /// Process-transport throughput as a fraction of thread-transport
    /// throughput at the same width (spawn + handshake + wire overhead).
    process_vs_thread: f64,
}

#[derive(serde::Serialize)]
struct ProcessSection {
    snowcat_bin: String,
    stream_ctis: usize,
    exec_budget: usize,
    rows: Vec<TransportPoint>,
}

#[derive(serde::Serialize)]
struct Report {
    quick: bool,
    /// Host parallelism — on a single-CPU box the scaling curve is
    /// correctly flat; the fleet adds no overhead but can add no speedup.
    available_cpus: usize,
    stream_ctis: usize,
    exec_budget: usize,
    scaling: Vec<ScalePoint>,
    straggler: StragglerPoint,
    /// Thread-vs-process transport comparison over the CLI campaign
    /// stream; `None` when the `snowcat` binary was not built.
    process_transport: Option<ProcessSection>,
}

fn main() {
    // The stream must be long enough that shard startup does not dominate;
    // the exec budget is per schedule-exploration position.
    // Scaling runs checkpoint sparsely so the measured cost is schedule
    // exploration, not the serialized SCFC rollup; the straggler run keeps a
    // tight cadence because steal recovery resumes from the last checkpoint.
    let (stream_len, budget, lease_ms, ckpt_every): (usize, usize, u64, usize) =
        if quick() { (48, 4, 250, 16) } else { (256, 48, 500, 64) };
    let (k, corpus, stream) = setup(stream_len);
    let ecfg = ExploreConfig::default().with_exec_budget(budget).with_seed(SEED);

    let mut scaling = Vec::new();
    let mut n1_rate = 0.0_f64;
    for &workers in &[1usize, 2, 4] {
        let run = run_once(
            &k,
            &corpus,
            &stream,
            &ecfg,
            &format!("n{workers}"),
            workers,
            FaultPlan::default(),
            lease_ms,
            ckpt_every,
        );
        let execs = executions(&run.fc);
        let rate = execs as f64 / run.wall_s;
        if workers == 1 {
            n1_rate = rate;
        }
        println!(
            "fleet N={workers}: {execs} executions in {:.3} s — {:.0} exec/s ({:.2}x vs N=1)",
            run.wall_s,
            rate,
            rate / n1_rate,
        );
        scaling.push(ScalePoint {
            workers,
            executions: execs,
            wall_s: run.wall_s,
            exec_per_sec: rate,
            speedup_vs_n1: rate / n1_rate,
        });
    }

    // Straggler: worker 0 goes silent mid-shard; the monitor expires its
    // lease and a surviving worker re-executes the shard from its last
    // checkpoint. Recovery cost = steals + re-executed positions + the
    // throughput lost to the lease deadline.
    let fault_free = &scaling[1]; // N=2
    let run = run_once(
        &k,
        &corpus,
        &stream,
        &ecfg,
        "straggler",
        2,
        FaultPlan::parse("stall-worker@0").unwrap(),
        lease_ms,
        8,
    );
    let execs = executions(&run.fc);
    let rate = execs as f64 / run.wall_s;
    let straggler = StragglerPoint {
        workers: 2,
        fault: "stall-worker@0",
        executions: execs,
        wall_s: run.wall_s,
        exec_per_sec: rate,
        steals: run.fc.steals,
        reexecutions: run.fc.reexecutions,
        lost_workers: run.fc.lost_workers,
        throughput_vs_fault_free: rate / fault_free.exec_per_sec,
    };
    println!(
        "straggler N=2 ({}): {} steal(s), {} re-executed position(s), {} lost worker(s), \
         {:.0} exec/s ({:.2}x of fault-free N=2)",
        straggler.fault,
        straggler.steals,
        straggler.reexecutions,
        straggler.lost_workers,
        rate,
        straggler.throughput_vs_fault_free,
    );
    assert!(straggler.steals >= 1, "the straggler's shard was never stolen");
    assert!(straggler.lost_workers >= 1, "the straggler was never declared lost");

    // Transport comparison: the exact CLI campaign stream (the worker
    // subprocesses rebuild it from (version, seed, ctis)) through thread
    // workers and through `snowcat fleet-worker` subprocesses.
    let process_transport = match find_snowcat() {
        None => {
            println!(
                "process transport: skipped — no `snowcat` binary found \
                 (build snowcat-cli or set SNOWCAT_BIN)"
            );
            None
        }
        Some(bin) => {
            let (p_ctis, p_budget): (usize, usize) = if quick() { (16, 4) } else { (64, 16) };
            let pk = KernelVersion::V5_12.spec(SEED).build();
            let mut fz = StiFuzzer::new(&pk, SEED);
            fz.seed_each_syscall();
            fz.fuzz(100);
            let p_corpus = fz.into_corpus();
            let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0xE0);
            let p_stream = interacting_cti_pairs(&mut rng, &p_corpus, p_ctis);
            let p_ecfg = ExploreConfig::default().with_exec_budget(p_budget).with_seed(SEED);
            let mut rows = Vec::new();
            for &workers in &[1usize, 2, 4] {
                let thread_run = run_once(
                    &pk,
                    &p_corpus,
                    &p_stream,
                    &p_ecfg,
                    &format!("tthread-n{workers}"),
                    workers,
                    FaultPlan::default(),
                    lease_ms,
                    ckpt_every,
                );
                let process_run = run_process_once(
                    &bin,
                    &format!("tproc-n{workers}"),
                    workers,
                    SEED,
                    p_ctis,
                    p_budget,
                    p_stream.len(),
                    lease_ms,
                    ckpt_every,
                );
                let execs = executions(&thread_run.fc);
                assert_eq!(
                    execs,
                    executions(&process_run.fc),
                    "thread and process transports diverged on the same stream at N={workers}"
                );
                let thread_rate = execs as f64 / thread_run.wall_s;
                let process_rate = execs as f64 / process_run.wall_s;
                println!(
                    "transport N={workers}: thread {thread_rate:.0} exec/s, \
                     process {process_rate:.0} exec/s ({:.2}x of thread)",
                    process_rate / thread_rate,
                );
                rows.push(TransportPoint {
                    workers,
                    executions: execs,
                    thread_wall_s: thread_run.wall_s,
                    thread_exec_per_sec: thread_rate,
                    process_wall_s: process_run.wall_s,
                    process_exec_per_sec: process_rate,
                    process_vs_thread: process_rate / thread_rate,
                });
            }
            Some(ProcessSection {
                snowcat_bin: bin.display().to_string(),
                stream_ctis: p_stream.len(),
                exec_budget: p_budget,
                rows,
            })
        }
    };

    let report = Report {
        quick: quick(),
        available_cpus: std::thread::available_parallelism().map_or(1, usize::from),
        stream_ctis: stream_len,
        exec_budget: budget,
        scaling,
        straggler,
        process_transport,
    };
    snowcat_bench::save_json("BENCH_fleet", &report);
}
