//! Microbenchmark: the micro-batching inference server vs direct inference.
//!
//! The serving layer promises "batching for free": when requests arrive
//! fast enough to fill `max_batch`-sized flushes, the served path must
//! deliver at least 0.9x the throughput of calling `Pic::predict_batch`
//! directly, with tail latency under the configured SLO — the queue, the
//! condvar hand-off, and the result split are all the server is allowed to
//! spend. This bench measures both paths over the same candidate graphs,
//! times the atomic hot-swap (ungated, and gated through an AP validation
//! pass), and writes `results/BENCH_serving.json`.
//!
//! Pass `--quick` for a CI-sized smoke run.

use criterion::{black_box, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_core::{CoveragePredictor, Pic};
use snowcat_corpus::StiFuzzer;
use snowcat_graph::CtGraph;
use snowcat_kernel::{generate, GenConfig};
use snowcat_nn::{Checkpoint, PicConfig, PicModel};
use snowcat_serve::{ApGate, InferenceServer, ServeConfig, SwapOutcome};
use snowcat_vm::propose_hints;
use std::time::{Duration, Instant};

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[derive(serde::Serialize)]
struct Report {
    quick: bool,
    requests: usize,
    request_size: usize,
    clients: usize,
    max_batch: usize,
    max_wait_us: u64,
    direct_graphs_per_s: f64,
    served_graphs_per_s: f64,
    served_over_direct: f64,
    batch_fill_pct: f64,
    p50_us: u64,
    p99_us: u64,
    slo_p99_us: u64,
    swap_us: f64,
    gated_swap_us: f64,
}

fn main() {
    let mut c = if quick() {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(40))
            .warm_up_time(Duration::from_millis(10))
    } else {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300))
    };

    let (n_requests, request_size, clients, reps) =
        if quick() { (16usize, 16usize, 2usize, 2u32) } else { (96, 16, 8, 5u32) };
    // Requests are half a batch: a full flush coalesces two callers, so the
    // bench exercises real micro-batching rather than one-request flushes.
    let max_batch = 2 * request_size;
    let max_wait_us = 200u64;
    let slo_p99_us = 50_000u64;

    let k = generate(&GenConfig::default());
    let cfg = KernelCfg::build(&k);
    let mut fz = StiFuzzer::new(&k, 0xBE4C);
    fz.seed_each_syscall();
    let corpus = fz.into_corpus();
    // The production model shape (PicConfig::default): the 0.9x acceptance
    // bound is about the queue overhead relative to real inference cost,
    // not a toy model where a condvar round-trip rivals the forward pass.
    let model = PicModel::new(PicConfig::default());
    let ck = Checkpoint::new(&model, 0.5, "bench");
    let pic = Pic::new(&ck, &k, &cfg);

    // A fixed pool of candidate graphs, grouped into half-batch requests.
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E2E_BE4C);
    let requests: Vec<Vec<CtGraph>> = (0..n_requests)
        .map(|_| {
            let a = &corpus[rng.gen_range(0..corpus.len())];
            let b = &corpus[rng.gen_range(0..corpus.len())];
            let base = pic.base_graph(a, b);
            (0..request_size)
                .map(|_| {
                    let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
                    pic.candidate_graph(&base, a, b, &hints)
                })
                .collect()
        })
        .collect();
    let total_graphs: usize = requests.iter().map(Vec::len).sum();

    // Direct baseline: the same requests through Pic::predict_batch, no
    // queue in the way. Best-of-reps to shed background noise.
    let mut direct_s = f64::INFINITY;
    for _ in 0..=reps {
        let t0 = Instant::now();
        for req in &requests {
            black_box(pic.predict_batch(req));
        }
        direct_s = direct_s.min(t0.elapsed().as_secs_f64());
    }

    // Served: one long-lived server, `clients` threads striping the same
    // requests through it. With enough callers in flight the queue keeps
    // whole multiples of `max_batch` pending, so every flush coalesces two
    // requests and leaves full — the regime the 0.9x acceptance bound
    // targets.
    let mut server = InferenceServer::start(
        &ck,
        ServeConfig { max_batch, max_wait_us, slo_p99_us, ..ServeConfig::default() },
        None,
    );
    let mut served_s = f64::INFINITY;
    for _ in 0..=reps {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let h = server.handle();
                let reqs = &requests;
                s.spawn(move || {
                    for req in reqs.iter().skip(c).step_by(clients) {
                        black_box(h.predict_batch(req));
                    }
                });
            }
        });
        served_s = served_s.min(t0.elapsed().as_secs_f64());
    }

    // Swap latency: ungated (pure arc-swap install), then gated through an
    // AP validation pass over one request's graphs. Swapping the incumbent
    // checkpoint back in keeps validation AP identical, so the gated swap
    // always installs and the timing covers the full accept path.
    let renamed = Checkpoint::new(&ck.restore(), ck.threshold, "bench-swap");
    let swap_reps = u64::from(reps).max(2);
    let t0 = Instant::now();
    for _ in 0..swap_reps {
        assert!(matches!(
            server.try_swap(&renamed, &ApGate::disabled()),
            SwapOutcome::Installed { .. }
        ));
    }
    let swap_us = t0.elapsed().as_secs_f64() * 1e6 / swap_reps as f64;

    let valid: Vec<(CtGraph, Vec<bool>)> = requests[0]
        .iter()
        .map(|g| (g.clone(), (0..g.num_verts()).map(|i| i % 3 == 0).collect()))
        .collect();
    let gate = ApGate::new(valid, 0.01);
    let t0 = Instant::now();
    for _ in 0..swap_reps {
        assert!(matches!(server.try_swap(&renamed, &gate), SwapOutcome::Installed { .. }));
    }
    let gated_swap_us = t0.elapsed().as_secs_f64() * 1e6 / swap_reps as f64;

    // Snapshot the serving counters now: the criterion loop below fires
    // single half-batch requests and would dilute the multi-client phase's
    // fill and latency numbers.
    let sreport = server.report();

    c.bench_function("served_half_batch_request", |b| {
        let h = server.handle();
        b.iter(|| black_box(h.predict_batch(&requests[0])))
    });

    server.shutdown();
    let report = Report {
        quick: quick(),
        requests: n_requests,
        request_size,
        clients,
        max_batch,
        max_wait_us,
        direct_graphs_per_s: total_graphs as f64 / direct_s,
        served_graphs_per_s: total_graphs as f64 / served_s,
        served_over_direct: direct_s / served_s,
        batch_fill_pct: sreport.batch_fill * 100.0,
        p50_us: sreport.p50_us,
        p99_us: sreport.p99_us,
        slo_p99_us,
        swap_us,
        gated_swap_us,
    };
    println!(
        "direct {:.0} graphs/s, served {:.0} graphs/s ({:.2}x) at {:.0}% fill, {} clients",
        report.direct_graphs_per_s,
        report.served_graphs_per_s,
        report.served_over_direct,
        report.batch_fill_pct,
        report.clients,
    );
    println!(
        "latency p50 {}us p99 {}us (SLO {}us); swap {:.0}us ungated, {:.0}us AP-gated",
        report.p50_us, report.p99_us, report.slo_p99_us, report.swap_us, report.gated_swap_us,
    );
    if report.served_over_direct < 0.9 {
        eprintln!(
            "warning: served throughput {:.2}x direct — below the 0.9x acceptance bound",
            report.served_over_direct
        );
    }
    if report.p99_us > report.slo_p99_us {
        eprintln!(
            "warning: served p99 {}us exceeds the {}us SLO",
            report.p99_us, report.slo_p99_us
        );
    }
    snowcat_bench::save_json("BENCH_serving", &report);
}
