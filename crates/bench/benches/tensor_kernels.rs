//! Microbenchmark: the tensor core (tiled matmul kernels, fused ops and
//! scratch-arena reuse) against the `naive_*` scalar references, plus an
//! end-to-end graphs/sec comparison of the pre-optimization forward pass
//! (`snowcat_bench::naive_forward`) vs the session-based allocation-free
//! forward. Writes `results/BENCH_tensor.json` with the measured speedups.
//!
//! Pass `--quick` for a CI-sized smoke run (small shapes, short timings).

use criterion::{black_box, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_corpus::StiFuzzer;
use snowcat_graph::{CtGraph, CtGraphBuilder};
use snowcat_kernel::{generate, GenConfig};
use snowcat_nn::{Mat, PicConfig, PicModel, PicSession, Scratch};
use snowcat_vm::propose_hints;
use std::time::{Duration, Instant};

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Mean ns/iteration of `f`, measured over at least `min_iters` iterations
/// and at least `min_time` of wall clock (after one warmup call).
fn time_ns(mut f: impl FnMut(), min_iters: u64, min_time: Duration) -> f64 {
    f();
    let t0 = Instant::now();
    let mut iters = 0u64;
    while iters < min_iters || t0.elapsed() < min_time {
        f();
        iters += 1;
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

#[derive(serde::Serialize)]
struct KernelRow {
    n: usize,
    k: usize,
    m: usize,
    naive_ns: f64,
    seed_ns: f64,
    tiled_ns: f64,
    tiled_into_ns: f64,
    fused_ns: f64,
    speedup_tiled: f64,
    speedup_fused: f64,
}

#[derive(serde::Serialize)]
struct EndToEnd {
    graphs: usize,
    naive_graphs_per_sec: f64,
    session_graphs_per_sec: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct Report {
    quick: bool,
    kernels: Vec<KernelRow>,
    end_to_end: EndToEnd,
}

fn bench_kernels(c: &mut Criterion) -> Vec<KernelRow> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7E57);
    let sizes: &[usize] = if quick() { &[64] } else { &[64, 256, 1024] };
    let (min_iters, min_time) =
        if quick() { (3, Duration::from_millis(20)) } else { (10, Duration::from_millis(300)) };
    let mut rows = Vec::new();
    for &n in sizes {
        let (k, m) = (32usize, 32usize);
        let a = Mat::xavier(&mut rng, n, k);
        let b = Mat::xavier(&mut rng, k, m);
        let bias = Mat::xavier(&mut rng, 1, m);
        let mut out = Mat::zeros(n, m);

        c.bench_function(&format!("naive_matmul_{n}x{k}_{k}x{m}"), |bch| {
            bch.iter(|| a.naive_matmul(black_box(&b)))
        });
        c.bench_function(&format!("seed_matmul_{n}x{k}_{k}x{m}"), |bch| {
            bch.iter(|| snowcat_bench::seed_matmul(&a, black_box(&b)))
        });
        c.bench_function(&format!("tiled_matmul_{n}x{k}_{k}x{m}"), |bch| {
            bch.iter(|| a.matmul(black_box(&b)))
        });
        c.bench_function(&format!("tiled_matmul_into_{n}x{k}_{k}x{m}"), |bch| {
            bch.iter(|| a.matmul_into(black_box(&b), &mut out))
        });
        c.bench_function(&format!("unfused_bias_relu_{n}x{k}_{k}x{m}"), |bch| {
            bch.iter(|| {
                let mut z = a.matmul(black_box(&b));
                z.add_row_broadcast(&bias);
                z.relu_inplace();
                z
            })
        });
        c.bench_function(&format!("fused_bias_relu_into_{n}x{k}_{k}x{m}"), |bch| {
            bch.iter(|| a.matmul_bias_relu_into(black_box(&b), &bias, &mut out))
        });
        // Scratch reuse vs per-call allocation for the NT kernel (the only
        // into-kernel that needs a transpose buffer).
        let bt_src = Mat::xavier(&mut rng, m, k);
        let mut scratch = Scratch::new();
        c.bench_function(&format!("matmul_nt_alloc_{n}x{k}_{m}x{k}"), |bch| {
            bch.iter(|| a.matmul_nt(black_box(&bt_src)))
        });
        c.bench_function(&format!("matmul_nt_scratch_{n}x{k}_{m}x{k}"), |bch| {
            bch.iter(|| a.matmul_nt_into(black_box(&bt_src), &mut out, &mut scratch))
        });

        // Manual speedup numbers for the JSON report (criterion's printed
        // stats are for humans; these feed the acceptance check).
        let naive_ns = time_ns(|| drop(black_box(a.naive_matmul(&b))), min_iters, min_time);
        let seed_ns =
            time_ns(|| drop(black_box(snowcat_bench::seed_matmul(&a, &b))), min_iters, min_time);
        let tiled_ns = time_ns(|| drop(black_box(a.matmul(&b))), min_iters, min_time);
        let tiled_into_ns = time_ns(|| a.matmul_into(black_box(&b), &mut out), min_iters, min_time);
        let fused_ns = time_ns(
            || a.matmul_bias_relu_into(black_box(&b), &bias, &mut out),
            min_iters,
            min_time,
        );
        rows.push(KernelRow {
            n,
            k,
            m,
            naive_ns,
            seed_ns,
            tiled_ns,
            tiled_into_ns,
            fused_ns,
            speedup_tiled: naive_ns / tiled_into_ns,
            speedup_fused: naive_ns / fused_ns,
        });
    }
    rows
}

fn build_graphs(n: usize) -> (PicModel, Vec<CtGraph>) {
    let kernel = generate(&GenConfig::default());
    let cfg = KernelCfg::build(&kernel);
    let mut fz = StiFuzzer::new(&kernel, 1);
    fz.seed_each_syscall();
    fz.push_random(10);
    let corpus = fz.into_corpus();
    let a = &corpus[corpus.len() - 1];
    let b = &corpus[corpus.len() - 2];
    let builder = CtGraphBuilder::new(&kernel, &cfg);
    let base = builder.build_base(&a.seq, &b.seq);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let graphs = (0..n)
        .map(|_| {
            let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
            builder.with_schedule(&base, &a.seq, &b.seq, &hints)
        })
        .collect();
    (PicModel::new(PicConfig::default()), graphs)
}

fn bench_end_to_end(c: &mut Criterion) -> EndToEnd {
    let n_graphs = if quick() { 4 } else { 16 };
    let (model, graphs) = build_graphs(n_graphs);

    c.bench_function("forward_naive_batch", |bch| {
        bch.iter(|| {
            for g in &graphs {
                black_box(snowcat_bench::naive_forward(&model, g));
            }
        })
    });
    let mut session = PicSession::new();
    let mut probs = Vec::new();
    c.bench_function("forward_session_batch", |bch| {
        bch.iter(|| {
            for g in &graphs {
                model.forward_into(g, &mut session, &mut probs);
                black_box(&probs);
            }
        })
    });

    let (min_iters, min_time) =
        if quick() { (2, Duration::from_millis(50)) } else { (3, Duration::from_millis(1500)) };
    let naive_ns = time_ns(
        || {
            for g in &graphs {
                black_box(snowcat_bench::naive_forward(&model, g));
            }
        },
        min_iters,
        min_time,
    );
    let session_ns = time_ns(
        || {
            for g in &graphs {
                model.forward_into(g, &mut session, &mut probs);
                black_box(&probs);
            }
        },
        min_iters,
        min_time,
    );
    let per_graph = |batch_ns: f64| 1e9 * n_graphs as f64 / batch_ns;
    EndToEnd {
        graphs: n_graphs,
        naive_graphs_per_sec: per_graph(naive_ns),
        session_graphs_per_sec: per_graph(session_ns),
        speedup: naive_ns / session_ns,
    }
}

fn main() {
    let mut c = if quick() {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(40))
            .warm_up_time(Duration::from_millis(10))
    } else {
        Criterion::default()
            .sample_size(15)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300))
    };
    let kernels = bench_kernels(&mut c);
    let end_to_end = bench_end_to_end(&mut c);
    for r in &kernels {
        println!(
            "matmul {}x{}·{}x{}: naive {:.0} ns, seed {:.0} ns, tiled-into {:.0} ns, \
             fused {:.0} ns → {:.2}x vs naive, {:.2}x vs seed",
            r.n,
            r.k,
            r.k,
            r.m,
            r.naive_ns,
            r.seed_ns,
            r.tiled_into_ns,
            r.fused_ns,
            r.speedup_tiled,
            r.seed_ns / r.tiled_into_ns
        );
    }
    println!(
        "end-to-end forward: naive {:.0} graphs/s, session {:.0} graphs/s → {:.2}x",
        end_to_end.naive_graphs_per_sec, end_to_end.session_graphs_per_sec, end_to_end.speedup
    );
    let report = Report { quick: quick(), kernels, end_to_end };
    snowcat_bench::save_json("BENCH_tensor", &report);
}
