//! Microbenchmark: schedule proposal and PCT scheduling decisions.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_kernel::ThreadId;
use snowcat_vm::{propose_hints, PctScheduler, Scheduler, ThreadView};

fn bench_sched(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    c.bench_function("propose_hints", |bch| bch.iter(|| propose_hints(&mut rng, 500, 400)));

    c.bench_function("pct_thousand_decisions", |bch| {
        bch.iter(|| {
            let mut s = PctScheduler::new(&mut rng, 2, 1000, 3);
            let views = vec![
                ThreadView { id: ThreadId(0), runnable: true, done: false, executed: 0 },
                ThreadView { id: ThreadId(1), runnable: true, done: false, executed: 0 },
            ];
            let mut acc = 0u32;
            for _ in 0..1000 {
                acc = acc.wrapping_add(s.choose(&views).0 as u32);
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sched
}
criterion_main!(benches);
