//! Microbenchmark: PIC inference cost (§5.2.2) — graph assembly plus one
//! forward pass, and the forward pass alone.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_corpus::StiFuzzer;
use snowcat_graph::CtGraphBuilder;
use snowcat_kernel::{generate, GenConfig};
use snowcat_nn::{PicConfig, PicModel};
use snowcat_vm::propose_hints;

fn bench_inference(c: &mut Criterion) {
    let kernel = generate(&GenConfig::default());
    let cfg = KernelCfg::build(&kernel);
    let mut fz = StiFuzzer::new(&kernel, 1);
    fz.seed_each_syscall();
    fz.push_random(10);
    let corpus = fz.into_corpus();
    let a = &corpus[corpus.len() - 1];
    let b = &corpus[corpus.len() - 2];
    let builder = CtGraphBuilder::new(&kernel, &cfg);
    let base = builder.build_base(&a.seq, &b.seq);
    let model = PicModel::new(PicConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
    let graph = builder.with_schedule(&base, &a.seq, &b.seq, &hints);

    c.bench_function("pic_forward_only", |bch| bch.iter(|| model.forward(&graph)));

    c.bench_function("pic_inference_with_graph_assembly", |bch| {
        bch.iter(|| {
            let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
            let g = builder.with_schedule(&base, &a.seq, &b.seq, &hints);
            model.forward(&g)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_inference
}
criterion_main!(benches);
