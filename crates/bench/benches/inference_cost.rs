//! Microbenchmark: PIC inference cost (§5.2.2) — graph assembly plus one
//! forward pass, and the forward pass alone. Also reports graphs/sec for the
//! pre-optimization (naive kernels, per-call allocation) forward against the
//! tiled session-based forward.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_corpus::StiFuzzer;
use snowcat_graph::CtGraphBuilder;
use snowcat_kernel::{generate, GenConfig};
use snowcat_nn::{PicConfig, PicModel, PicSession};
use snowcat_vm::propose_hints;
use std::time::Instant;

fn bench_inference(c: &mut Criterion) {
    let kernel = generate(&GenConfig::default());
    let cfg = KernelCfg::build(&kernel);
    let mut fz = StiFuzzer::new(&kernel, 1);
    fz.seed_each_syscall();
    fz.push_random(10);
    let corpus = fz.into_corpus();
    let a = &corpus[corpus.len() - 1];
    let b = &corpus[corpus.len() - 2];
    let builder = CtGraphBuilder::new(&kernel, &cfg);
    let base = builder.build_base(&a.seq, &b.seq);
    let model = PicModel::new(PicConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
    let graph = builder.with_schedule(&base, &a.seq, &b.seq, &hints);

    c.bench_function("pic_forward_naive", |bch| {
        bch.iter(|| snowcat_bench::naive_forward(&model, &graph))
    });

    c.bench_function("pic_forward_only", |bch| bch.iter(|| model.forward(&graph)));

    let mut session = PicSession::new();
    let mut probs = Vec::new();
    c.bench_function("pic_forward_session", |bch| {
        bch.iter(|| {
            model.forward_into(&graph, &mut session, &mut probs);
            probs.len()
        })
    });

    c.bench_function("pic_inference_with_graph_assembly", |bch| {
        bch.iter(|| {
            let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
            let g = builder.with_schedule(&base, &a.seq, &b.seq, &hints);
            model.forward(&g)
        })
    });

    // Before/after throughput summary: graphs/sec of the pre-optimization
    // forward vs the session-based forward on the same graph.
    let throughput = |mut f: Box<dyn FnMut() + '_>| {
        f();
        let t0 = Instant::now();
        let mut iters = 0u64;
        while iters < 30 || t0.elapsed().as_millis() < 1500 {
            f();
            iters += 1;
        }
        iters as f64 / t0.elapsed().as_secs_f64()
    };
    let naive = throughput(Box::new(|| {
        std::hint::black_box(snowcat_bench::naive_forward(&model, &graph));
    }));
    let tiled = throughput(Box::new(|| {
        model.forward_into(&graph, &mut session, &mut probs);
        std::hint::black_box(&probs);
    }));
    println!(
        "graphs/sec: naive {naive:.0} -> session {tiled:.0} ({:.2}x end-to-end)",
        tiled / naive
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_inference
}
criterion_main!(benches);
