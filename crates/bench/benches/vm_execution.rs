//! Microbenchmark: dynamic CT execution throughput on the synthetic-kernel
//! VM (the substrate's analogue of SKI's 2.8 s/execution figure).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_corpus::StiFuzzer;
use snowcat_kernel::{generate, GenConfig};
use snowcat_vm::{propose_hints, run_ct, run_sequential, Cti, VmConfig};

fn bench_vm(c: &mut Criterion) {
    let kernel = generate(&GenConfig::default());
    let mut fz = StiFuzzer::new(&kernel, 1);
    fz.seed_each_syscall();
    fz.fuzz(20);
    let corpus = fz.into_corpus();
    let a = &corpus[0];
    let b = &corpus[1];
    let mut rng = ChaCha8Rng::seed_from_u64(2);

    c.bench_function("sequential_sti_execution", |bch| {
        bch.iter(|| run_sequential(&kernel, &a.sti))
    });

    let cti = Cti::new(a.sti.clone(), b.sti.clone());
    c.bench_function("concurrent_ct_execution", |bch| {
        bch.iter(|| {
            let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
            run_ct(&kernel, &cti, hints, VmConfig::default())
        })
    });

    c.bench_function("concurrent_ct_execution_no_trace", |bch| {
        bch.iter(|| {
            let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
            run_ct(
                &kernel,
                &cti,
                hints,
                VmConfig { collect_accesses: false, ..VmConfig::default() },
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_vm
}
criterion_main!(benches);
