//! Microbenchmark: static concurrency analysis throughput.
//!
//! Times the full `snowcat_analysis::analyze` pass (must-hold lockset
//! dataflow + lock-discipline lints + may-race computation) on generated
//! kernels of increasing size and writes `results/BENCH_analysis.json`
//! with blocks/sec and the finding counts.
//!
//! Pass `--quick` for a CI-sized smoke run (small kernels, short timings).

use criterion::{black_box, Criterion};
use snowcat_cfg::KernelCfg;
use snowcat_kernel::{generate, GenConfig};
use std::time::{Duration, Instant};

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Mean ns/iteration of `f`, measured over at least `min_iters` iterations
/// and at least `min_time` of wall clock (after one warmup call).
fn time_ns(mut f: impl FnMut(), min_iters: u64, min_time: Duration) -> f64 {
    f();
    let t0 = Instant::now();
    let mut iters = 0u64;
    while iters < min_iters || t0.elapsed() < min_time {
        f();
        iters += 1;
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

#[derive(serde::Serialize)]
struct Row {
    subsystems: usize,
    blocks: usize,
    instrs: usize,
    analyze_ns: f64,
    blocks_per_sec: f64,
    findings: usize,
    may_race_pairs: usize,
}

#[derive(serde::Serialize)]
struct Report {
    quick: bool,
    rows: Vec<Row>,
}

fn bench_analysis(c: &mut Criterion) -> Vec<Row> {
    let sizes: &[usize] = if quick() { &[2, 4] } else { &[2, 4, 8, 12] };
    let (min_iters, min_time) =
        if quick() { (2, Duration::from_millis(50)) } else { (5, Duration::from_millis(1500)) };

    let mut rows = Vec::new();
    for &subsystems in sizes {
        let gc = GenConfig { num_subsystems: subsystems, ..GenConfig::default() };
        let kernel = generate(&gc);
        let cfg = KernelCfg::build(&kernel);

        if subsystems == sizes[sizes.len() - 1] {
            c.bench_function("analysis_full_pass", |bch| {
                bch.iter(|| black_box(snowcat_analysis::analyze(&kernel, &cfg)))
            });
        }

        let analyze_ns = time_ns(
            || drop(black_box(snowcat_analysis::analyze(&kernel, &cfg))),
            min_iters,
            min_time,
        );
        let analysis = snowcat_analysis::analyze(&kernel, &cfg);
        rows.push(Row {
            subsystems,
            blocks: kernel.num_blocks(),
            instrs: kernel.num_instrs(),
            analyze_ns,
            blocks_per_sec: kernel.num_blocks() as f64 / (analyze_ns / 1e9),
            findings: analysis.findings.len(),
            may_race_pairs: analysis.may_race.len(),
        });
    }
    rows
}

fn main() {
    let mut c = if quick() {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(40))
            .warm_up_time(Duration::from_millis(10))
    } else {
        Criterion::default()
            .sample_size(15)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300))
    };
    let rows = bench_analysis(&mut c);
    for r in &rows {
        println!(
            "analyze {:>2} subsystems ({:>5} blocks): {:>8.2} ms, {:>10.0} blocks/s, \
             {} findings, {} may-race pairs",
            r.subsystems,
            r.blocks,
            r.analyze_ns / 1e6,
            r.blocks_per_sec,
            r.findings,
            r.may_race_pairs
        );
    }
    let report = Report { quick: quick(), rows };
    snowcat_bench::save_json("BENCH_analysis", &report);
}
