//! Microbenchmark: static concurrency analysis throughput.
//!
//! Times the full `snowcat_analysis::analyze` pass (must-hold lockset
//! dataflow + value-flow alias pass + lock-discipline lints + refined
//! may-race computation) on generated kernels of increasing size, compares
//! the alias-blind *coarse* may-race pass against the full refined
//! pipeline on both bundled kernel versions, and writes
//! `results/BENCH_analysis.json` with blocks/sec, the pair counts on each
//! side and the refinement overhead ratio.
//!
//! Pass `--quick` for a CI-sized smoke run (small kernels, short timings);
//! in that mode the run *asserts* that the refined pipeline costs at most
//! 2x the coarse pass, so CI catches value-flow slowdowns.

use criterion::{black_box, Criterion};
use snowcat_analysis::{LocksetAnalysis, MayRace, ValueFlow};
use snowcat_cfg::KernelCfg;
use snowcat_kernel::{generate, GenConfig, KernelVersion};
use std::time::{Duration, Instant};

/// Seed the CLI experiment harness uses, so pair counts here line up with
/// `snowcat analyze` output.
const FAMILY_SEED: u64 = 0x5EED_2023;

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Mean ns/iteration of `f`, measured over at least `min_iters` iterations
/// and at least `min_time` of wall clock (after one warmup call).
fn time_ns(mut f: impl FnMut(), min_iters: u64, min_time: Duration) -> f64 {
    f();
    let t0 = Instant::now();
    let mut iters = 0u64;
    while iters < min_iters || t0.elapsed() < min_time {
        f();
        iters += 1;
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

#[derive(serde::Serialize)]
struct Row {
    subsystems: usize,
    blocks: usize,
    instrs: usize,
    analyze_ns: f64,
    blocks_per_sec: f64,
    findings: usize,
    may_race_pairs: usize,
}

/// Coarse vs refined may-race comparison on one bundled kernel version.
#[derive(serde::Serialize)]
struct VersionRow {
    version: String,
    blocks: usize,
    /// ns for the alias-blind pass (locksets + coarse may-race) — the PR 3
    /// analysis pipeline.
    coarse_ns: f64,
    /// ns for the full refined pipeline (locksets + value flow + lints +
    /// sandwiched may-race).
    refined_ns: f64,
    /// `refined_ns / coarse_ns`; CI's `--quick` run asserts <= 2.0.
    overhead_ratio: f64,
    may_race_pairs_coarse: usize,
    may_race_pairs_refined: usize,
    /// `1 - refined/coarse` pair counts: fraction of candidate pairs the
    /// value-flow pass disproves.
    pair_reduction: f64,
    alias_classes: usize,
    /// Planted bugs whose racing pair survives refinement (must be all of
    /// them — the sandwich guarantee).
    planted_bugs_covered: usize,
    planted_bugs_total: usize,
}

#[derive(serde::Serialize)]
struct Report {
    quick: bool,
    rows: Vec<Row>,
    versions: Vec<VersionRow>,
}

fn bench_analysis(c: &mut Criterion) -> Vec<Row> {
    let sizes: &[usize] = if quick() { &[2, 4] } else { &[2, 4, 8, 12] };
    let (min_iters, min_time) =
        if quick() { (2, Duration::from_millis(50)) } else { (5, Duration::from_millis(1500)) };

    let mut rows = Vec::new();
    for &subsystems in sizes {
        let gc = GenConfig { num_subsystems: subsystems, ..GenConfig::default() };
        let kernel = generate(&gc);
        let cfg = KernelCfg::build(&kernel);

        if subsystems == sizes[sizes.len() - 1] {
            c.bench_function("analysis_full_pass", |bch| {
                bch.iter(|| black_box(snowcat_analysis::analyze(&kernel, &cfg)))
            });
        }

        let analyze_ns = time_ns(
            || drop(black_box(snowcat_analysis::analyze(&kernel, &cfg))),
            min_iters,
            min_time,
        );
        let analysis = snowcat_analysis::analyze(&kernel, &cfg);
        rows.push(Row {
            subsystems,
            blocks: kernel.num_blocks(),
            instrs: kernel.num_instrs(),
            analyze_ns,
            blocks_per_sec: kernel.num_blocks() as f64 / (analyze_ns / 1e9),
            findings: analysis.findings.len(),
            may_race_pairs: analysis.may_race.len(),
        });
    }
    rows
}

fn bench_versions() -> Vec<VersionRow> {
    let (min_iters, min_time) =
        if quick() { (2, Duration::from_millis(50)) } else { (5, Duration::from_millis(1500)) };
    let mut rows = Vec::new();
    for version in [KernelVersion::V5_12, KernelVersion::V6_1] {
        let kernel = version.spec(FAMILY_SEED).build();
        let cfg = KernelCfg::build(&kernel);
        let coarse_ns = time_ns(
            || {
                let locksets = LocksetAnalysis::compute(&kernel, &cfg);
                drop(black_box(MayRace::compute(&kernel, &cfg, &locksets)));
            },
            min_iters,
            min_time,
        );
        let refined_ns = time_ns(
            || drop(black_box(snowcat_analysis::analyze(&kernel, &cfg))),
            min_iters,
            min_time,
        );
        let locksets = LocksetAnalysis::compute(&kernel, &cfg);
        let vf = ValueFlow::compute(&kernel, &cfg, &locksets);
        let (coarse, refined) = MayRace::compute_refined(&kernel, &cfg, &locksets, &vf);
        let analysis = snowcat_analysis::analyze(&kernel, &cfg);
        rows.push(VersionRow {
            version: kernel.version.clone(),
            blocks: kernel.num_blocks(),
            coarse_ns,
            refined_ns,
            overhead_ratio: refined_ns / coarse_ns.max(1.0),
            may_race_pairs_coarse: coarse.len(),
            may_race_pairs_refined: refined.len(),
            pair_reduction: 1.0 - refined.len() as f64 / coarse.len().max(1) as f64,
            alias_classes: vf.num_classes(),
            planted_bugs_covered: analysis.covered_planted_bugs(&kernel).len(),
            planted_bugs_total: kernel.bugs.len(),
        });
    }
    rows
}

fn main() {
    let mut c = if quick() {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(40))
            .warm_up_time(Duration::from_millis(10))
    } else {
        Criterion::default()
            .sample_size(15)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300))
    };
    let rows = bench_analysis(&mut c);
    for r in &rows {
        println!(
            "analyze {:>2} subsystems ({:>5} blocks): {:>8.2} ms, {:>10.0} blocks/s, \
             {} findings, {} may-race pairs",
            r.subsystems,
            r.blocks,
            r.analyze_ns / 1e6,
            r.blocks_per_sec,
            r.findings,
            r.may_race_pairs
        );
    }
    let versions = bench_versions();
    for v in &versions {
        println!(
            "refine {:>4} ({:>5} blocks): coarse {:>7.2} ms -> refined {:>7.2} ms \
             ({:.2}x), pairs {} -> {} ({:.1}% pruned), {} alias classes, bugs {}/{}",
            v.version,
            v.blocks,
            v.coarse_ns / 1e6,
            v.refined_ns / 1e6,
            v.overhead_ratio,
            v.may_race_pairs_coarse,
            v.may_race_pairs_refined,
            v.pair_reduction * 100.0,
            v.alias_classes,
            v.planted_bugs_covered,
            v.planted_bugs_total
        );
        // The sandwich guarantee and the precision win are correctness
        // properties of the refinement — enforce them on every run.
        assert!(
            v.may_race_pairs_refined < v.may_race_pairs_coarse,
            "{}: refinement must shrink the may-race set",
            v.version
        );
        assert_eq!(
            v.planted_bugs_covered, v.planted_bugs_total,
            "{}: refinement dropped a planted bug",
            v.version
        );
        if quick() {
            assert!(
                v.overhead_ratio <= 2.0,
                "{}: refined pass overhead {:.2}x exceeds the 2x budget",
                v.version,
                v.overhead_ratio
            );
        }
    }
    let report = Report { quick: quick(), rows, versions };
    snowcat_bench::save_json("BENCH_analysis", &report);
}
