//! Microbenchmark: CT graph construction (base graph and schedule overlay).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_corpus::StiFuzzer;
use snowcat_graph::CtGraphBuilder;
use snowcat_kernel::{generate, GenConfig};
use snowcat_vm::propose_hints;

fn bench_graph(c: &mut Criterion) {
    let kernel = generate(&GenConfig::default());
    let cfg = KernelCfg::build(&kernel);
    let mut fz = StiFuzzer::new(&kernel, 1);
    fz.seed_each_syscall();
    fz.push_random(10);
    let corpus = fz.into_corpus();
    let a = &corpus[corpus.len() - 1];
    let b = &corpus[corpus.len() - 2];
    let builder = CtGraphBuilder::new(&kernel, &cfg);

    c.bench_function("ct_graph_build_base", |bch| bch.iter(|| builder.build_base(&a.seq, &b.seq)));

    let base = builder.build_base(&a.seq, &b.seq);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    c.bench_function("ct_graph_schedule_overlay", |bch| {
        bch.iter(|| {
            let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
            builder.with_schedule(&base, &a.seq, &b.seq, &hints)
        })
    });

    c.bench_function("whole_kernel_cfg_build", |bch| bch.iter(|| KernelCfg::build(&kernel)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_graph
}
criterion_main!(benches);
