//! Microbenchmark: the robust training pipeline's overhead.
//!
//! The supervised trainer promises "robustness costs nothing on the happy
//! path": anomaly guards run every step, and epoch checkpoints are written
//! atomically with `.prev` rotation. This bench quantifies both against the
//! plain (guard-free, checkpoint-free) `snowcat_nn::train` loop and writes
//! `results/BENCH_train.json` with the steady-state epoch time, the
//! checkpoint write cost, and the end-to-end checkpoint overhead as a
//! percentage of epoch time (acceptance: < 5%).
//!
//! Pass `--quick` for a CI-sized smoke run.

use criterion::{black_box, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_corpus::{build_dataset, interacting_cti_pairs, Dataset, DatasetConfig, StiFuzzer};
use snowcat_harness::{
    encode_train_checkpoint, load_train_checkpoint_with_fallback, robust_train,
    save_train_checkpoint_atomic, RobustTrainConfig,
};
use snowcat_kernel::{generate, GenConfig};
use snowcat_nn::{train, LabeledGraph, PicConfig, PicModel, TrainConfig};
use std::time::{Duration, Instant};

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn build_data(n_ctis: usize, interleavings: usize) -> Dataset {
    let k = generate(&GenConfig::default());
    let cfg = KernelCfg::build(&k);
    let mut fz = StiFuzzer::new(&k, 21);
    fz.seed_each_syscall();
    let corpus = fz.into_corpus();
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let ctis = interacting_cti_pairs(&mut rng, &corpus, n_ctis);
    build_dataset(
        &k,
        &cfg,
        &corpus,
        &ctis,
        DatasetConfig { interleavings_per_cti: interleavings, seed: 29 },
    )
}

fn as_refs(ds: &Dataset) -> Vec<LabeledGraph<'_>> {
    ds.examples.iter().map(|e| (&e.graph, e.labels.as_slice())).collect()
}

/// Mean seconds per call of `f` over `reps` calls (after one warmup).
fn time_s(mut f: impl FnMut(), reps: u32) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / f64::from(reps)
}

#[derive(serde::Serialize)]
struct Report {
    quick: bool,
    train_graphs: usize,
    epochs: usize,
    plain_epoch_ms: f64,
    guarded_epoch_ms: f64,
    guard_overhead_pct: f64,
    checkpointed_epoch_ms: f64,
    checkpoint_overhead_pct: f64,
    checkpoint_encode_ms: f64,
    checkpoint_write_ms: f64,
    checkpoint_bytes: usize,
    resume_load_ms: f64,
}

fn main() {
    let mut c = if quick() {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(40))
            .warm_up_time(Duration::from_millis(10))
    } else {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300))
    };

    // The dataset must be large enough that an epoch dwarfs a checkpoint
    // write — a 16-graph toy epoch would make the fixed-size model state
    // look expensive when in any real run it is noise (the paper trains on
    // ~1M graphs per epoch).
    // Enough epochs that the one-time final (complete) checkpoint rewrite
    // amortizes into the per-epoch steady state.
    let (n_ctis, interleavings, epochs, reps) =
        if quick() { (300, 4, 5usize, 3u32) } else { (400, 6, 8usize, 4u32) };
    let ds = build_data(n_ctis, interleavings);
    let refs = as_refs(&ds);
    let pic_cfg = PicConfig { hidden: 32, layers: 2, ..Default::default() };
    let schedule = TrainConfig { epochs, batch: 4, seed: 31, threads: 1, ..Default::default() };

    let dir = std::env::temp_dir().join("snowcat-bench-train");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("train.stcp");

    // Baseline: the plain loop (no guards, no checkpoints).
    let plain_s = time_s(
        || {
            let mut m = PicModel::new(pic_cfg);
            black_box(train(&mut m, &refs, &[], schedule));
        },
        reps,
    );

    // The guards must *run* (that is the cost being measured) but must not
    // *trip*: a legitimate late-epoch gradient spike would add rollback +
    // retry epochs and corrupt the timing. The sentinel work per step is
    // identical whatever the threshold.
    let robust_cfg = || {
        let mut cfg = RobustTrainConfig::new(schedule);
        cfg.spike_factor = f32::INFINITY;
        cfg.divergence_factor = f32::INFINITY;
        cfg
    };

    // Guards on, checkpoints off — the anomaly-sentinel overhead.
    let guarded_s = time_s(
        || {
            let mut m = PicModel::new(pic_cfg);
            black_box(robust_train(&mut m, &refs, &[], &robust_cfg(), false).unwrap());
        },
        reps,
    );

    // Guards on, checkpoint every epoch — the full supervised path.
    let checkpointed_s = time_s(
        || {
            let mut m = PicModel::new(pic_cfg);
            let mut cfg = robust_cfg();
            cfg.checkpoint_path = Some(ckpt.clone());
            black_box(robust_train(&mut m, &refs, &[], &cfg, false).unwrap());
        },
        reps,
    );

    // Isolate the checkpoint codec and the atomic write.
    let (train_ck, _) = load_train_checkpoint_with_fallback(&ckpt).unwrap();
    let bytes = encode_train_checkpoint(&train_ck);
    let encode_s = time_s(|| drop(black_box(encode_train_checkpoint(&train_ck))), reps * 4);
    let write_s = time_s(|| save_train_checkpoint_atomic(&ckpt, &train_ck).unwrap(), reps * 4);
    let load_s =
        time_s(|| drop(black_box(load_train_checkpoint_with_fallback(&ckpt).unwrap())), reps * 4);

    c.bench_function("train_checkpoint_encode", |b| {
        b.iter(|| black_box(encode_train_checkpoint(&train_ck)))
    });

    let per_epoch = |total_s: f64| total_s / epochs as f64 * 1e3;
    let report = Report {
        quick: quick(),
        train_graphs: refs.len(),
        epochs,
        plain_epoch_ms: per_epoch(plain_s),
        guarded_epoch_ms: per_epoch(guarded_s),
        guard_overhead_pct: (guarded_s / plain_s - 1.0) * 100.0,
        checkpointed_epoch_ms: per_epoch(checkpointed_s),
        checkpoint_overhead_pct: (checkpointed_s / guarded_s - 1.0) * 100.0,
        checkpoint_encode_ms: encode_s * 1e3,
        checkpoint_write_ms: write_s * 1e3,
        checkpoint_bytes: bytes.len(),
        resume_load_ms: load_s * 1e3,
    };
    println!(
        "epochs over {} graphs: plain {:.2} ms, guarded {:.2} ms ({:+.2}%), \
         checkpointed {:.2} ms ({:+.2}% over guarded)",
        report.train_graphs,
        report.plain_epoch_ms,
        report.guarded_epoch_ms,
        report.guard_overhead_pct,
        report.checkpointed_epoch_ms,
        report.checkpoint_overhead_pct,
    );
    println!(
        "checkpoint: {} bytes, encode {:.3} ms, atomic write {:.3} ms, resume load {:.3} ms",
        report.checkpoint_bytes,
        report.checkpoint_encode_ms,
        report.checkpoint_write_ms,
        report.resume_load_ms,
    );
    snowcat_bench::save_json("BENCH_train", &report);
}
