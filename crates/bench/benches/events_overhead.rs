//! Microbenchmark: the structured event stream's hot-loop overhead.
//!
//! The observability layer promises "disabled costs nothing, enabled never
//! blocks": with no sink configured the supervisor runs the exact PR-4/PR-5
//! code path, and with a sink every emission is a non-blocking bounded-queue
//! push drained by a separate writer thread. This bench quantifies both
//! against the same supervised campaign and writes
//! `results/BENCH_events.json` with the per-campaign times, the enabled
//! overhead as a percentage (acceptance: < 2%), and raw sink throughput.
//!
//! Pass `--quick` for a CI-sized smoke run.

use criterion::{black_box, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_core::{CostModel, ExploreConfig, Explorer};
use snowcat_corpus::{interacting_cti_pairs, StiFuzzer};
use snowcat_events::{CampaignEvent, EventSink, EventWriter};
use snowcat_harness::{run_supervised_campaign, SupervisorConfig};
use snowcat_kernel::{generate, GenConfig};
use std::time::{Duration, Instant};

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Mean seconds per call of `f` over `reps` calls (after one warmup).
fn time_s(mut f: impl FnMut(), reps: u32) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / f64::from(reps)
}

/// Interleaved A/B timing: alternate the two closures rep by rep so slow
/// drift (CPU frequency, background load) hits both sides equally, and
/// take the per-side minimum — the least-disturbed run — rather than the
/// mean. Returns (a_seconds, b_seconds).
fn time_ab(mut a: impl FnMut(), mut b: impl FnMut(), reps: u32) -> (f64, f64) {
    a();
    b();
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        a();
        best_a = best_a.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        b();
        best_b = best_b.min(t0.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

#[derive(serde::Serialize)]
struct Report {
    quick: bool,
    ctis: usize,
    exec_budget: usize,
    disabled_campaign_ms: f64,
    enabled_campaign_ms: f64,
    events_overhead_pct: f64,
    events_per_campaign: u64,
    emit_ns: f64,
    emit_dropped_ns: f64,
}

fn main() {
    let mut c = if quick() {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(40))
            .warm_up_time(Duration::from_millis(10))
    } else {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300))
    };

    let (n_ctis, budget, reps) = if quick() { (16, 4, 3u32) } else { (64, 10, 20u32) };
    let k = generate(&GenConfig::default());
    let _cfg = KernelCfg::build(&k);
    let mut fz = StiFuzzer::new(&k, 21);
    fz.seed_each_syscall();
    fz.fuzz(60);
    let corpus = fz.into_corpus();
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let stream = interacting_cti_pairs(&mut rng, &corpus, n_ctis);
    let explore_cfg = ExploreConfig::default().with_exec_budget(budget).with_seed(29);
    let cost = CostModel::default();

    let dir = std::env::temp_dir().join("snowcat-bench-events");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Disabled vs enabled, interleaved so environmental drift cancels.
    // The writer thread is spawned once — its startup/teardown is a
    // per-run constant, not hot-loop cost — so the enabled side isolates
    // what each campaign pays for emitting.
    let sink = EventSink::bounded(1 << 16);
    let writer = EventWriter::spawn(sink.clone(), &dir).unwrap();
    let run = |events: Option<EventSink>| {
        let mut sup = SupervisorConfig::new();
        sup.events = events;
        black_box(
            run_supervised_campaign(
                &k,
                &corpus,
                &stream,
                Explorer::Pct,
                &explore_cfg,
                &cost,
                &sup,
                None,
            )
            .unwrap(),
        );
    };
    let (disabled_s, enabled_s) = time_ab(|| run(None), || run(Some(sink.clone())), reps);
    // One warmup plus `reps` timed campaigns fed the shared stream.
    let events_per_campaign = sink.emitted() / u64::from(reps + 1);
    let summary = writer.finish().unwrap();
    assert_eq!(summary.dropped, 0, "writer must keep up with the campaign");

    // Raw emission costs: an uncontended push, and the overflow path (the
    // price of observability when the writer cannot keep up — a counter
    // bump, never a stall).
    let sink = EventSink::bounded(1 << 20);
    #[allow(clippy::redundant_clone)]
    let emit_s = time_s(
        || {
            for position in 0..1000u64 {
                sink.campaign(CampaignEvent::StageTiming {
                    stage: "bench".into(),
                    micros: position,
                });
            }
        },
        reps * 4,
    ) / 1000.0;
    let full = EventSink::bounded(1);
    full.campaign(CampaignEvent::StageTiming { stage: "fill".into(), micros: 0 });
    let emit_dropped_s = time_s(
        || {
            for position in 0..1000u64 {
                full.campaign(CampaignEvent::StageTiming {
                    stage: "drop".into(),
                    micros: position,
                });
            }
        },
        reps * 4,
    ) / 1000.0;

    c.bench_function("event_emit_uncontended", |b| {
        b.iter(|| sink.campaign(CampaignEvent::StageTiming { stage: "crit".into(), micros: 1 }))
    });

    let report = Report {
        quick: quick(),
        ctis: n_ctis,
        exec_budget: budget,
        disabled_campaign_ms: disabled_s * 1e3,
        enabled_campaign_ms: enabled_s * 1e3,
        events_overhead_pct: (enabled_s / disabled_s - 1.0) * 100.0,
        events_per_campaign,
        emit_ns: emit_s * 1e9,
        emit_dropped_ns: emit_dropped_s * 1e9,
    };
    println!(
        "campaign over {} CTIs: disabled {:.2} ms, enabled {:.2} ms ({:+.2}%), {} events",
        report.ctis,
        report.disabled_campaign_ms,
        report.enabled_campaign_ms,
        report.events_overhead_pct,
        report.events_per_campaign,
    );
    println!(
        "emit: {:.0} ns uncontended, {:.0} ns on overflow (drop-counted)",
        report.emit_ns, report.emit_dropped_ns,
    );
    snowcat_bench::save_json("BENCH_events", &report);
}
