//! Shared plumbing for the experiment regenerators (one binary per paper
//! table/figure) and the criterion micro-benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use snowcat_core::PipelineConfig;
use snowcat_nn::{PicConfig, TrainConfig};

/// The kernel-family seed used across all experiments, so every binary works
/// on the same synthetic "Linux" lineage.
pub const FAMILY_SEED: u64 = 0x5EED_2023;

/// Experiment scale, selected with `--scale smoke|default|full`.
///
/// * `Smoke` — seconds; CI-sized sanity run.
/// * `Default` — minutes; reproduces every qualitative shape.
/// * `Full` — tens of minutes; tightest statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale sanity run.
    Smoke,
    /// Minutes-scale default.
    Default,
    /// The big run.
    Full,
}

impl Scale {
    /// Parse from command-line args (`--scale <v>`), defaulting to
    /// [`Scale::Default`].
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        match args
            .iter()
            .position(|a| a == "--scale")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
        {
            Some("smoke") => Scale::Smoke,
            Some("full") => Scale::Full,
            _ => Scale::Default,
        }
    }

    /// Scale a count.
    pub fn pick<T>(&self, smoke: T, default: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Default => default,
            Scale::Full => full,
        }
    }
}

/// The standard training pipeline at a given scale (the "PIC-5" recipe).
pub fn std_pipeline(scale: Scale) -> PipelineConfig {
    PipelineConfig::default()
        .with_fuzz_iterations(scale.pick(20, 150, 300))
        .with_n_ctis(scale.pick(12, 400, 900))
        .with_train_interleavings(scale.pick(4, 16, 24))
        .with_eval_interleavings(scale.pick(6, 24, 48))
        .with_model(PicConfig {
            hidden: scale.pick(16, 32, 48),
            layers: scale.pick(2, 5, 5),
            ..PicConfig::default()
        })
        .with_train(TrainConfig { epochs: scale.pick(2, 8, 12), ..TrainConfig::default() })
        .with_seed(FAMILY_SEED)
}

/// Print an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Persist experiment output as JSON under `results/`.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(saved {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Train (or load from `results/cache/`) the standard PIC model for a
/// kernel, returning the deterministic corpus plus the checkpoint. Multiple
/// experiment binaries share one training run this way; delete the cache
/// directory to force retraining.
pub fn cached_pic(
    kernel: &snowcat_kernel::Kernel,
    cfg: &snowcat_cfg::KernelCfg,
    pcfg: &PipelineConfig,
    name: &str,
) -> (Vec<snowcat_corpus::StiProfile>, snowcat_nn::Checkpoint) {
    // The corpus is cheap and fully deterministic — rebuild it.
    let mut fz = snowcat_corpus::StiFuzzer::new(kernel, pcfg.seed);
    fz.seed_each_syscall();
    fz.fuzz(pcfg.fuzz_iterations);
    fz.push_random(pcfg.fuzz_iterations / 2);
    let corpus = fz.into_corpus();

    let key = format!(
        "{name}-{}-b{}-s{:x}-c{}-h{}-l{}-e{}",
        kernel.version.replace('.', "_"),
        kernel.num_blocks(),
        pcfg.seed,
        pcfg.n_ctis,
        pcfg.model.hidden,
        pcfg.model.layers,
        pcfg.train.epochs,
    );
    let path = std::path::Path::new("results/cache").join(format!("{key}.json"));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(ck) = snowcat_nn::Checkpoint::from_json(&text) {
            println!("(loaded cached checkpoint {})", path.display());
            return (corpus, ck);
        }
    }
    let out = snowcat_core::train_pic(kernel, cfg, pcfg, name);
    if std::fs::create_dir_all("results/cache").is_ok() {
        if let Ok(json) = out.checkpoint.to_json() {
            let _ = std::fs::write(&path, json);
            println!("(cached checkpoint at {})", path.display());
        }
    }
    (corpus, out.checkpoint)
}

/// Percent formatting helper.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick_selects() {
        assert_eq!(Scale::Smoke.pick(1, 2, 3), 1);
        assert_eq!(Scale::Default.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5513), "55.13%");
    }

    #[test]
    fn std_pipeline_scales_monotonically() {
        let s = std_pipeline(Scale::Smoke);
        let d = std_pipeline(Scale::Default);
        let f = std_pipeline(Scale::Full);
        assert!(s.n_ctis < d.n_ctis && d.n_ctis < f.n_ctis);
        assert!(s.model.hidden <= d.model.hidden);
        assert_eq!(s.seed, FAMILY_SEED);
    }
}
