//! Shared plumbing for the experiment regenerators (one binary per paper
//! table/figure) and the criterion micro-benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use snowcat_core::PipelineConfig;
use snowcat_nn::{PicConfig, TrainConfig};

/// The kernel-family seed used across all experiments, so every binary works
/// on the same synthetic "Linux" lineage.
pub const FAMILY_SEED: u64 = 0x5EED_2023;

/// Experiment scale, selected with `--scale smoke|default|full`.
///
/// * `Smoke` — seconds; CI-sized sanity run.
/// * `Default` — minutes; reproduces every qualitative shape.
/// * `Full` — tens of minutes; tightest statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale sanity run.
    Smoke,
    /// Minutes-scale default.
    Default,
    /// The big run.
    Full,
}

impl Scale {
    /// Parse from command-line args (`--scale <v>`), defaulting to
    /// [`Scale::Default`].
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        match args
            .iter()
            .position(|a| a == "--scale")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
        {
            Some("smoke") => Scale::Smoke,
            Some("full") => Scale::Full,
            _ => Scale::Default,
        }
    }

    /// Scale a count.
    pub fn pick<T>(&self, smoke: T, default: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Default => default,
            Scale::Full => full,
        }
    }
}

/// The standard training pipeline at a given scale (the "PIC-5" recipe).
pub fn std_pipeline(scale: Scale) -> PipelineConfig {
    PipelineConfig::default()
        .with_fuzz_iterations(scale.pick(20, 150, 300))
        .with_n_ctis(scale.pick(12, 400, 900))
        .with_train_interleavings(scale.pick(4, 16, 24))
        .with_eval_interleavings(scale.pick(6, 24, 48))
        .with_model(PicConfig {
            hidden: scale.pick(16, 32, 48),
            layers: scale.pick(2, 5, 5),
            ..PicConfig::default()
        })
        .with_train(TrainConfig { epochs: scale.pick(2, 8, 12), ..TrainConfig::default() })
        .with_seed(FAMILY_SEED)
}

/// Print an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Persist experiment output as JSON under `results/` at the workspace root.
///
/// Anchored via `CARGO_MANIFEST_DIR` so `cargo bench` (which runs with the
/// crate directory as cwd) and `cargo run` (invocation cwd) write to the
/// same place; falls back to a cwd-relative `results/` outside cargo.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| {
            let mut p = std::path::PathBuf::from(d);
            p.pop();
            p.pop();
            p
        })
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    let dir = root.join("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(saved {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Train (or load from `results/cache/`) the standard PIC model for a
/// kernel, returning the deterministic corpus plus the checkpoint. Multiple
/// experiment binaries share one training run this way; delete the cache
/// directory to force retraining.
pub fn cached_pic(
    kernel: &snowcat_kernel::Kernel,
    cfg: &snowcat_cfg::KernelCfg,
    pcfg: &PipelineConfig,
    name: &str,
) -> (Vec<snowcat_corpus::StiProfile>, snowcat_nn::Checkpoint) {
    // The corpus is cheap and fully deterministic — rebuild it.
    let mut fz = snowcat_corpus::StiFuzzer::new(kernel, pcfg.seed);
    fz.seed_each_syscall();
    fz.fuzz(pcfg.fuzz_iterations);
    fz.push_random(pcfg.fuzz_iterations / 2);
    let corpus = fz.into_corpus();

    let key = format!(
        "{name}-{}-b{}-s{:x}-c{}-h{}-l{}-e{}",
        kernel.version.replace('.', "_"),
        kernel.num_blocks(),
        pcfg.seed,
        pcfg.n_ctis,
        pcfg.model.hidden,
        pcfg.model.layers,
        pcfg.train.epochs,
    );
    let path = std::path::Path::new("results/cache").join(format!("{key}.json"));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(ck) = snowcat_nn::Checkpoint::from_json(&text) {
            println!("(loaded cached checkpoint {})", path.display());
            return (corpus, ck);
        }
    }
    let out = snowcat_core::train_pic(kernel, cfg, pcfg, name);
    if std::fs::create_dir_all("results/cache").is_ok() {
        if let Ok(json) = out.checkpoint.to_json() {
            let _ = std::fs::write(&path, json);
            println!("(cached checkpoint at {})", path.display());
        }
    }
    (corpus, out.checkpoint)
}

/// Percent formatting helper.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// The seed's `Mat::matmul`, verbatim: row-major axpy with the
/// `if a == 0.0 { continue }` early-exit branch. This is the exact kernel
/// the repo shipped before the tensor-core optimization — including the
/// zero-skip, which silently skipped the all-zero rows of aggregated
/// message matrices — so speedups measured against it are honest
/// before/after numbers, not strawman comparisons.
pub fn seed_matmul(a: &snowcat_nn::Mat, other: &snowcat_nn::Mat) -> snowcat_nn::Mat {
    assert_eq!(a.cols, other.rows, "matmul shape mismatch");
    let mut out = snowcat_nn::Mat::zeros(a.rows, other.cols);
    for i in 0..a.rows {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = other.row(k);
            for (o, &b) in out_row.iter_mut().zip(b_row) {
                *o += av * b;
            }
        }
    }
    out
}

/// Reference PIC forward pass replicating the pre-optimization pipeline:
/// the seed's matmul kernel ([`seed_matmul`]), flat edge-list mean
/// aggregation with element-wise accessors, bias added after the matmul,
/// and a fresh allocation for every intermediate.
///
/// Kept as the "before" baseline for the `tensor_kernels` /
/// `inference_cost` speedup reports; for actual inference use
/// [`snowcat_nn::PicModel::forward`] (or the allocation-free
/// [`snowcat_nn::PicModel::forward_into`]).
pub fn naive_forward(model: &snowcat_nn::PicModel, graph: &snowcat_graph::CtGraph) -> Vec<f32> {
    use snowcat_graph::VertKind;
    use snowcat_nn::Mat;
    let p = &model.params;
    let n = graph.num_verts();
    let d = model.cfg.hidden;
    // Input features: type + sched embeddings plus mean token embedding.
    let mut x = Mat::zeros(n, d);
    for (i, v) in graph.verts.iter().enumerate() {
        let trow = p.type_emb.row(match v.kind {
            VertKind::Scb => 0,
            VertKind::Urb => 1,
        });
        let srow = p.sched_emb.row(v.sched_mark.index());
        let row = x.row_mut(i);
        for ((o, &t), &m) in row.iter_mut().zip(trow).zip(srow) {
            *o = t + m;
        }
        if !v.tokens.is_empty() {
            let inv = 1.0 / v.tokens.len() as f32;
            for &tok in &v.tokens {
                for (o, &t) in row.iter_mut().zip(p.tok_emb.row(tok as usize)) {
                    *o += t * inv;
                }
            }
        }
    }
    // Input transform, bias-last.
    let mut h = seed_matmul(&x, &p.w_in);
    h.add_row_broadcast(&p.b_in);
    h.relu_inplace();
    // Message passing with flat edge-list aggregation.
    for layer in &p.layers {
        let mut z = seed_matmul(&h, &layer.w_self);
        for (r, w_rel) in layer.w_rel.iter().enumerate() {
            let mut m = Mat::zeros(n, d);
            let mut deg = vec![0u32; n];
            for e in &graph.edges {
                if e.kind.index() != r {
                    continue;
                }
                deg[e.to as usize] += 1;
                let (src, dst) = (e.from as usize, e.to as usize);
                for c in 0..d {
                    let v = m.get(dst, c) + h.get(src, c);
                    m.set(dst, c, v);
                }
            }
            for (v, &dg) in deg.iter().enumerate() {
                if dg > 1 {
                    let inv = 1.0 / dg as f32;
                    for c in m.row_mut(v) {
                        *c *= inv;
                    }
                }
            }
            z.add_assign(&seed_matmul(&m, w_rel));
        }
        z.add_row_broadcast(&layer.b);
        z.relu_inplace();
        z.add_assign(&h);
        h = z;
    }
    // Per-vertex sigmoid head.
    (0..n)
        .map(|i| {
            let mut acc = p.b_out.data[0];
            for (hv, wv) in h.row(i).iter().zip(p.w_out.data.iter()) {
                acc += hv * wv;
            }
            snowcat_nn::tensor::sigmoid(acc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick_selects() {
        assert_eq!(Scale::Smoke.pick(1, 2, 3), 1);
        assert_eq!(Scale::Default.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5513), "55.13%");
    }

    #[test]
    fn std_pipeline_scales_monotonically() {
        let s = std_pipeline(Scale::Smoke);
        let d = std_pipeline(Scale::Default);
        let f = std_pipeline(Scale::Full);
        assert!(s.n_ctis < d.n_ctis && d.n_ctis < f.n_ctis);
        assert!(s.model.hidden <= d.model.hidden);
        assert_eq!(s.seed, FAMILY_SEED);
    }
}
