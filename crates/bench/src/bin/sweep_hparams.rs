//! §5.1.2 — hyperparameter exploration and model selection.
//!
//! The paper trained 80 hyperparameter sets for 5 epochs and selected the
//! checkpoint with the highest URB Average Precision on validation data;
//! their key observation: *deeper GNNs perform better* ("analyzing
//! concurrent executions requires considering broader control and data
//! flows"). This binary sweeps a grid over a single shared data collection
//! and reports validation URB AP per configuration, plus the
//! depth-vs-quality slice.
//!
//! Usage: `sweep_hparams [--scale smoke|default|full]`

use serde::Serialize;
use snowcat_bench::{print_table, save_json, std_pipeline, Scale, FAMILY_SEED};
use snowcat_cfg::KernelCfg;
use snowcat_core::{collect_data, train_on};
use snowcat_kernel::KernelVersion;
use snowcat_nn::{PicConfig, TrainConfig};

#[derive(Serialize)]
struct SweepRow {
    hidden: usize,
    layers: usize,
    lr: f32,
    pos_weight: f32,
    val_urb_ap: f64,
    eval_urb_f1: f64,
    eval_urb_precision: f64,
    eval_urb_recall: f64,
    threshold: f32,
    train_seconds: f64,
}

fn main() {
    let scale = Scale::from_args();
    let pcfg = std_pipeline(scale);
    let kernel = KernelVersion::V5_12.spec(FAMILY_SEED).build();
    let cfg = KernelCfg::build(&kernel);
    println!("collecting shared dataset ...");
    let data = collect_data(&kernel, &cfg, &pcfg);
    println!(
        "examples: train={} valid={} eval={}",
        data.train_set.len(),
        data.valid_set.len(),
        data.eval_set.len()
    );

    let hiddens = scale.pick(vec![16], vec![48], vec![32, 48, 64]);
    let layer_counts = scale.pick(vec![1, 2], vec![1, 2, 3, 4, 5], vec![1, 2, 3, 4, 5, 6]);
    let lrs = scale.pick(vec![5e-3], vec![5e-3], vec![1e-3, 3e-3, 5e-3]);
    let pos_weights = scale.pick(vec![6.0], vec![6.0], vec![2.0, 6.0, 10.0]);
    let epochs = scale.pick(2, 6, 8);

    let mut rows: Vec<SweepRow> = Vec::new();
    for &hidden in &hiddens {
        for &layers in &layer_counts {
            for &lr in &lrs {
                for &pos_weight in &pos_weights {
                    let model = PicConfig { hidden, layers, pos_weight, ..PicConfig::default() };
                    let train = TrainConfig { epochs, lr, ..TrainConfig::default() };
                    let (ck, summary) = train_on(
                        &kernel,
                        &data,
                        model,
                        train,
                        FAMILY_SEED ^ (hidden as u64) ^ ((layers as u64) << 8),
                        &format!("sweep-h{hidden}-l{layers}"),
                    );
                    println!(
                        "hidden={hidden:<3} layers={layers} lr={lr:<6} posw={pos_weight:<4} \
                         -> val AP {:.4}  eval P/R {:.3}/{:.3}  ({:.0}s)",
                        summary.val_urb_ap,
                        summary.eval_urb.precision,
                        summary.eval_urb.recall,
                        summary.train_seconds
                    );
                    rows.push(SweepRow {
                        hidden,
                        layers,
                        lr,
                        pos_weight,
                        val_urb_ap: summary.val_urb_ap,
                        eval_urb_f1: summary.eval_urb.f1,
                        eval_urb_precision: summary.eval_urb.precision,
                        eval_urb_recall: summary.eval_urb.recall,
                        threshold: ck.threshold,
                        train_seconds: summary.train_seconds,
                    });
                }
            }
        }
    }

    // Depth slice: best val AP per layer count.
    let mut depth_rows = Vec::new();
    for &layers in &layer_counts {
        if let Some(best) = rows
            .iter()
            .filter(|r| r.layers == layers)
            .max_by(|a, b| a.val_urb_ap.partial_cmp(&b.val_urb_ap).unwrap())
        {
            depth_rows.push(vec![
                layers.to_string(),
                format!("{:.4}", best.val_urb_ap),
                format!("{:.3}", best.eval_urb_f1),
            ]);
        }
    }
    print_table(
        "GNN depth vs quality (paper: deeper GNNs achieve higher performance)",
        &["layers", "best val URB AP", "eval URB F1"],
        &depth_rows,
    );

    let best = rows
        .iter()
        .max_by(|a, b| a.val_urb_ap.partial_cmp(&b.val_urb_ap).unwrap())
        .expect("sweep produced rows");
    println!(
        "\nselected (highest val URB AP, the paper's rule): hidden={} layers={} lr={} posw={} \
         (AP {:.4})",
        best.hidden, best.layers, best.lr, best.pos_weight, best.val_urb_ap
    );
    save_json("sweep_hparams", &rows);
}
