//! Extension (§6 of the paper, implemented): inter-thread-flow prediction
//! for directed race reproduction.
//!
//! The paper observes that many Razzer-PIC candidates cover both racing
//! blocks yet fail to reproduce the race because the two instructions never
//! touch the same memory — and proposes training PIC to predict inter-thread
//! data flows as future work. This binary implements that: a PIC model
//! jointly trained with a flow head (`train_with_flows`), a Razzer variant
//! that additionally requires a predicted flow between the racing blocks
//! (`Razzer-PIC+flow`), and a comparison of candidate precision (#TP/#CTIs)
//! across Razzer-Relax / Razzer-PIC / Razzer-PIC+flow.
//!
//! Expected shape: each filter stage keeps (almost) all true positives while
//! shrinking the candidate queue, so TP-ratio rises monotonically.
//!
//! Usage: `ext_razzer_flow [--scale smoke|default|full]`

use serde::Serialize;
use snowcat_bench::{print_table, save_json, std_pipeline, Scale, FAMILY_SEED};
use snowcat_cfg::KernelCfg;
use snowcat_core::{
    collect_data, find_candidates, reproduce, train_on_with_flows, CostModel, Pic,
    PredictorService, RazzerMode,
};
use snowcat_corpus::StiFuzzer;
use snowcat_kernel::KernelVersion;

#[derive(Serialize)]
struct FlowRow {
    race: String,
    mode: String,
    candidates: usize,
    true_positives: usize,
    tp_ratio: f64,
    avg_hours: Option<f64>,
}

fn main() {
    let scale = Scale::from_args();
    let pcfg = std_pipeline(scale);
    let kernel = KernelVersion::V5_12.spec(FAMILY_SEED).build();
    let cfg = KernelCfg::build(&kernel);
    let cost = CostModel::default();

    println!("training PIC-5+flow (joint coverage + inter-thread-flow head) ...");
    let data = collect_data(&kernel, &cfg, &pcfg);
    let (checkpoint, summary, flow_ap) =
        train_on_with_flows(&kernel, &data, pcfg.model, pcfg.train, pcfg.seed, "PIC-5+flow");
    println!("coverage val AP {:.4}, flow head eval AP {:.4}", summary.val_urb_ap, flow_ap);

    let mut fz = StiFuzzer::new(&kernel, FAMILY_SEED ^ 0x4a22);
    fz.seed_each_syscall();
    fz.fuzz(scale.pick(30, 150, 400));
    fz.push_random(scale.pick(10, 60, 150));
    let corpus = fz.into_corpus();

    // "Known races" preferring those whose racing instruction hides in a
    // URB (multi-order and order-violation patterns) — the population the
    // paper's Table 4 studies, where strict Razzer fails.
    let kind_rank = |k: snowcat_kernel::BugKind| match k {
        snowcat_kernel::BugKind::MultiOrder => 0,
        snowcat_kernel::BugKind::OrderViolation => 1,
        snowcat_kernel::BugKind::AtomicityViolation => 2,
        snowcat_kernel::BugKind::DataRace => 3,
    };
    let mut bugs: Vec<&snowcat_kernel::BugSpec> =
        kernel.bugs.iter().filter(|b| b.harmful).collect();
    bugs.sort_by_key(|b| (kind_rank(b.kind), std::cmp::Reverse(b.difficulty)));
    bugs.truncate(scale.pick(2, 6, 6));

    let schedules = scale.pick(40, 300, 1000);
    let mut rows: Vec<FlowRow> = Vec::new();
    for (ri, bug) in bugs.iter().enumerate() {
        let race_id = char::from(b'A' + ri as u8).to_string();
        for mode in [RazzerMode::Relax, RazzerMode::Pic, RazzerMode::PicFlow] {
            let pic;
            let service;
            let svc_ref = if mode != RazzerMode::Relax {
                pic = Pic::new(&checkpoint, &kernel, &cfg);
                service = PredictorService::direct(&pic);
                Some(&service)
            } else {
                None
            };
            let candidates = find_candidates(
                &kernel,
                &cfg,
                &corpus,
                bug,
                mode,
                svc_ref,
                FAMILY_SEED ^ ri as u64,
            );
            let res = reproduce(
                &kernel,
                &corpus,
                &candidates,
                bug,
                mode,
                schedules,
                cost.exec_seconds,
                FAMILY_SEED ^ 0xF10 ^ ri as u64,
            );
            println!(
                "  race {race_id} {:<16} candidates={:<4} TPs={:<3}",
                res.mode, res.candidates, res.true_positives
            );
            rows.push(FlowRow {
                race: race_id.clone(),
                mode: res.mode.clone(),
                candidates: res.candidates,
                true_positives: res.true_positives,
                tp_ratio: res.true_positives as f64 / res.candidates.max(1) as f64,
                avg_hours: res.avg_hours,
            });
        }
    }

    print_table(
        "Razzer candidate precision with the flow head (§6 extension)",
        &["Race", "Mode", "# CTIs", "# TP", "TP ratio", "avg h"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.race.clone(),
                    r.mode.clone(),
                    r.candidates.to_string(),
                    r.true_positives.to_string(),
                    format!("{:.3}", r.tp_ratio),
                    r.avg_hours.map(|h| format!("{h:.1}")).unwrap_or_else(|| "Na".into()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("ext_razzer_flow", &rows);

    // Shape: flow filter keeps the queue at least as precise on average.
    let mean_ratio = |mode: &str| {
        let v: Vec<f64> = rows.iter().filter(|r| r.mode == mode).map(|r| r.tp_ratio).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "\nmean TP ratio: Relax {:.3} | PIC {:.3} | PIC+flow {:.3}",
        mean_ratio("Razzer-Relax"),
        mean_ratio("Razzer-PIC"),
        mean_ratio("Razzer-PIC+flow")
    );
}
