//! Figures 5b–5f and Table 2 — adapting to newer kernels (§5.4).
//!
//! Evolves the synthetic kernel 5.12 → 5.13 → 6.1 and studies how PIC
//! generalizes:
//!
//! * **Table 2** — the model variants: PIC-5, fine-tuned PIC-6.ft.sml /
//!   PIC-6.ft.med, from-scratch PIC-6.scratch.sml / PIC-6.scratch.med, and
//!   PIC-5.13.ft.sml, with their data sizes and (simulated) startup costs.
//! * **Fig 5b–e** — race-coverage campaigns on kernel 6.1 under MLPCT(S1)
//!   guided by each variant, vs the PCT baseline.
//! * **Fig 5f** — the same on kernel 5.13 with PIC-5 and PIC-5.13.ft.sml.
//!
//! Paper shapes: fine-tuning with modest new data beats or matches PIC-5 and
//! clearly beats PCT; from-scratch models with little data underperform even
//! stale PIC-5 ("dataset size trumps all other scaling factors").
//!
//! Usage: `fig5_generalization [--scale smoke|default|full]`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use snowcat_bench::{print_table, save_json, std_pipeline, Scale, FAMILY_SEED};
use snowcat_cfg::KernelCfg;
use snowcat_core::{
    collect_data, fine_tune, run_campaign_budgeted, train_on, train_pic, CampaignResult, CostModel,
    ExploreConfig, Explorer, Pic, S1NewBitmap,
};
use snowcat_corpus::interacting_cti_pairs;
use snowcat_kernel::{Kernel, KernelVersion};
use snowcat_nn::Checkpoint;

#[derive(Serialize)]
struct VariantInfo {
    name: String,
    trained_on: String,
    train_graphs: usize,
    collection_hours: f64,
    train_seconds: f64,
    val_urb_ap: f64,
    startup_hours: f64,
}

#[derive(Serialize)]
struct CampaignSeries {
    label: String,
    startup_hours: f64,
    hours: Vec<f64>,
    races: Vec<usize>,
}

#[allow(clippy::too_many_arguments)]
fn campaign_with(
    kernel: &Kernel,
    cfg: &KernelCfg,
    corpus: &[snowcat_corpus::StiProfile],
    stream: &[(usize, usize)],
    checkpoint: Option<&Checkpoint>,
    explore: &ExploreConfig,
    cost: &CostModel,
    label_override: Option<&str>,
    max_hours: Option<f64>,
) -> CampaignResult {
    match checkpoint {
        None => {
            run_campaign_budgeted(kernel, corpus, stream, Explorer::Pct, explore, cost, max_hours)
        }
        Some(ck) => {
            let pic = Pic::new(ck, kernel, cfg);
            let mut res = run_campaign_budgeted(
                kernel,
                corpus,
                stream,
                Explorer::mlpct(&pic, Box::new(S1NewBitmap::new())),
                explore,
                cost,
                max_hours,
            );
            if let Some(l) = label_override {
                res.label = format!("MLPCT-S1[{l}]");
            }
            res
        }
    }
}

fn main() {
    let scale = Scale::from_args();
    let cost = CostModel::default();
    let pcfg = std_pipeline(scale);

    // ---- Kernel 5.12: the base model. ----
    let k512 = KernelVersion::V5_12.spec(FAMILY_SEED).build();
    let cfg512 = KernelCfg::build(&k512);
    println!("training PIC-5 on kernel 5.12 ...");
    let base = train_pic(&k512, &cfg512, &pcfg, "PIC-5");
    let mut variants: Vec<VariantInfo> = Vec::new();
    let base_graphs = base.summary.examples.0 + base.summary.examples.1;
    let base_collect_h = cost.hours(base_graphs as u64, 0);
    variants.push(VariantInfo {
        name: "PIC-5".into(),
        trained_on: "5.12 (full)".into(),
        train_graphs: base_graphs,
        collection_hours: base_collect_h,
        train_seconds: base.summary.train_seconds,
        val_urb_ap: base.summary.val_urb_ap,
        startup_hours: base_collect_h + base.summary.train_seconds / 3600.0,
    });

    // ---- Kernel 6.1: new data at two collection scales. ----
    let k61 = KernelVersion::V6_1.spec(FAMILY_SEED).build();
    let cfg61 = KernelCfg::build(&k61);
    println!(
        "kernel 6.1: {} syscalls ({} in 5.12), {} bugs ({} in 5.12)",
        k61.syscalls.len(),
        k512.syscalls.len(),
        k61.bugs.len(),
        k512.bugs.len()
    );
    let sml_cfg = pcfg.with_n_ctis((pcfg.n_ctis / 8).max(4)).with_seed(pcfg.seed ^ 0x61);
    let med_cfg = pcfg.with_n_ctis((pcfg.n_ctis / 3).max(6)).with_seed(pcfg.seed ^ 0x62);
    println!("collecting 6.1 datasets (sml/med) ...");
    let data_sml = collect_data(&k61, &cfg61, &sml_cfg);
    let data_med = collect_data(&k61, &cfg61, &med_cfg);

    let mut checkpoints: Vec<(String, Checkpoint)> = Vec::new();
    // Fine-tuned variants.
    for (tag, data, epochs) in [("PIC-6.ft.sml", &data_sml, 3usize), ("PIC-6.ft.med", &data_med, 4)]
    {
        println!("fine-tuning {tag} ...");
        let started = std::time::Instant::now();
        let (ck, ap) = fine_tune(&base.checkpoint, &data.train_set, &data.valid_set, epochs, tag);
        let graphs = data.train_set.len() + data.valid_set.len();
        let collect_h = cost.hours(graphs as u64, 0);
        let secs = started.elapsed().as_secs_f64();
        variants.push(VariantInfo {
            name: tag.into(),
            trained_on: "5.12 full + 6.1 new".into(),
            train_graphs: graphs,
            collection_hours: collect_h,
            train_seconds: secs,
            val_urb_ap: ap,
            // Fine-tuning amortizes the 5.12 cost: startup here counts only
            // the *new* work, the paper's argument for the ft variants.
            startup_hours: collect_h + secs / 3600.0,
        });
        checkpoints.push((tag.to_string(), ck));
    }
    // From-scratch variants.
    for (tag, data) in [("PIC-6.scratch.sml", &data_sml), ("PIC-6.scratch.med", &data_med)] {
        println!("training {tag} from scratch ...");
        let (ck, summary) =
            train_on(&k61, data, pcfg.model, pcfg.train, pcfg.seed ^ 0x5c2a7c4, tag);
        let graphs = data.train_set.len() + data.valid_set.len();
        let collect_h = cost.hours(graphs as u64, 0);
        variants.push(VariantInfo {
            name: tag.into(),
            trained_on: "6.1 only".into(),
            train_graphs: graphs,
            collection_hours: collect_h,
            train_seconds: summary.train_seconds,
            val_urb_ap: summary.val_urb_ap,
            startup_hours: collect_h + summary.train_seconds / 3600.0,
        });
        checkpoints.push((tag.to_string(), ck));
    }

    print_table(
        "Table 2: model variants",
        &[
            "Model",
            "trained on",
            "graphs",
            "collect (sim h)",
            "train (s)",
            "val URB AP",
            "startup (sim h)",
        ],
        &variants
            .iter()
            .map(|v| {
                vec![
                    v.name.clone(),
                    v.trained_on.clone(),
                    v.train_graphs.to_string(),
                    format!("{:.2}", v.collection_hours),
                    format!("{:.1}", v.train_seconds),
                    format!("{:.4}", v.val_urb_ap),
                    format!("{:.2}", v.startup_hours),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("table2_models", &variants);

    // ---- Fig 5b–e: campaigns on kernel 6.1. ----
    let mut fz = snowcat_corpus::StiFuzzer::new(&k61, FAMILY_SEED ^ 0xCA);
    fz.seed_each_syscall();
    fz.fuzz(pcfg.fuzz_iterations);
    fz.push_random(pcfg.fuzz_iterations / 2);
    let corpus61 = fz.into_corpus();
    let stream_len = scale.pick(20, 600, 1500);
    let time_budget = Some(scale.pick(0.01, 2.0, 6.0));
    let mut rng = ChaCha8Rng::seed_from_u64(FAMILY_SEED ^ 0xF16B);
    let stream61 = interacting_cti_pairs(&mut rng, &corpus61, stream_len);
    let explore = ExploreConfig::default()
        .with_exec_budget(scale.pick(8, 50, 50))
        .with_inference_cap(scale.pick(60, 600, 1600))
        .with_seed(FAMILY_SEED ^ 0x61CA);

    println!("running 6.1 campaigns ({stream_len} CTIs) ...");
    let mut series: Vec<CampaignSeries> = Vec::new();
    let pct61 =
        campaign_with(&k61, &cfg61, &corpus61, &stream61, None, &explore, &cost, None, time_budget);
    series.push(CampaignSeries {
        label: "PCT".into(),
        startup_hours: 0.0,
        hours: pct61.history.iter().map(|h| h.hours).collect(),
        races: pct61.history.iter().map(|h| h.races).collect(),
    });
    let mut runs: Vec<(String, &Checkpoint, f64)> = vec![(
        "PIC-5".into(),
        &base.checkpoint,
        0.0, // already paid for 5.12; stale model reused for free
    )];
    for (tag, ck) in &checkpoints {
        let v = variants.iter().find(|v| &v.name == tag).unwrap();
        runs.push((tag.clone(), ck, v.startup_hours));
    }
    let mut summary_rows = Vec::new();
    {
        let last = pct61.last();
        summary_rows.push(vec![
            "PCT".to_string(),
            last.races.to_string(),
            last.bugs.to_string(),
            format!("{:.2}", last.hours),
            "0.00".into(),
        ]);
    }
    for (tag, ck, startup) in runs {
        let res = campaign_with(
            &k61,
            &cfg61,
            &corpus61,
            &stream61,
            Some(ck),
            &explore,
            &cost,
            Some(&tag),
            time_budget,
        );
        let last = res.last();
        summary_rows.push(vec![
            res.label.clone(),
            last.races.to_string(),
            last.bugs.to_string(),
            format!("{:.2}", last.hours),
            format!("{:.2}", startup),
        ]);
        series.push(CampaignSeries {
            label: res.label.clone(),
            startup_hours: startup,
            hours: res.history.iter().map(|h| h.hours).collect(),
            races: res.history.iter().map(|h| h.races).collect(),
        });
    }
    print_table(
        "Fig 5b–e: kernel 6.1 campaigns (MLPCT-S1 per model vs PCT)",
        &["Explorer", "races", "bugs", "testing sim h", "startup sim h"],
        &summary_rows,
    );

    // ---- Fig 5f: kernel 5.13 with PIC-5 and a lightly fine-tuned model. ----
    let k513 = KernelVersion::V5_13.spec(FAMILY_SEED).build();
    let cfg513 = KernelCfg::build(&k513);
    println!("collecting a small 5.13 dataset + fine-tuning PIC-5.13.ft.sml ...");
    let sml513 = pcfg.with_n_ctis((pcfg.n_ctis / 8).max(4)).with_seed(pcfg.seed ^ 0x513);
    let data513 = collect_data(&k513, &cfg513, &sml513);
    let (ck513, _) =
        fine_tune(&base.checkpoint, &data513.train_set, &data513.valid_set, 3, "PIC-5.13.ft.sml");

    let mut fz = snowcat_corpus::StiFuzzer::new(&k513, FAMILY_SEED ^ 0xCB);
    fz.seed_each_syscall();
    fz.fuzz(pcfg.fuzz_iterations);
    let corpus513 = fz.into_corpus();
    let stream513 = interacting_cti_pairs(&mut rng, &corpus513, stream_len);

    let mut rows513 = Vec::new();
    let pct513 = campaign_with(
        &k513,
        &cfg513,
        &corpus513,
        &stream513,
        None,
        &explore,
        &cost,
        None,
        time_budget,
    );
    for (label, ck) in
        [("PCT", None), ("PIC-5", Some(&base.checkpoint)), ("PIC-5.13.ft.sml", Some(&ck513))]
    {
        let res = match ck {
            None => pct513.clone(),
            Some(c) => campaign_with(
                &k513,
                &cfg513,
                &corpus513,
                &stream513,
                Some(c),
                &explore,
                &cost,
                Some(label),
                time_budget,
            ),
        };
        let last = res.last();
        rows513.push(vec![res.label.clone(), last.races.to_string(), format!("{:.2}", last.hours)]);
        series.push(CampaignSeries {
            label: format!("5.13/{}", res.label),
            startup_hours: 0.0,
            hours: res.history.iter().map(|h| h.hours).collect(),
            races: res.history.iter().map(|h| h.races).collect(),
        });
    }
    print_table("Fig 5f: kernel 5.13 campaigns", &["Explorer", "races", "sim h"], &rows513);
    save_json("fig5_generalization", &series);
}
