//! Table 5 — Snowboard exemplar sampling with PIC (§5.6.2).
//!
//! Builds INS-PAIR clusters of CTIs on kernel 6.1, identifies the *buggy
//! clusters* (those containing a member whose Snowboard-style interleaving
//! exploration exposes a planted bug), and compares exemplar samplers over
//! 1,000 randomized trials per cluster:
//!
//! * SB-RND(25/50/75%) — random p-percent sampling,
//! * SB-PIC(S1) — select members whose *predicted* coverage bitmap is new,
//! * SB-PIC(S2) — select members predicted to cover a new block.
//!
//! Paper shape: SB-PIC(S1) finds the bug essentially always but samples
//! nearly the whole cluster; SB-PIC(S2) matches SB-RND(75%)'s probability at
//! roughly SB-RND(50%)'s cost (2.6× / 1.4× better than RND-25/RND-50).
//!
//! Usage: `table5_snowboard [--scale smoke|default|full]`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use snowcat_bench::{cached_pic, pct, print_table, save_json, std_pipeline, Scale, FAMILY_SEED};
use snowcat_cfg::KernelCfg;
use snowcat_core::{
    cluster_ctis, member_exposes_bug, predict_members, run_sampling_trials, Pic, PredictorService,
    Sampler,
};
use snowcat_kernel::KernelVersion;

#[derive(Serialize)]
struct Table5Row {
    sampler: String,
    clusters: usize,
    mean_probability: f64,
    mean_sampling_rate: f64,
}

fn main() {
    let scale = Scale::from_args();
    let pcfg = std_pipeline(scale);
    let kernel = KernelVersion::V6_1.spec(FAMILY_SEED).build();
    let cfg = KernelCfg::build(&kernel);

    println!("training (or loading) PIC-6 ...");
    let (corpus, checkpoint) = cached_pic(&kernel, &cfg, &pcfg, "PIC-6");
    let corpus = &corpus;

    // Build a CTI pool rich in bug-carrier pairs plus random pairs, then
    // cluster by INS-PAIR.
    let mut rng = ChaCha8Rng::seed_from_u64(FAMILY_SEED ^ 0x58);
    let mut ctis: Vec<(usize, usize)> = Vec::new();
    for bug in &kernel.bugs {
        let carriers_a: Vec<usize> = corpus
            .iter()
            .enumerate()
            .filter(|(_, p)| p.sti.calls.iter().any(|c| c.syscall == bug.syscalls.0))
            .map(|(i, _)| i)
            .collect();
        let carriers_b: Vec<usize> = corpus
            .iter()
            .enumerate()
            .filter(|(_, p)| p.sti.calls.iter().any(|c| c.syscall == bug.syscalls.1))
            .map(|(i, _)| i)
            .collect();
        for &a in carriers_a.iter().take(4) {
            for &b in carriers_b.iter().take(4) {
                ctis.push((a, b));
            }
        }
    }
    let n_random = scale.pick(10, 120, 400);
    ctis.extend(snowcat_corpus::random_cti_pairs(&mut rng, corpus.len(), n_random));
    let clusters = cluster_ctis(corpus, &ctis);
    println!("{} CTIs -> {} INS-PAIR clusters", ctis.len(), clusters.len());

    // Identify buggy clusters: a member whose write-yield exploration
    // exposes some planted bug. Restrict to clusters with enough members
    // for sampling to be meaningful.
    let min_members = 4;
    let explore_schedules = scale.pick(4, 10, 16);
    let mut buggy: Vec<(Vec<snowcat_core::ClusterMember>, Vec<bool>)> = Vec::new();
    for (_key, members) in clusters.into_iter().filter(|(_, m)| m.len() >= min_members) {
        let mut exposing = vec![false; members.len()];
        let mut any = false;
        for (mi, m) in members.iter().enumerate() {
            for bug in &kernel.bugs {
                if member_exposes_bug(
                    &kernel,
                    corpus,
                    m,
                    bug.id,
                    explore_schedules,
                    FAMILY_SEED ^ mi as u64,
                ) {
                    exposing[mi] = true;
                    any = true;
                    break;
                }
            }
        }
        // A useful buggy cluster is one where *some but not all* members
        // expose (otherwise sampling is trivial).
        if any && exposing.iter().any(|&e| !e) {
            buggy.push((members, exposing));
        }
        if buggy.len() >= 6 {
            break; // the paper studies 6 buggy clusters
        }
    }
    println!("buggy clusters found: {}", buggy.len());
    if buggy.is_empty() {
        eprintln!("WARNING: no buggy clusters at this scale; rerun with --scale full");
        std::process::exit(2);
    }

    let samplers = [
        Sampler::Random(0.25),
        Sampler::Random(0.50),
        Sampler::Random(0.75),
        Sampler::PicS1,
        Sampler::PicS2,
    ];
    let trials = scale.pick(100, 1000, 1000);
    let pic = Pic::new(&checkpoint, &kernel, &cfg);
    let service = PredictorService::direct(&pic);
    let mut rows: Vec<Table5Row> = Vec::new();
    for sampler in samplers {
        let mut prob_sum = 0.0;
        let mut rate_sum = 0.0;
        for (ci, (members, exposing)) in buggy.iter().enumerate() {
            let preds = match sampler {
                Sampler::PicS1 | Sampler::PicS2 => Some(predict_members(&service, corpus, members)),
                _ => None,
            };
            let mut trng = ChaCha8Rng::seed_from_u64(FAMILY_SEED ^ 0x7e1a ^ ci as u64);
            let out = run_sampling_trials(
                sampler,
                members.len(),
                exposing,
                preds.as_deref(),
                trials,
                &mut trng,
            );
            prob_sum += out.bug_finding_probability;
            rate_sum += out.sampling_rate;
        }
        let n = buggy.len() as f64;
        println!(
            "{:<12} mean probability {:.3}, mean sampling rate {:.3}",
            sampler.label(),
            prob_sum / n,
            rate_sum / n
        );
        rows.push(Table5Row {
            sampler: sampler.label(),
            clusters: buggy.len(),
            mean_probability: prob_sum / n,
            mean_sampling_rate: rate_sum / n,
        });
    }

    print_table(
        "Table 5: bug-finding probability vs sampling rate (avg over buggy clusters)",
        &["Sampler", "bug-finding probability", "sampling rate"],
        &rows
            .iter()
            .map(|r| vec![r.sampler.clone(), pct(r.mean_probability), pct(r.mean_sampling_rate)])
            .collect::<Vec<_>>(),
    );
    save_json("table5_snowboard", &rows);

    // Shape check: S2 beats RND at comparable sampling rate.
    let get = |label: &str| rows.iter().find(|r| r.sampler.starts_with(label)).unwrap();
    let s2 = get("SB-PIC(S2)");
    let rnd = rows
        .iter()
        .filter(|r| r.sampler.starts_with("SB-RND"))
        .min_by(|a, b| {
            (a.mean_sampling_rate - s2.mean_sampling_rate)
                .abs()
                .partial_cmp(&(b.mean_sampling_rate - s2.mean_sampling_rate).abs())
                .unwrap()
        })
        .unwrap();
    println!(
        "\nshape: SB-PIC(S2) probability {} at rate {} vs closest random sampler {} probability {} at rate {}",
        pct(s2.mean_probability),
        pct(s2.mean_sampling_rate),
        rnd.sampler,
        pct(rnd.mean_probability),
        pct(rnd.mean_sampling_rate)
    );
}
