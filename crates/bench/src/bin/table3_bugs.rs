//! Table 3 — new concurrency bugs in kernel 6.1 (§5.5).
//!
//! Runs matched PCT and MLPCT-S1 campaigns over a bug-relevant CTI stream on
//! the evolved kernel 6.1 and reports every planted bug either explorer
//! exposed, with its kind, subsystem, difficulty and which explorer found
//! it.
//!
//! Paper shape: all confirmed new bugs were found only by MLPCT; random
//! schedules (PCT) expose at most the easy ones. Difficulty here is graded
//! by the number of ordering constraints the interleaving must satisfy
//! (Easy/Medium/Hard — the hard class mirrors the paper's 9-year-old vivid
//! bug #7).
//!
//! Usage: `table3_bugs [--scale smoke|default|full]`

use serde::Serialize;
use snowcat_bench::{cached_pic, print_table, save_json, std_pipeline, Scale, FAMILY_SEED};
use snowcat_cfg::KernelCfg;
use snowcat_core::{run_campaign_budgeted, CostModel, ExploreConfig, Explorer, Pic, S1NewBitmap};
use snowcat_kernel::{BugId, KernelVersion};

#[derive(Serialize)]
struct BugRow {
    id: u16,
    summary: String,
    kind: String,
    subsystem: String,
    difficulty: String,
    harmful: bool,
    found_by: String,
}

fn main() {
    let scale = Scale::from_args();
    let pcfg = std_pipeline(scale);
    let kernel = KernelVersion::V6_1.spec(FAMILY_SEED).build();
    let cfg = KernelCfg::build(&kernel);
    println!(
        "kernel 6.1: {} planted bugs ({} easy / {} medium / {} hard)",
        kernel.bugs.len(),
        kernel
            .bugs
            .iter()
            .filter(|b| b.difficulty == snowcat_kernel::bugs::BugDifficulty::Easy)
            .count(),
        kernel
            .bugs
            .iter()
            .filter(|b| b.difficulty == snowcat_kernel::bugs::BugDifficulty::Medium)
            .count(),
        kernel
            .bugs
            .iter()
            .filter(|b| b.difficulty == snowcat_kernel::bugs::BugDifficulty::Hard)
            .count(),
    );

    println!("training (or loading) PIC-6 ...");
    let (corpus, checkpoint) = cached_pic(&kernel, &cfg, &pcfg, "PIC-6");
    let corpus = &corpus;

    // Bug-relevant stream: pairs whose STIs invoke both carrier syscalls of
    // some planted bug, mixed with random pairs — the realistic situation
    // where Snowboard-style CTI generation has already shortlisted
    // interacting inputs, and schedule selection decides success.
    let mut stream: Vec<(usize, usize)> = Vec::new();
    for bug in &kernel.bugs {
        let ia =
            corpus.iter().position(|p| p.sti.calls.iter().any(|c| c.syscall == bug.syscalls.0));
        let ib =
            corpus.iter().position(|p| p.sti.calls.iter().any(|c| c.syscall == bug.syscalls.1));
        if let (Some(a), Some(b)) = (ia, ib) {
            stream.push((a, b));
        }
    }
    // Extend with every other corpus entry containing a carrier syscall
    // (multi-call fuzzed STIs hit carriers with different argument and
    // state contexts), then interleave with random pairs, shuffle, and
    // repeat the whole block so the time-budgeted campaigns never run dry.
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(FAMILY_SEED ^ 0x7AB3);
    for bug in &kernel.bugs {
        let hits_a: Vec<usize> = corpus
            .iter()
            .enumerate()
            .filter(|(_, p)| p.sti.calls.iter().any(|c| c.syscall == bug.syscalls.0))
            .map(|(i, _)| i)
            .collect();
        let hits_b: Vec<usize> = corpus
            .iter()
            .enumerate()
            .filter(|(_, p)| p.sti.calls.iter().any(|c| c.syscall == bug.syscalls.1))
            .map(|(i, _)| i)
            .collect();
        for &a in hits_a.iter().take(3) {
            for &b in hits_b.iter().take(3) {
                stream.push((a, b));
            }
        }
    }
    let n_random = scale.pick(4, stream.len(), stream.len() * 2);
    for _ in 0..n_random {
        stream.push((rng.gen_range(0..corpus.len()), rng.gen_range(0..corpus.len())));
    }
    for i in (1..stream.len()).rev() {
        stream.swap(i, rng.gen_range(0..=i));
    }
    // Repeat the shuffled block: campaign budgets are time-based.
    let block = stream.clone();
    for _ in 0..6 {
        stream.extend(block.iter().copied());
    }

    let explore = ExploreConfig::default()
        .with_exec_budget(scale.pick(10, 50, 80))
        .with_inference_cap(scale.pick(80, 600, 1600))
        .with_seed(FAMILY_SEED ^ 0xB065);
    let cost = CostModel::default();
    let time_budget = Some(scale.pick(0.02, 2.0, 6.0));

    println!("running PCT campaign ({:?} sim h over up to {} CTIs) ...", time_budget, stream.len());
    let pct = run_campaign_budgeted(
        &kernel,
        corpus,
        &stream,
        Explorer::Pct,
        &explore,
        &cost,
        time_budget,
    );
    println!("running MLPCT-S1 campaign ...");
    let pic = Pic::new(&checkpoint, &kernel, &cfg);
    let mlpct = run_campaign_budgeted(
        &kernel,
        corpus,
        &stream,
        Explorer::mlpct(&pic, Box::new(S1NewBitmap::new())),
        &explore,
        &cost,
        time_budget,
    );

    let found_by = |id: BugId| -> Option<String> {
        let in_pct = pct.bugs_found.contains(&id);
        let in_ml = mlpct.bugs_found.contains(&id);
        match (in_ml, in_pct) {
            (true, true) => Some("both".into()),
            (true, false) => Some("MLPCT".into()),
            (false, true) => Some("PCT".into()),
            (false, false) => None,
        }
    };

    let mut rows: Vec<BugRow> = Vec::new();
    for bug in &kernel.bugs {
        if let Some(by) = found_by(bug.id) {
            rows.push(BugRow {
                id: bug.id.0,
                summary: bug.summary.clone(),
                kind: bug.kind.code().into(),
                subsystem: kernel.subsystems[bug.subsystem.index()].name.clone(),
                difficulty: format!("{:?}", bug.difficulty),
                harmful: bug.harmful,
                found_by: by,
            });
        }
    }

    print_table(
        "Table 3: planted bugs exposed on kernel 6.1",
        &["ID", "Summary", "Kind", "Subsystem", "Difficulty", "Harmful", "Found by"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.id.to_string(),
                    r.summary.clone(),
                    r.kind.clone(),
                    format!("{}/", r.subsystem),
                    r.difficulty.clone(),
                    if r.harmful { "yes".into() } else { "benign".into() },
                    r.found_by.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\ntotals: MLPCT exposed {} bugs in {:.1} sim h, PCT exposed {} in {:.1} sim h",
        mlpct.last().bugs,
        mlpct.last().hours,
        pct.last().bugs,
        pct.last().hours
    );
    let ml_only = rows.iter().filter(|r| r.found_by == "MLPCT").count();
    println!("bugs found ONLY by MLPCT: {ml_only}");
    save_json("table3_bugs", &rows);

    if mlpct.last().bugs < pct.last().bugs {
        eprintln!("WARNING: MLPCT exposed fewer bugs than PCT; shape broken");
        std::process::exit(2);
    }
    println!("shape check: MLPCT exposes at least as many planted bugs as PCT ✓");
}
