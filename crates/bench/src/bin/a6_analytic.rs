//! §A.6 — analytic economics of the rejection filter.
//!
//! Evaluates the closed-form expected cost (dynamic executions, inferences,
//! seconds) per fruitful test, with and without the learned filter, across a
//! grid of base rates and filter operating points, and cross-checks the
//! closed form with Monte-Carlo simulation.
//!
//! Paper message: with a ~1% fruitful-candidate base rate and PIC's
//! precision/recall, filtering wins by an order of magnitude despite paying
//! for inferences.
//!
//! Usage: `a6_analytic [--scale smoke|default|full]`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use snowcat_bench::{print_table, save_json, Scale};
use snowcat_core::{filter_economics, simulate_filter, CostModel};

#[derive(Serialize)]
struct EconRow {
    base_rate: f64,
    precision: f64,
    recall: f64,
    unfiltered_seconds: f64,
    filtered_seconds: f64,
    speedup: f64,
    mc_filtered_seconds: f64,
}

fn main() {
    let scale = Scale::from_args();
    let cost = CostModel::default();
    let mut rng = ChaCha8Rng::seed_from_u64(0xA6);
    let trials = scale.pick(500, 4000, 20000);

    let base_rates = [0.002, 0.005, 0.011, 0.05, 0.2];
    let operating_points = [(0.49, 0.69), (0.2, 0.9), (0.8, 0.4), (0.1, 0.95)];

    let mut rows = Vec::new();
    for &b in &base_rates {
        for &(p, r) in &operating_points {
            let ana = filter_economics(&cost, b, p, r);
            let sim = simulate_filter(&mut rng, &cost, b, p, r, trials);
            rows.push(EconRow {
                base_rate: b,
                precision: p,
                recall: r,
                unfiltered_seconds: ana.unfiltered_seconds,
                filtered_seconds: ana.filtered_seconds,
                speedup: ana.unfiltered_seconds / ana.filtered_seconds,
                mc_filtered_seconds: sim.filtered_seconds,
            });
        }
    }

    print_table(
        "A.6: expected seconds per fruitful test (analytic + Monte-Carlo)",
        &["base", "prec", "recall", "unfiltered s", "filtered s", "speedup", "MC filtered s"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.3}", r.base_rate),
                    format!("{:.2}", r.precision),
                    format!("{:.2}", r.recall),
                    format!("{:.1}", r.unfiltered_seconds),
                    format!("{:.1}", r.filtered_seconds),
                    format!("{:.1}x", r.speedup),
                    format!("{:.1}", r.mc_filtered_seconds),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("a6_analytic", &rows);

    // The paper's operating point.
    let op = rows
        .iter()
        .find(|r| (r.base_rate - 0.011).abs() < 1e-9 && (r.precision - 0.49).abs() < 1e-9)
        .unwrap();
    println!(
        "\nat the paper's operating point (1.1% base, P=0.49, R=0.69): {:.0}x cheaper per fruitful test",
        op.speedup
    );
    assert!(op.speedup > 10.0, "filter economics shape broken");
    println!("shape check: >10x analytic speedup at the paper operating point ✓");
}
