//! Figure 5a — cumulative Data-race-coverage on kernel 5.12.
//!
//! Runs PCT and the MLPCT strategy variants over the same stream of CTIs
//! (each with a 50-execution budget) and prints unique potential data races
//! against simulated testing hours.
//!
//! Paper shape: MLPCT strategies (S1 best) reach any given race-coverage
//! level in substantially fewer hours than PCT; S2 is overly conservative
//! (exhausts its inference cap before spending the execution budget).
//!
//! Usage: `fig5a_campaign [--scale smoke|default|full]`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use snowcat_bench::{cached_pic, print_table, save_json, std_pipeline, Scale, FAMILY_SEED};
use snowcat_cfg::KernelCfg;
use snowcat_core::{
    run_campaign_budgeted, CampaignResult, CostModel, ExploreConfig, Explorer, Pic, S1NewBitmap,
    S2NewBlocks, S3LimitedTrials, SelectionStrategy,
};
use snowcat_corpus::interacting_cti_pairs;
use snowcat_kernel::KernelVersion;

#[derive(Serialize)]
struct Series {
    label: String,
    hours: Vec<f64>,
    races: Vec<usize>,
    sched_dep_blocks: Vec<usize>,
    final_executions: u64,
    final_inferences: u64,
}

fn to_series(r: &CampaignResult) -> Series {
    Series {
        label: r.label.clone(),
        hours: r.history.iter().map(|h| h.hours).collect(),
        races: r.history.iter().map(|h| h.races).collect(),
        sched_dep_blocks: r.history.iter().map(|h| h.sched_dep_blocks).collect(),
        final_executions: r.last().executions,
        final_inferences: r.last().inferences,
    }
}

fn main() {
    let scale = Scale::from_args();
    let pcfg = std_pipeline(scale);
    let kernel = KernelVersion::V5_12.spec(FAMILY_SEED).build();
    let cfg = KernelCfg::build(&kernel);

    println!("training (or loading) PIC-5 ...");
    let (corpus, checkpoint) = cached_pic(&kernel, &cfg, &pcfg, "PIC-5");
    let corpus = &corpus;

    // A long shared CTI stream with a common simulated-time budget: the
    // cheap explorer simply gets through more of the stream, exactly the
    // paper's time-axis comparison.
    let stream_len = scale.pick(30, 800, 2000);
    let time_budget = scale.pick(0.02, 3.0, 8.0);
    let mut rng = ChaCha8Rng::seed_from_u64(FAMILY_SEED ^ 0xF16A);
    let stream = interacting_cti_pairs(&mut rng, corpus, stream_len);
    let explore = ExploreConfig::default()
        .with_exec_budget(scale.pick(10, 50, 50))
        .with_inference_cap(scale.pick(80, 800, 1600))
        .with_seed(FAMILY_SEED ^ 0xACE5);
    let cost = CostModel::default();

    println!("running PCT campaign ({time_budget} sim h over up to {stream_len} CTIs) ...");
    let pct = run_campaign_budgeted(
        &kernel,
        corpus,
        &stream,
        Explorer::Pct,
        &explore,
        &cost,
        Some(time_budget),
    );

    let mut results = vec![pct];
    for name in ["S1", "S2", "S3"] {
        println!("running MLPCT-{name} campaign ...");
        let pic = Pic::new(&checkpoint, &kernel, &cfg);
        let strategy: Box<dyn SelectionStrategy> = match name {
            "S1" => Box::new(S1NewBitmap::new()),
            "S2" => Box::new(S2NewBlocks::new()),
            _ => Box::new(S3LimitedTrials::new(3)),
        };
        let res = run_campaign_budgeted(
            &kernel,
            corpus,
            &stream,
            Explorer::mlpct(&pic, strategy),
            &explore,
            &cost,
            Some(time_budget),
        );
        results.push(res);
    }

    // Summary table.
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let last = r.last();
            vec![
                r.label.clone(),
                last.ctis.to_string(),
                last.races.to_string(),
                last.harmful_races.to_string(),
                last.sched_dep_blocks.to_string(),
                last.executions.to_string(),
                last.inferences.to_string(),
                format!("{:.2}", last.hours),
            ]
        })
        .collect();
    print_table(
        "Fig 5a: cumulative campaign on kernel 5.12 (equal simulated-time budget)",
        &[
            "Explorer",
            "CTIs",
            "races",
            "harmful",
            "sched-dep blocks",
            "execs",
            "infers",
            "sim hours",
        ],
        &rows,
    );

    // Hours-to-target comparison (the "SKI took 304h to reach 3,500 races,
    // S1 took 155h" sentence).
    let pct_final = results[0].last().races;
    let target = (pct_final * 9 / 10).max(1);
    let mut cmp_rows = Vec::new();
    for r in &results {
        let h = r.hours_to_races(target);
        cmp_rows.push(vec![
            r.label.clone(),
            target.to_string(),
            h.map(|x| format!("{x:.2}")).unwrap_or_else(|| "not reached".into()),
        ]);
    }
    print_table(
        "Simulated hours to reach 90% of PCT's final race coverage",
        &["Explorer", "target races", "hours"],
        &cmp_rows,
    );

    let series: Vec<Series> = results.iter().map(to_series).collect();
    save_json("fig5a_campaign", &series);

    // Shape check: the best MLPCT variant reaches the target faster than PCT.
    let pct_hours = results[0].hours_to_races(target);
    let best_ml =
        results[1..].iter().filter_map(|r| r.hours_to_races(target)).fold(f64::INFINITY, f64::min);
    match pct_hours {
        Some(ph) if best_ml < ph => {
            println!(
                "\nshape check: best MLPCT reaches the target {:.1}x faster than PCT ✓",
                ph / best_ml
            )
        }
        _ => eprintln!("\nWARNING: MLPCT did not beat PCT to the race target; shape broken"),
    }
}
