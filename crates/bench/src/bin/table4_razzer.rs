//! Table 4 — reproducing known data races with Razzer variants (§5.6.1).
//!
//! For six "known" planted races in kernel 5.12, lets Razzer (strict),
//! Razzer-Relax and Razzer-PIC propose candidate CTIs, verifies each
//! candidate with random schedules, and estimates average / worst
//! reproduction latency by shuffling the execution queue 1,000 times.
//!
//! Paper shape: strict Razzer fails on most races (racing instruction in a
//! URB); Relax reproduces everything but with a huge candidate queue and
//! hours-to-days latency; PIC filters the queue down and cuts latency ~15×
//! on average.
//!
//! Usage: `table4_razzer [--scale smoke|default|full]`

use serde::Serialize;
use snowcat_bench::{cached_pic, print_table, save_json, std_pipeline, Scale, FAMILY_SEED};
use snowcat_cfg::KernelCfg;
use snowcat_core::{find_candidates, reproduce, CostModel, Pic, PredictorService, RazzerMode};
use snowcat_corpus::StiFuzzer;
use snowcat_kernel::KernelVersion;

#[derive(Serialize)]
struct RaceRow {
    race: String,
    bug_summary: String,
    mode: String,
    candidates: usize,
    true_positives: usize,
    avg_hours: Option<f64>,
    worst_hours: Option<f64>,
}

fn main() {
    let scale = Scale::from_args();
    let pcfg = std_pipeline(scale);
    let kernel = KernelVersion::V5_12.spec(FAMILY_SEED).build();
    let cfg = KernelCfg::build(&kernel);
    let cost = CostModel::default();

    println!("training (or loading) PIC-5 ...");
    let (_corpus5, checkpoint) = cached_pic(&kernel, &cfg, &pcfg, "PIC-5");

    // A larger corpus than the trainer's, as Razzer runs after heavy fuzzing.
    let mut fz = StiFuzzer::new(&kernel, FAMILY_SEED ^ 0x4a22);
    fz.seed_each_syscall();
    fz.fuzz(scale.pick(30, 150, 400));
    fz.push_random(scale.pick(10, 60, 150));
    let corpus = fz.into_corpus();

    // Six "known" harmful races: prefer the hard/medium planted bugs.
    // "Known races" preferring those whose racing instruction hides in a
    // URB (multi-order and order-violation patterns) — the population the
    // paper's Table 4 studies, where strict Razzer fails.
    let kind_rank = |k: snowcat_kernel::BugKind| match k {
        snowcat_kernel::BugKind::MultiOrder => 0,
        snowcat_kernel::BugKind::OrderViolation => 1,
        snowcat_kernel::BugKind::AtomicityViolation => 2,
        snowcat_kernel::BugKind::DataRace => 3,
    };
    let mut bugs: Vec<&snowcat_kernel::BugSpec> =
        kernel.bugs.iter().filter(|b| b.harmful).collect();
    bugs.sort_by_key(|b| (kind_rank(b.kind), std::cmp::Reverse(b.difficulty)));
    bugs.truncate(6);
    println!(
        "target races: {}",
        bugs.iter().map(|b| b.summary.as_str()).collect::<Vec<_>>().join("; ")
    );

    let schedules = scale.pick(40, 300, 1000);
    let mut rows: Vec<RaceRow> = Vec::new();
    for (ri, bug) in bugs.iter().enumerate() {
        let race_id = char::from(b'A' + ri as u8).to_string();
        for mode in [RazzerMode::Strict, RazzerMode::Relax, RazzerMode::Pic] {
            let pic;
            let service;
            let svc_ref = if mode == RazzerMode::Pic {
                pic = Pic::new(&checkpoint, &kernel, &cfg);
                service = PredictorService::direct(&pic);
                Some(&service)
            } else {
                None
            };
            let candidates = find_candidates(
                &kernel,
                &cfg,
                &corpus,
                bug,
                mode,
                svc_ref,
                FAMILY_SEED ^ ri as u64,
            );
            let res = reproduce(
                &kernel,
                &corpus,
                &candidates,
                bug,
                mode,
                schedules,
                cost.exec_seconds,
                FAMILY_SEED ^ 0xDEAD ^ ri as u64,
            );
            println!(
                "  race {race_id} {:<13} candidates={:<4} TPs={:<3} avg={:?}",
                res.mode, res.candidates, res.true_positives, res.avg_hours
            );
            rows.push(RaceRow {
                race: race_id.clone(),
                bug_summary: bug.summary.clone(),
                mode: res.mode.clone(),
                candidates: res.candidates,
                true_positives: res.true_positives,
                avg_hours: res.avg_hours,
                worst_hours: res.worst_hours,
            });
        }
    }

    let fmt_h = |h: &Option<f64>| h.map(|x| format!("{x:.1}")).unwrap_or_else(|| "Na".into());
    print_table(
        "Table 4: data-race reproduction (candidates, TPs, sim hours avg/worst)",
        &["Race", "Mode", "# CTIs", "# TP CTIs", "avg h", "worst h"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.race.clone(),
                    r.mode.clone(),
                    r.candidates.to_string(),
                    r.true_positives.to_string(),
                    fmt_h(&r.avg_hours),
                    fmt_h(&r.worst_hours),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("table4_razzer", &rows);

    // Shape summary.
    let strict_missed = rows.iter().filter(|r| r.mode == "Razzer" && r.true_positives == 0).count();
    let relax_found =
        rows.iter().filter(|r| r.mode == "Razzer-Relax" && r.true_positives > 0).count();
    let pic_found = rows.iter().filter(|r| r.mode == "Razzer-PIC" && r.true_positives > 0).count();
    let speedups: Vec<f64> = (0..bugs.len())
        .filter_map(|ri| {
            let get = |mode: &str| {
                rows.iter()
                    .find(|r| r.race == char::from(b'A' + ri as u8).to_string() && r.mode == mode)
                    .and_then(|r| r.avg_hours)
            };
            match (get("Razzer-Relax"), get("Razzer-PIC")) {
                (Some(relax), Some(pic)) if pic > 0.0 => Some(relax / pic),
                _ => None,
            }
        })
        .collect();
    let avg_speedup = if speedups.is_empty() {
        0.0
    } else {
        speedups.iter().sum::<f64>() / speedups.len() as f64
    };
    println!(
        "\nshape: strict Razzer failed on {strict_missed}/{} races; Relax reproduced {relax_found}; \
         PIC reproduced {pic_found}; avg Relax→PIC speedup {:.1}x",
        bugs.len(),
        avg_speedup
    );
}
