//! §5.3.1 — per-CTI coverage improvement, and §A.4 — budget sweep.
//!
//! For each CTI drawn from a stream, explore interleavings with (a) plain
//! PCT and (b) MLPCT under strategies S1/S2/S3, all with the same execution
//! budget (50 dynamic executions, inference cap 1,600), and report the
//! average per-CTI unique-race count and schedule-dependent block coverage.
//!
//! Paper shape: most MLPCT strategies beat PCT by ~10–20% more races and
//! ~6.5–25.8% more schedule-dependent blocks at budget 50; the advantage
//! shrinks as the budget grows toward 200 (saturation, §A.4).
//!
//! Reproduction note: our synthetic kernel's interleaving space is orders of
//! magnitude smaller than Linux's (hundreds of yield positions instead of
//! tens of thousands), so 50 random schedules already sit *past* the
//! saturation point §A.4 describes. In that regime MLPCT's benefit shows up
//! as cost, not absolute per-CTI coverage: it recovers most of PCT's races
//! with ~10x fewer dynamic executions (see the races/exec and sim-time
//! columns), which is exactly what drives the paper's time-based Figure 5
//! results. The §A.4 budget sweep below still shows the advantage gap
//! monotonically shrinking with budget.
//!
//! Usage: `exp_per_cti [--scale smoke|default|full]`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use snowcat_bench::{cached_pic, print_table, save_json, std_pipeline, Scale, FAMILY_SEED};
use snowcat_cfg::KernelCfg;
use snowcat_core::{
    explore_mlpct, explore_pct, ExploreConfig, Pic, PredictorService, S1NewBitmap, S2NewBlocks,
    S3LimitedTrials, SelectionStrategy,
};
use snowcat_corpus::interacting_cti_pairs;
use snowcat_kernel::KernelVersion;

#[derive(Serialize, Clone)]
struct Row {
    explorer: String,
    budget: usize,
    avg_races: f64,
    avg_sched_dep_blocks: f64,
    avg_executions: f64,
    avg_inferences: f64,
    races_vs_pct: f64,
    blocks_vs_pct: f64,
}

fn main() {
    let scale = Scale::from_args();
    let pcfg = std_pipeline(scale);
    let kernel = KernelVersion::V5_12.spec(FAMILY_SEED).build();
    let cfg = KernelCfg::build(&kernel);

    println!("training (or loading) PIC-5 ...");
    let (corpus, checkpoint) = cached_pic(&kernel, &cfg, &pcfg, "PIC-5");
    let corpus = &corpus;

    let n_ctis = scale.pick(6, 60, 200);
    let budgets: Vec<usize> = scale.pick(vec![10], vec![50, 100, 200], vec![50, 100, 150, 200]);
    let mut rng = ChaCha8Rng::seed_from_u64(FAMILY_SEED ^ 0x9C71);
    // Interaction-biased CTIs among the longer-trace STIs: the realistic
    // stream for schedule exploration (see `interacting_cti_pairs` docs);
    // longer traces carry a larger interleaving space.
    let mut by_len: Vec<usize> = (0..corpus.len()).collect();
    by_len.sort_by_key(|&i| std::cmp::Reverse(corpus[i].seq.steps));
    let long_half: Vec<snowcat_corpus::StiProfile> =
        by_len[..corpus.len() / 2].iter().map(|&i| corpus[i].clone()).collect();
    let ctis_local = interacting_cti_pairs(&mut rng, &long_half, n_ctis);
    let corpus = &long_half;
    let ctis = ctis_local;

    let mut all_rows: Vec<Row> = Vec::new();
    for &budget in &budgets {
        // The paper caps PIC inferences at 1,600 regardless of budget.
        let explore = ExploreConfig::default()
            .with_exec_budget(budget)
            .with_inference_cap(1600)
            .with_seed(FAMILY_SEED ^ budget as u64);
        // PCT baseline.
        let mut pct_races = 0usize;
        let mut pct_blocks = 0usize;
        let mut pct_execs = 0u64;
        for (ci, &(ia, ib)) in ctis.iter().enumerate() {
            let c = explore.with_seed(explore.seed ^ (ci as u64) << 3);
            let out = explore_pct(&kernel, &corpus[ia], &corpus[ib], &c);
            pct_races += out.race_keys().len();
            pct_blocks += out.sched_dep_blocks.count();
            pct_execs += out.executions;
        }
        let pct_row = Row {
            explorer: "PCT".into(),
            budget,
            avg_races: pct_races as f64 / n_ctis as f64,
            avg_sched_dep_blocks: pct_blocks as f64 / n_ctis as f64,
            avg_executions: pct_execs as f64 / n_ctis as f64,
            avg_inferences: 0.0,
            races_vs_pct: 0.0,
            blocks_vs_pct: 0.0,
        };

        // MLPCT strategies (fresh strategy state per run, as each §5.3.1
        // trial treats one CTI independently).
        let mut rows = vec![pct_row.clone()];
        for strat_name in ["S1", "S2", "S3"] {
            let mut races = 0usize;
            let mut blocks = 0usize;
            let mut execs = 0u64;
            let mut infers = 0u64;
            let pic = Pic::new(&checkpoint, &kernel, &cfg);
            let service = PredictorService::direct(&pic);
            for (ci, &(ia, ib)) in ctis.iter().enumerate() {
                let mut strat: Box<dyn SelectionStrategy> = match strat_name {
                    "S1" => Box::new(S1NewBitmap::new()),
                    "S2" => Box::new(S2NewBlocks::new()),
                    _ => Box::new(S3LimitedTrials::new(3)),
                };
                let c = explore.with_seed(explore.seed ^ (ci as u64) << 3);
                let out =
                    explore_mlpct(&kernel, &service, strat.as_mut(), &corpus[ia], &corpus[ib], &c);
                races += out.race_keys().len();
                blocks += out.sched_dep_blocks.count();
                execs += out.executions;
                infers += out.inferences;
            }
            rows.push(Row {
                explorer: format!("MLPCT-{strat_name}"),
                budget,
                avg_races: races as f64 / n_ctis as f64,
                avg_sched_dep_blocks: blocks as f64 / n_ctis as f64,
                avg_executions: execs as f64 / n_ctis as f64,
                avg_inferences: infers as f64 / n_ctis as f64,
                races_vs_pct: races as f64 / pct_races.max(1) as f64 - 1.0,
                blocks_vs_pct: blocks as f64 / pct_blocks.max(1) as f64 - 1.0,
            });
        }

        print_table(
            &format!("Per-CTI coverage, budget {budget} executions (avg over {n_ctis} CTIs)"),
            &[
                "Explorer",
                "races",
                "sched-dep blocks",
                "execs",
                "infers",
                "races vs PCT",
                "races/exec",
                "sim s/CTI",
            ],
            &rows
                .iter()
                .map(|r| {
                    let sim_s = r.avg_executions * 2.8 + r.avg_inferences * 0.015;
                    vec![
                        r.explorer.clone(),
                        format!("{:.2}", r.avg_races),
                        format!("{:.1}", r.avg_sched_dep_blocks),
                        format!("{:.1}", r.avg_executions),
                        format!("{:.0}", r.avg_inferences),
                        format!("{:+.1}%", r.races_vs_pct * 100.0),
                        format!("{:.2}", r.avg_races / r.avg_executions.max(1e-9)),
                        format!("{sim_s:.0}"),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        all_rows.extend(rows);
    }

    save_json("exp_per_cti", &all_rows);

    // §A.4 shape: the MLPCT race advantage at the smallest budget should
    // exceed the advantage at the largest (saturation).
    if budgets.len() >= 2 {
        let adv = |budget: usize| {
            all_rows
                .iter()
                .filter(|r| r.budget == budget && r.explorer != "PCT")
                .map(|r| r.races_vs_pct)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let small = adv(budgets[0]);
        let large = adv(*budgets.last().unwrap());
        println!(
            "\nA.4 saturation check: best MLPCT race advantage at budget {} = {:+.1}%, at {} = {:+.1}%",
            budgets[0],
            small * 100.0,
            budgets.last().unwrap(),
            large * 100.0
        );
    }
}
