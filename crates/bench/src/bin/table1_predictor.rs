//! Table 1 — URB predictor performance.
//!
//! Trains PIC-5 on synthetic-kernel "5.12" data, tunes its threshold on
//! validation URBs (max mean F2), then evaluates on the held-out evaluation
//! split against the paper's three naive baselines: All-pos, Fair coin, and
//! Biased coin (positive at the training URB base rate).
//!
//! Paper shape to reproduce: PIC beats every baseline by double-digit
//! margins on F1/precision/recall/balanced accuracy; plain accuracy is
//! dominated by the skewed labels (~99% of URBs uncovered).
//!
//! Also prints the §5.1.1 dataset-composition statistics (`--stats`).
//!
//! Usage: `table1_predictor [--scale smoke|default|full]`

use serde::Serialize;
use snowcat_bench::{pct, print_table, save_json, std_pipeline, Scale, FAMILY_SEED};
use snowcat_cfg::KernelCfg;
use snowcat_core::{as_labeled, train_pic, BaselineService, CoveragePredictor};
use snowcat_kernel::KernelVersion;
use snowcat_nn::{evaluate, evaluate_pooled, evaluate_predictions_pooled, MeanMetrics};

#[derive(Serialize)]
struct Table1Row {
    predictor: String,
    f1: f64,
    precision: f64,
    recall: f64,
    accuracy: f64,
    balanced_accuracy: f64,
}

fn row(name: &str, m: &MeanMetrics) -> Table1Row {
    Table1Row {
        predictor: name.to_string(),
        f1: m.f1,
        precision: m.precision,
        recall: m.recall,
        accuracy: m.accuracy,
        balanced_accuracy: m.balanced_accuracy,
    }
}

fn main() {
    let scale = Scale::from_args();
    let pcfg = std_pipeline(scale);
    println!("building synthetic kernel 5.12 (family seed {FAMILY_SEED:#x}) ...");
    let kernel = KernelVersion::V5_12.spec(FAMILY_SEED).build();
    let cfg = KernelCfg::build(&kernel);
    println!(
        "kernel: {} blocks, {} funcs, {} syscalls, {} planted bugs",
        kernel.num_blocks(),
        kernel.funcs.len(),
        kernel.syscalls.len(),
        kernel.bugs.len()
    );

    println!("running pipeline (fuzz -> datasets -> pre-train -> train -> tune) ...");
    let out = train_pic(&kernel, &cfg, &pcfg, "PIC-5");
    let s = &out.summary;
    println!(
        "corpus={} examples(train/valid/eval)=({},{},{}) URB base rate={} val URB AP={:.4} \
         pretrain acc={:.3} threshold={:.2} train time={:.1}s",
        s.corpus_size,
        s.examples.0,
        s.examples.1,
        s.examples.2,
        pct(s.urb_base_rate),
        s.val_urb_ap,
        s.pretrain_accuracy,
        s.threshold,
        s.train_seconds
    );

    // §5.1.1 dataset composition.
    let st = &s.train_stats;
    let n = s.examples.0.max(1);
    print_table(
        "Dataset composition (per-graph averages, train split; paper §5.1.1)",
        &[
            "verts", "URBs", "SCBs", "edges", "scb-flow", "urb-flow", "intra", "inter", "sched",
            "shortcut",
        ],
        &[vec![
            format!("{:.1}", st.verts as f64 / n as f64),
            format!("{:.1}", st.urbs as f64 / n as f64),
            format!("{:.1}", st.scbs as f64 / n as f64),
            format!("{:.1}", st.edges as f64 / n as f64),
            format!("{:.1}", st.by_edge_kind[0] as f64 / n as f64),
            format!("{:.1}", st.by_edge_kind[1] as f64 / n as f64),
            format!("{:.1}", st.by_edge_kind[2] as f64 / n as f64),
            format!("{:.1}", st.by_edge_kind[3] as f64 / n as f64),
            format!("{:.1}", st.by_edge_kind[4] as f64 / n as f64),
            format!("{:.1}", st.by_edge_kind[5] as f64 / n as f64),
        ]],
    );

    // Table 1 proper: URB metrics on the evaluation split, *pooled* over
    // all URBs. (The paper reports per-graph averages, but its graphs have
    // ~2.4K URBs each; ours have ~14, and most have zero positives, so the
    // pooled metrics are the faithful analogue. The per-graph macro table
    // is printed below for completeness.)
    let eval_refs = as_labeled(&out.eval_set);
    let model = out.checkpoint.restore();
    let thr = out.checkpoint.threshold;
    let conf_row = |name: &str, c: &snowcat_nn::Confusion| Table1Row {
        predictor: name.to_string(),
        f1: c.f1(),
        precision: c.precision(),
        recall: c.recall(),
        accuracy: c.accuracy(),
        balanced_accuracy: c.balanced_accuracy(),
    };
    let pic_c = evaluate_pooled(&model, &eval_refs, thr, true);

    // The paper's three naive baselines, served through the same
    // `CoveragePredictor` trait the campaigns use (Table 1 is exactly the
    // service's baseline tier).
    let all_pos = BaselineService::all_pos();
    let all_pos_c =
        evaluate_predictions_pooled(&eval_refs, true, |g| all_pos.predict_one(g).positive);
    let fair = BaselineService::fair_coin(FAMILY_SEED ^ 0x7AB1);
    let fair_c = evaluate_predictions_pooled(&eval_refs, true, |g| fair.predict_one(g).positive);
    let base_rate = out.train_set.urb_positive_rate();
    let biased = BaselineService::biased_coin(base_rate, FAMILY_SEED ^ 0x7AB1);
    let biased_c =
        evaluate_predictions_pooled(&eval_refs, true, |g| biased.predict_one(g).positive);

    let rows = vec![
        conf_row("PIC-5", &pic_c),
        conf_row("All pos", &all_pos_c),
        conf_row("Fair coin", &fair_c),
        conf_row(&format!("Biased coin ({})", pct(base_rate)), &biased_c),
    ];
    let render = |r: &Table1Row| {
        vec![
            r.predictor.clone(),
            pct(r.f1),
            pct(r.precision),
            pct(r.recall),
            pct(r.accuracy),
            pct(r.balanced_accuracy),
        ]
    };
    print_table(
        "Table 1: URB predictor performance (pooled over evaluation URBs)",
        &["Predictor", "F1", "Precision", "Recall", "Accuracy", "BA"],
        &rows.iter().map(render).collect::<Vec<_>>(),
    );

    // Operating curve: pooled precision/recall across thresholds (shows the
    // trade-off the F2 tuning navigates).
    let curve: Vec<Vec<String>> = (1..10)
        .map(|i| {
            let t = i as f32 * 0.1;
            let c = evaluate_pooled(&model, &eval_refs, t, true);
            vec![
                format!("{t:.1}"),
                pct(c.precision()),
                pct(c.recall()),
                format!("{:.4}", c.f1()),
                format!("{:.4}", c.f2()),
            ]
        })
        .collect();
    print_table(
        "PIC-5 operating curve on evaluation URBs",
        &["threshold", "precision", "recall", "F1", "F2"],
        &curve,
    );

    // Per-graph macro averages (the paper's literal reporting convention).
    let pic_macro = evaluate(&model, &eval_refs, thr, true);
    let macro_rows = [row("PIC-5 (macro)", &pic_macro)];
    print_table(
        "Per-graph macro averages (degenerate at small graph size; see note)",
        &["Predictor", "F1", "Precision", "Recall", "Accuracy", "BA"],
        &macro_rows.iter().map(render).collect::<Vec<_>>(),
    );

    // §A.3 analogue: pooled metrics over the full vertex set.
    let pic_all = evaluate_pooled(&model, &eval_refs, thr, false);
    print_table(
        "All-blocks predictor performance (paper §A.3, pooled)",
        &["Predictor", "F1", "Precision", "Recall", "Accuracy", "BA"],
        &[render(&conf_row("PIC-5", &pic_all))],
    );

    save_json("table1_predictor", &rows);

    // Shape assertions (soft): warn loudly if the reproduction shape broke.
    let pic_m = &rows[0];
    if pic_m.f1 <= rows[1].f1 || pic_m.f1 <= rows[2].f1 || pic_m.balanced_accuracy <= 0.55 {
        eprintln!("WARNING: PIC did not clearly beat the baselines; shape broken");
        std::process::exit(2);
    }
    println!("\nshape check: PIC-5 beats All-pos/Fair/Biased on F1 and BA ✓");
}
