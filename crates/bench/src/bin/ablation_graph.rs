//! Ablation study over the CT-graph ingredients (DESIGN.md design-choice
//! justification; echoes the paper's §6 discussion of graph enhancements).
//!
//! Trains the same PIC architecture on datasets whose graphs have one
//! ingredient removed, and reports validation URB average precision:
//!
//! * `full`            — all edge types + schedule marks (the default),
//! * `no-shortcut`     — shortcut densification edges dropped,
//! * `no-interflow`    — inter-thread potential-data-flow edges dropped,
//! * `no-schedule`     — scheduling-hint edges dropped (and marks cleared),
//! * `no-sched-marks`  — schedule edges kept but endpoint marks cleared,
//! * `no-asm`          — assembly token embeddings zeroed (type-only input).
//!
//! Expected shape: the full graph wins; removing schedule information hurts
//! most on schedule-*sensitive* prediction, removing inter-flow edges hurts
//! URB reasoning, shortcuts matter for propagating positional context.
//!
//! Usage: `ablation_graph [--scale smoke|default|full]`

use serde::Serialize;
use snowcat_bench::{print_table, save_json, std_pipeline, Scale, FAMILY_SEED};
use snowcat_cfg::KernelCfg;
use snowcat_core::{as_labeled, collect_data, train_on, CollectedData};
use snowcat_graph::{CtGraph, EdgeKind, SchedMark};
use snowcat_kernel::KernelVersion;
use snowcat_nn::evaluate_pooled;

#[derive(Serialize)]
struct AblationRow {
    variant: String,
    val_urb_ap: f64,
    eval_urb_f1: f64,
    eval_urb_precision: f64,
    eval_urb_recall: f64,
}

fn strip(g: &CtGraph, kind: Option<EdgeKind>, clear_marks: bool, clear_tokens: bool) -> CtGraph {
    let mut g = g.clone();
    if let Some(k) = kind {
        g.edges.retain(|e| e.kind != k);
    }
    if clear_marks {
        for v in &mut g.verts {
            v.sched_mark = SchedMark::None;
        }
    }
    if clear_tokens {
        for v in &mut g.verts {
            v.tokens.clear();
        }
    }
    g
}

fn ablate(
    data: &CollectedData,
    kind: Option<EdgeKind>,
    marks: bool,
    tokens: bool,
) -> CollectedData {
    let map = |ds: &snowcat_corpus::Dataset| {
        let mut ds = ds.clone();
        for e in &mut ds.examples {
            let stripped = strip(&e.graph, kind, marks, tokens);
            // Edge-aligned labels must follow the surviving edges.
            let keep: Vec<bool> = e
                .graph
                .edges
                .iter()
                .map(|edge| kind.map(|k| edge.kind != k).unwrap_or(true))
                .collect();
            e.flow_labels =
                e.flow_labels.iter().zip(&keep).filter(|(_, &k)| k).map(|(&f, _)| f).collect();
            e.graph = stripped;
        }
        ds
    };
    CollectedData {
        corpus: Vec::new(), // not needed for training
        train_set: map(&data.train_set),
        valid_set: map(&data.valid_set),
        eval_set: map(&data.eval_set),
    }
}

fn main() {
    let scale = Scale::from_args();
    let mut pcfg = std_pipeline(scale);
    // Ablations retrain several times; trim epochs a little.
    pcfg.train.epochs = pcfg.train.epochs.min(6);
    let kernel = KernelVersion::V5_12.spec(FAMILY_SEED).build();
    let cfg = KernelCfg::build(&kernel);
    println!("collecting shared dataset ...");
    let data = collect_data(&kernel, &cfg, &pcfg);

    let variants: Vec<(&str, CollectedData)> = vec![
        ("full", ablate(&data, None, false, false)),
        ("no-shortcut", ablate(&data, Some(EdgeKind::Shortcut), false, false)),
        ("no-interflow", ablate(&data, Some(EdgeKind::InterFlow), false, false)),
        ("no-schedule", ablate(&data, Some(EdgeKind::Schedule), true, false)),
        ("no-sched-marks", ablate(&data, None, true, false)),
        ("no-asm", ablate(&data, None, false, true)),
    ];

    let mut rows: Vec<AblationRow> = Vec::new();
    for (name, d) in &variants {
        println!("training variant {name} ...");
        let (ck, summary) = train_on(
            &kernel,
            d,
            pcfg.model,
            pcfg.train,
            FAMILY_SEED ^ 0xAB1A,
            &format!("ablate-{name}"),
        );
        let model = ck.restore();
        let eval_refs = as_labeled(&d.eval_set);
        let c = evaluate_pooled(&model, &eval_refs, ck.threshold, true);
        println!(
            "  {name}: val URB AP {:.4}, eval P/R {:.3}/{:.3}",
            summary.val_urb_ap,
            c.precision(),
            c.recall()
        );
        rows.push(AblationRow {
            variant: name.to_string(),
            val_urb_ap: summary.val_urb_ap,
            eval_urb_f1: c.f1(),
            eval_urb_precision: c.precision(),
            eval_urb_recall: c.recall(),
        });
    }

    print_table(
        "CT-graph ingredient ablation (validation URB AP / pooled eval metrics)",
        &["Variant", "val URB AP", "eval F1", "eval P", "eval R"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    format!("{:.4}", r.val_urb_ap),
                    format!("{:.4}", r.eval_urb_f1),
                    format!("{:.3}", r.eval_urb_precision),
                    format!("{:.3}", r.eval_urb_recall),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_json("ablation_graph", &rows);

    let full_ap = rows[0].val_urb_ap;
    let best_ablated = rows[1..].iter().map(|r| r.val_urb_ap).fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nfull graph AP {:.4} vs best ablated {:.4} — {}",
        full_ap,
        best_ablated,
        if full_ap >= best_ablated {
            "full graph wins ✓"
        } else {
            "an ablation won (investigate)"
        }
    );
}
