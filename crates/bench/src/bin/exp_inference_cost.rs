//! §5.2.2 — inference cost vs dynamic-execution cost.
//!
//! Measures, on this machine: (a) one PIC inference including schedule-edge
//! graph assembly, (b) one dynamic CT execution on the synthetic-kernel VM,
//! and reports the local ratio alongside the paper's production numbers
//! (0.015 s inference vs 2.8 s instrumented-QEMU execution → 190 candidates
//! predicted per execution).
//!
//! The substitution note: our VM executes a synthetic kernel, so a *local*
//! dynamic execution is far cheaper than the paper's QEMU run; campaign time
//! accounting therefore uses the paper's execution cost (see
//! `snowcat_core::CostModel`). This binary documents both sides of that
//! substitution with measurements.
//!
//! Usage: `exp_inference_cost [--scale smoke|default|full]`

use serde::Serialize;
use snowcat_bench::{print_table, save_json, std_pipeline, Scale, FAMILY_SEED};
use snowcat_cfg::KernelCfg;
use snowcat_core::{train_pic, CostModel, Pic, PredictorService};
use snowcat_kernel::KernelVersion;
use snowcat_vm::{propose_hints, run_ct, Cti, VmConfig};
use std::time::Instant;

#[derive(Serialize)]
struct CostReport {
    local_inference_ms: f64,
    local_execution_ms: f64,
    local_predictions_per_execution: f64,
    paper_inference_ms: f64,
    paper_execution_ms: f64,
    paper_predictions_per_execution: f64,
}

fn main() {
    let scale = Scale::from_args();
    let mut pcfg = std_pipeline(scale);
    // A small training run suffices; we only need a deployable model.
    pcfg.n_ctis = pcfg.n_ctis.min(60);
    pcfg.train.epochs = pcfg.train.epochs.min(3);
    let kernel = KernelVersion::V5_12.spec(FAMILY_SEED).build();
    let cfg = KernelCfg::build(&kernel);
    println!("training a small PIC ...");
    let trained = train_pic(&kernel, &cfg, &pcfg, "PIC-5");
    let corpus = &trained.corpus;
    let pic = Pic::new(&trained.checkpoint, &kernel, &cfg);
    let service = PredictorService::direct(&pic);

    let iters = scale.pick(200, 2000, 10000);
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(1);

    // Measure inference (graph assembly + forward pass), base graph reused
    // per CTI exactly as the exploration loop does.
    let a = &corpus[0];
    let b = &corpus[1];
    let base = service.base_graph(a, b);
    let started = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
        let pred = service.predict_candidate(&base, a, b, &hints);
        sink += pred.positive.iter().filter(|&&p| p).count();
    }
    let infer_ms = started.elapsed().as_secs_f64() * 1000.0 / iters as f64;

    // Measure dynamic execution.
    let cti = Cti::new(a.sti.clone(), b.sti.clone());
    let started = Instant::now();
    for _ in 0..iters {
        let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
        let r = run_ct(&kernel, &cti, hints, VmConfig::default());
        sink += r.coverage.count();
    }
    let exec_ms = started.elapsed().as_secs_f64() * 1000.0 / iters as f64;
    std::hint::black_box(sink);

    let paper = CostModel::default();
    let report = CostReport {
        local_inference_ms: infer_ms,
        local_execution_ms: exec_ms,
        local_predictions_per_execution: exec_ms / infer_ms,
        paper_inference_ms: paper.inference_seconds * 1000.0,
        paper_execution_ms: paper.exec_seconds * 1000.0,
        paper_predictions_per_execution: paper.exec_seconds / paper.inference_seconds,
    };
    print_table(
        "Inference vs dynamic execution cost (per operation)",
        &["setting", "inference (ms)", "execution (ms)", "predictions per execution"],
        &[
            vec![
                "this machine (synthetic kernel)".into(),
                format!("{:.3}", report.local_inference_ms),
                format!("{:.3}", report.local_execution_ms),
                format!("{:.1}", report.local_predictions_per_execution),
            ],
            vec![
                "paper (Linux in SKI/QEMU)".into(),
                format!("{:.1}", report.paper_inference_ms),
                format!("{:.1}", report.paper_execution_ms),
                format!("{:.0}", report.paper_predictions_per_execution),
            ],
        ],
    );
    println!(
        "\nnote: our synthetic-kernel execution is not QEMU — campaigns charge the paper's \
         2.8 s/execution and this measured inference cost, preserving the paper's asymmetry."
    );
    save_json("exp_inference_cost", &report);
}
