//! Structured observability for Snowcat campaigns and training runs.
//!
//! This crate is the single schema authority for everything a campaign or a
//! training run can tell the outside world while it is live:
//!
//! * [`schema`] — the versioned, `#[non_exhaustive]` event types
//!   ([`CampaignEvent`], [`TrainEvent`], [`ServeEvent`]) and the
//!   [`EventRecord`] envelope.
//! * [`sink`] — a non-blocking bounded [`EventSink`] that never stalls the
//!   hot loop (overflow increments a drop counter instead of blocking) and a
//!   background [`EventWriter`] thread that drains it into the exporters.
//! * [`jsonl`] — the JSON-lines exporter (one event per line) with a
//!   CRC-framed footer reusing `snowcat_corpus::frame_checksummed`, plus a
//!   validating reader that detects torn tails and corrupt footers.
//! * [`perfetto`] — a Chrome/Perfetto `trace_event` JSON exporter for
//!   timeline visualization.
//! * [`report`] — the unified, versioned [`Report`] that replaces the
//!   divergent ad-hoc `--report` JSON shapes of `snowcat campaign` and
//!   `snowcat train`, with a sniffing loader for the legacy shapes.
//!
//! The crate is a leaf: event payloads use plain integers and strings so
//! that `snowcat-core` and `snowcat-harness` can depend on it without
//! cycles.

pub mod jsonl;
pub mod perfetto;
pub mod report;
pub mod schema;
pub mod sink;

pub use jsonl::{
    read_stream, validate_stream, JsonlWriter, StreamIssue, StreamSummary, EVENTS_FILE,
    EVENTS_MAGIC, EVENTS_STREAM_VERSION, TRACE_FILE,
};
pub use perfetto::{validate_trace, PerfettoBuilder};
pub use report::{
    load_report, AnomalyRecord, CampaignSummary, PredictorCounters, Report, ShardIssue,
    TrainSummary, REPORT_SCHEMA_VERSION,
};
pub use schema::{
    CampaignEvent, Event, EventRecord, FleetEvent, ServeEvent, TrainEvent, EVENT_SCHEMA_VERSION,
};
pub use sink::{EventSink, EventWriter, WriteSummary};
