//! JSON-lines exporter and validating reader.
//!
//! Body: one `EventRecord` as compact JSON per line. Footer: a final line
//! starting with `#SEVT ` followed by the hex encoding of a
//! `frame_checksummed(b"SEVT", 1, payload)` frame (the same CRC framing the
//! corpus checkpoints use), where the payload is four little-endian `u64`s:
//! record count, body byte count, FNV-1a-64 of the body bytes, and the
//! sink's drop count. A torn tail (truncated write, partial last line,
//! missing footer) is therefore always detectable.

use crate::schema::{EventRecord, EVENT_SCHEMA_VERSION};
use snowcat_corpus::{frame_checksummed, unframe_checksummed, DecodeError};
use std::io::{self, Write};

/// File name the writer uses inside an `--events` directory.
pub const EVENTS_FILE: &str = "events.jsonl";
/// File name of the Perfetto/Chrome trace export.
pub const TRACE_FILE: &str = "trace.json";
/// Magic of the CRC-framed footer.
pub const EVENTS_MAGIC: [u8; 4] = *b"SEVT";
/// Version of the stream framing (footer layout), independent of the
/// per-record schema version.
pub const EVENTS_STREAM_VERSION: u16 = 1;

const FOOTER_PREFIX: &str = "#SEVT ";

fn fnv1a64(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    // Strictly lowercase: `from_str_radix` would also accept `A`–`F`, which
    // would let a case-flipped footer decode to the same bytes undetected.
    if !s.len().is_multiple_of(2)
        || !s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    (0..s.len() / 2).map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()).collect()
}

/// Streaming writer: one compact JSON object per line, sealed by
/// [`JsonlWriter::finish`].
pub struct JsonlWriter<W: Write> {
    w: W,
    count: u64,
    body_bytes: u64,
    fnv: u64,
}

impl<W: Write> JsonlWriter<W> {
    pub fn new(w: W) -> Self {
        JsonlWriter { w, count: 0, body_bytes: 0, fnv: FNV_OFFSET }
    }

    /// Append one record as a line, updating the running body hash.
    pub fn write_record(&mut self, rec: &EventRecord) -> io::Result<()> {
        let json = serde_json::to_string(rec)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let line = format!("{json}\n");
        self.w.write_all(line.as_bytes())?;
        self.count += 1;
        self.body_bytes += line.len() as u64;
        self.fnv = fnv1a64(self.fnv, line.as_bytes());
        Ok(())
    }

    /// Write the CRC-framed footer and return the inner writer (unflushed).
    pub fn finish(mut self, dropped: u64) -> io::Result<W> {
        let mut payload = Vec::with_capacity(32);
        payload.extend_from_slice(&self.count.to_le_bytes());
        payload.extend_from_slice(&self.body_bytes.to_le_bytes());
        payload.extend_from_slice(&self.fnv.to_le_bytes());
        payload.extend_from_slice(&dropped.to_le_bytes());
        let frame = frame_checksummed(&EVENTS_MAGIC, EVENTS_STREAM_VERSION, &payload);
        let line = format!("{FOOTER_PREFIX}{}\n", hex_encode(&frame));
        self.w.write_all(line.as_bytes())?;
        Ok(self.w)
    }
}

/// A defect found while reading a stream. The reader is tolerant: it
/// reports issues and returns whatever records it could recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamIssue {
    /// The stream has no footer line — the writer was killed mid-run.
    MissingFooter,
    /// A body line failed to parse (torn tail or mid-file corruption).
    TornLine { line: usize, detail: String },
    /// The footer frame failed its own CRC/framing check.
    FooterCorrupt { detail: String },
    /// Footer record count disagrees with the lines actually present.
    CountMismatch { footer: u64, actual: u64 },
    /// Footer FNV-1a-64 body hash disagrees with the bytes actually present.
    HashMismatch,
    /// Sequence numbers are not strictly increasing.
    SeqNonMonotonic { line: usize },
    /// A record carries an unsupported schema version.
    VersionMismatch { line: usize, v: u16 },
}

impl std::fmt::Display for StreamIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamIssue::MissingFooter => write!(f, "missing footer (stream not sealed)"),
            StreamIssue::TornLine { line, detail } => {
                write!(f, "unparseable record at line {line}: {detail}")
            }
            StreamIssue::FooterCorrupt { detail } => write!(f, "corrupt footer: {detail}"),
            StreamIssue::CountMismatch { footer, actual } => {
                write!(f, "footer claims {footer} records, stream has {actual}")
            }
            StreamIssue::HashMismatch => write!(f, "footer body hash mismatch"),
            StreamIssue::SeqNonMonotonic { line } => {
                write!(f, "sequence number regressed at line {line}")
            }
            StreamIssue::VersionMismatch { line, v } => {
                write!(f, "unsupported schema version {v} at line {line}")
            }
        }
    }
}

/// Result of reading a stream: recovered records plus every defect found.
#[derive(Debug, Clone, Default)]
pub struct StreamSummary {
    pub records: Vec<EventRecord>,
    /// Drop count recorded in the footer (0 when the footer is absent).
    pub dropped: u64,
    pub issues: Vec<StreamIssue>,
}

impl StreamSummary {
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Tolerant reader: parses what it can and records every issue.
pub fn read_stream(text: &str) -> StreamSummary {
    let mut out = StreamSummary::default();
    let mut body_bytes = 0u64;
    let mut body_lines = 0u64;
    let mut fnv = FNV_OFFSET;
    let mut footer: Option<Vec<u8>> = None;
    let mut last_seq: Option<u64> = None;

    for (idx, line) in text.split_inclusive('\n').enumerate() {
        let lineno = idx + 1;
        let trimmed = line.strip_suffix('\n').unwrap_or(line);
        if trimmed.is_empty() {
            continue;
        }
        if let Some(hex) = trimmed.strip_prefix(FOOTER_PREFIX) {
            match hex_decode(hex) {
                Some(bytes) => footer = Some(bytes),
                None => out
                    .issues
                    .push(StreamIssue::FooterCorrupt { detail: "footer is not valid hex".into() }),
            }
            continue;
        }
        if trimmed.starts_with('#') {
            // Unknown comment line: hash it as body so tampering is caught.
            body_bytes += line.len() as u64;
            fnv = fnv1a64(fnv, line.as_bytes());
            continue;
        }
        // A body line that was torn mid-write has no trailing newline; it
        // also (almost always) fails to parse. Hash exactly the bytes seen.
        body_bytes += line.len() as u64;
        body_lines += 1;
        fnv = fnv1a64(fnv, line.as_bytes());
        match serde_json::from_str::<EventRecord>(trimmed) {
            Ok(rec) => {
                if rec.v > EVENT_SCHEMA_VERSION {
                    out.issues.push(StreamIssue::VersionMismatch { line: lineno, v: rec.v });
                }
                if let Some(prev) = last_seq {
                    if rec.seq <= prev {
                        out.issues.push(StreamIssue::SeqNonMonotonic { line: lineno });
                    }
                }
                last_seq = Some(rec.seq);
                if !line.ends_with('\n') {
                    out.issues.push(StreamIssue::TornLine {
                        line: lineno,
                        detail: "last record has no trailing newline".into(),
                    });
                }
                out.records.push(rec);
            }
            Err(e) => {
                out.issues.push(StreamIssue::TornLine { line: lineno, detail: e.to_string() });
            }
        }
    }

    match footer {
        None => out.issues.push(StreamIssue::MissingFooter),
        Some(frame) => {
            match unframe_checksummed(
                &EVENTS_MAGIC,
                EVENTS_STREAM_VERSION,
                EVENTS_STREAM_VERSION,
                bytes::Bytes::from(frame),
            ) {
                Err(e) => out.issues.push(StreamIssue::FooterCorrupt {
                    detail: match e {
                        DecodeError::BadMagic => "bad magic".into(),
                        DecodeError::BadVersion(v) => format!("bad version {v}"),
                        DecodeError::Truncated => "truncated frame".into(),
                        other => format!("{other:?}"),
                    },
                }),
                Ok((_v, payload)) => {
                    if payload.len() != 32 {
                        out.issues.push(StreamIssue::FooterCorrupt {
                            detail: format!("payload is {} bytes, want 32", payload.len()),
                        });
                    } else {
                        let u = |i: usize| {
                            u64::from_le_bytes(payload[8 * i..8 * i + 8].try_into().unwrap())
                        };
                        let (count, bytes_claim, hash, dropped) = (u(0), u(1), u(2), u(3));
                        out.dropped = dropped;
                        if count != body_lines {
                            out.issues.push(StreamIssue::CountMismatch {
                                footer: count,
                                actual: body_lines,
                            });
                        }
                        if bytes_claim != body_bytes || hash != fnv {
                            out.issues.push(StreamIssue::HashMismatch);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Strict reader: any issue is an error (joined into one message).
pub fn validate_stream(text: &str) -> Result<StreamSummary, String> {
    let summary = read_stream(text);
    if summary.is_clean() {
        Ok(summary)
    } else {
        Err(summary.issues.iter().map(|i| i.to_string()).collect::<Vec<_>>().join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{CampaignEvent, Event, EventRecord, EVENT_SCHEMA_VERSION};

    fn sample(seq: u64) -> EventRecord {
        EventRecord {
            v: EVENT_SCHEMA_VERSION,
            seq,
            t_us: 10 * seq,
            event: Event::Campaign(CampaignEvent::StageTiming {
                stage: "explore".into(),
                micros: seq,
            }),
        }
    }

    fn sealed(n: u64, dropped: u64) -> String {
        let mut w = JsonlWriter::new(Vec::new());
        for i in 0..n {
            w.write_record(&sample(i)).unwrap();
        }
        String::from_utf8(w.finish(dropped).unwrap()).unwrap()
    }

    #[test]
    fn sealed_stream_is_clean() {
        let text = sealed(5, 2);
        let s = validate_stream(&text).expect("clean");
        assert_eq!(s.records.len(), 5);
        assert_eq!(s.dropped, 2);
    }

    #[test]
    fn missing_footer_is_reported() {
        let text = sealed(3, 0);
        let torn = text.rsplit_once("#SEVT").unwrap().0.to_string();
        let s = read_stream(&torn);
        assert_eq!(s.records.len(), 3);
        assert!(s.issues.contains(&StreamIssue::MissingFooter));
    }

    #[test]
    fn torn_tail_is_reported() {
        let text = sealed(3, 0);
        // Chop bytes out of the middle of the last body line.
        let cut = text.len() - text.lines().last().unwrap().len() - 30;
        let torn = text[..cut].to_string();
        let s = read_stream(&torn);
        assert!(
            s.issues
                .iter()
                .any(|i| matches!(i, StreamIssue::TornLine { .. } | StreamIssue::MissingFooter)),
            "issues: {:?}",
            s.issues
        );
    }

    #[test]
    fn flipped_body_byte_fails_hash() {
        let text = sealed(4, 0);
        // Corrupt a digit inside the first record without breaking JSON.
        let corrupted = text.replacen("\"t_us\":10", "\"t_us\":19", 1);
        assert_ne!(corrupted, text);
        let s = read_stream(&corrupted);
        assert!(s.issues.contains(&StreamIssue::HashMismatch), "issues: {:?}", s.issues);
    }

    #[test]
    fn seq_regression_is_reported() {
        let mut w = JsonlWriter::new(Vec::new());
        w.write_record(&sample(5)).unwrap();
        w.write_record(&sample(2)).unwrap();
        let text = String::from_utf8(w.finish(0).unwrap()).unwrap();
        let s = read_stream(&text);
        assert!(s.issues.iter().any(|i| matches!(i, StreamIssue::SeqNonMonotonic { .. })));
    }
}
