//! The versioned event schema.
//!
//! Every emitted event travels inside an [`EventRecord`] envelope carrying
//! the schema version, a per-sink monotonic sequence number and a
//! microsecond timestamp relative to the sink's creation. The payload enums
//! are `#[non_exhaustive]`: downstream consumers must tolerate unknown
//! variants, which lets future releases add event kinds without a major
//! version bump.
//!
//! Floats are sanitized at emission time: the JSON exporter writes
//! non-finite floats as `null` (which would not round-trip), so every
//! `f64`-carrying variant maps NaN/±Inf to `0.0` before serialization.

use serde::{Deserialize, Serialize};

/// Version of the event schema; bumped when a variant's meaning or payload
/// changes incompatibly. Adding variants is *not* a version bump.
pub const EVENT_SCHEMA_VERSION: u16 = 1;

/// Events emitted by supervised campaigns and the predictor stack.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignEvent {
    /// Campaign entry: emitted once before the first position is processed.
    Started { label: String, seed: u64, ctis: u64, resumed_from: Option<u64> },
    /// One accepted concurrent-test execution (position advanced).
    ExecutionOutcome {
        position: u64,
        ct_a: u64,
        ct_b: u64,
        attempt: u64,
        executions: u64,
        new_races: u64,
        new_blocks: u64,
        latency_us: u64,
    },
    /// Wall-clock spent in a named campaign stage.
    StageTiming { stage: String, micros: u64 },
    /// Cumulative predictor-chain counters (batches, cache, degradation).
    PredictorBatch {
        batches: u64,
        inferences: u64,
        cache_hits: u64,
        cache_misses: u64,
        cache_evictions: u64,
        degraded_batches: u64,
        fallback_predictions: u64,
    },
    /// A `ResilientPredictor` served a batch from the fallback (or tripped
    /// its breaker and degraded permanently).
    PredictorDegraded { reason: String, permanent: bool },
    /// A checkpoint was persisted (and the previous one rotated to `.prev`).
    CheckpointWritten { path: String, position: u64, ordinal: u64, rotated: bool },
    /// An execution attempt hung (watchdog fired) and will be retried.
    HangDetected { position: u64, attempt: u64, injected: bool },
    /// A CT pair exhausted its retries and was quarantined.
    Quarantined { position: u64, ct_a: u64, ct_b: u64, attempts: u64 },
    /// Cumulative static-prefilter counters from a Razzer-PIC run: candidates
    /// dropped without a prediction (`vetoed`) vs candidates that reached GNN
    /// scoring (`survivors`), plus the may-race pair count of the filter in
    /// use and whether it was the alias-refined set.
    PrefilterStats { vetoed: u64, survivors: u64, may_race_pairs: u64, refined: bool },
    /// A fault-plan entry fired (e.g. `hang@3`, `ckpt@2:flip`, `panic@1`).
    FaultInjected { entry: String, position: u64 },
    /// A parallel campaign worker began running.
    WorkerStarted { slot: u64, label: String },
    /// A parallel campaign worker finished; `fault` names the fault-plan
    /// entry that fired if the worker panicked under injection, and
    /// `elapsed_us` is the worker's wall-clock from spawn to exit (so
    /// fleet lease deadlines can be tuned from observed time-to-failure).
    WorkerFinished { slot: u64, label: String, ok: bool, fault: Option<String>, elapsed_us: u64 },
    /// Campaign exit: final cumulative counts.
    Finished {
        label: String,
        executions: u64,
        inferences: u64,
        races: u64,
        harmful_races: u64,
        blocks: u64,
        bugs: u64,
        quarantined: u64,
        sim_hours: f64,
    },
}

/// Events emitted by the robust trainer.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrainEvent {
    /// Training entry: emitted once before the first (resumed) epoch.
    Started { epochs: u64, examples: u64, resumed_epoch: Option<u64> },
    /// A dataset shard failed validation and was quarantined at load time.
    ShardQuarantined { path: String, reason: String },
    /// An epoch's accepted attempt completed.
    EpochCompleted { epoch: u64, attempt: u64, loss: f64, val_ap: Option<f64> },
    /// The anomaly guard rejected an attempt.
    AnomalyDetected { epoch: u64, attempt: u64, kind: String, detail: String },
    /// Model/optimizer/RNG state was rolled back for a retry.
    RolledBack { epoch: u64, attempt: u64 },
    /// A training checkpoint was persisted.
    CheckpointWritten { path: String, epoch: u64, complete: bool },
    /// Training exit (also emitted on divergence with `diverged: true`).
    Finished {
        epochs: u64,
        best_epoch: Option<u64>,
        best_val_ap: Option<f64>,
        early_stopped: bool,
        diverged: bool,
    },
}

/// Events emitted by the inference server (`snowcat-serve`): micro-batch
/// serving, online refresh, and atomic hot model swap.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeEvent {
    /// Server came up with its batching policy.
    Started { model: String, max_batch: u64, max_wait_us: u64, queue_cap: u64 },
    /// Periodic cumulative serving counters (emitted on snapshot, not per
    /// batch, so the stream stays proportional to campaign progress).
    Snapshot {
        requests: u64,
        graphs: u64,
        flushes: u64,
        shed: u64,
        queue_depth_max: u64,
        batch_fill: f64,
        p50_us: u64,
        p99_us: u64,
    },
    /// An online-refresh fine-tune began on freshly executed CTs.
    RefreshStarted { ordinal: u64, examples: u64 },
    /// A refresh fine-tune produced a candidate model for the swap gate.
    CandidateReady { ordinal: u64, name: String, fingerprint: u64 },
    /// A candidate was atomically installed (in-flight batches finished on
    /// the previous weights).
    SwapInstalled { epoch: u64, name: String, fingerprint: u64 },
    /// The gate refused a candidate before install (e.g. non-finite weights).
    SwapRejected { epoch: u64, reason: String },
    /// The AP-regression gate fired after install: previous weights restored.
    SwapRolledBack { epoch: u64, candidate_ap: f64, incumbent_ap: f64 },
    /// Server drained its queue and shut down.
    Stopped { requests: u64, graphs: u64, swaps: u64 },
}

/// Events emitted by the fleet coordinator: shard leasing, heartbeat
/// misses, work-stealing, and the rolled-up SCFC fleet checkpoint.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// Coordinator entry: emitted once before the first shard is leased.
    Started { workers: u64, shards: u64, stream_len: u64, resumed: bool },
    /// A shard was leased to a worker with a heartbeat deadline.
    ShardLeased { shard: u64, worker: u64, generation: u64, deadline_ms: u64 },
    /// A lease-holder missed its heartbeat deadline; the lease is revoked.
    LeaseExpired { shard: u64, worker: u64, deadline_ms: u64 },
    /// A worker was declared dead (panicked, killed, or lease-revoked).
    WorkerLost { worker: u64, shard: u64, detail: String },
    /// A revoked shard was re-leased to another worker, resuming from the
    /// dead worker's last checkpoint position.
    ShardStolen {
        shard: u64,
        from_worker: u64,
        to_worker: u64,
        generation: u64,
        resume_position: u64,
    },
    /// A shard ran to completion.
    ShardCompleted { shard: u64, worker: u64, executions: u64, races: u64 },
    /// A shard made no progress across the steal limit and was quarantined.
    ShardQuarantined { shard: u64, generations: u64 },
    /// A worker subprocess was spawned for a slot (process transport).
    WorkerSpawned { worker: u64, pid: u64, attempt: u64 },
    /// A spawned worker subprocess failed its handshake (timed out, died
    /// before reporting ready, or reported a mismatched campaign identity).
    WorkerHandshakeFailed { worker: u64, attempt: u64, detail: String },
    /// A dead worker slot was respawned after a backoff delay.
    WorkerRespawned { worker: u64, attempt: u64, backoff_ms: u64 },
    /// A worker slot died repeatedly and its crash-loop breaker fired: the
    /// slot retires instead of respawning forever.
    WorkerCrashLoop { worker: u64, deaths: u64, detail: String },
    /// Live workers dropped below the configured floor: the fleet
    /// checkpointed and stopped resumable instead of limping along.
    FleetDegraded { live_workers: u64, min_workers: u64 },
    /// The rolled-up SCFC fleet checkpoint was persisted.
    CheckpointWritten { path: String, done_shards: u64, ordinal: u64, rotated: bool },
    /// Coordinator exit: merged cumulative counts.
    Finished {
        shards: u64,
        steals: u64,
        reexecutions: u64,
        lost_workers: u64,
        quarantined_shards: u64,
        executions: u64,
        races: u64,
    },
}

/// One leg of the schema, as stored in the envelope.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    Campaign(CampaignEvent),
    Train(TrainEvent),
    Serve(ServeEvent),
    Fleet(FleetEvent),
}

/// Envelope written to the stream: schema version, per-sink monotonic
/// sequence number, microseconds since the sink was created, payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    pub v: u16,
    pub seq: u64,
    pub t_us: u64,
    pub event: Event,
}

fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

impl CampaignEvent {
    /// Map non-finite floats to `0.0` so the JSON exporter round-trips
    /// bit-exactly (the vendored writer emits NaN/Inf as `null`).
    pub fn sanitized(mut self) -> Self {
        if let CampaignEvent::Finished { sim_hours, .. } = &mut self {
            *sim_hours = finite(*sim_hours);
        }
        self
    }
}

impl TrainEvent {
    /// See [`CampaignEvent::sanitized`].
    pub fn sanitized(mut self) -> Self {
        match &mut self {
            TrainEvent::EpochCompleted { loss, val_ap, .. } => {
                *loss = finite(*loss);
                if let Some(v) = val_ap {
                    *v = finite(*v);
                }
            }
            TrainEvent::Finished { best_val_ap: Some(v), .. } => {
                *v = finite(*v);
            }
            _ => {}
        }
        self
    }
}

impl ServeEvent {
    /// See [`CampaignEvent::sanitized`].
    pub fn sanitized(mut self) -> Self {
        match &mut self {
            ServeEvent::Snapshot { batch_fill, .. } => {
                *batch_fill = finite(*batch_fill);
            }
            ServeEvent::SwapRolledBack { candidate_ap, incumbent_ap, .. } => {
                *candidate_ap = finite(*candidate_ap);
                *incumbent_ap = finite(*incumbent_ap);
            }
            _ => {}
        }
        self
    }
}

impl Event {
    pub fn sanitized(self) -> Self {
        match self {
            Event::Campaign(e) => Event::Campaign(e.sanitized()),
            Event::Train(e) => Event::Train(e.sanitized()),
            Event::Serve(e) => Event::Serve(e.sanitized()),
            // Fleet events carry no floats; nothing to sanitize.
            Event::Fleet(e) => Event::Fleet(e),
        }
    }

    /// Short stable tag for the variant (used by the Perfetto exporter and
    /// the human-readable status view).
    pub fn tag(&self) -> &'static str {
        match self {
            Event::Campaign(e) => match e {
                CampaignEvent::Started { .. } => "campaign.started",
                CampaignEvent::ExecutionOutcome { .. } => "campaign.execution",
                CampaignEvent::StageTiming { .. } => "campaign.stage",
                CampaignEvent::PredictorBatch { .. } => "campaign.predictor_batch",
                CampaignEvent::PredictorDegraded { .. } => "campaign.predictor_degraded",
                CampaignEvent::CheckpointWritten { .. } => "campaign.checkpoint",
                CampaignEvent::HangDetected { .. } => "campaign.hang",
                CampaignEvent::Quarantined { .. } => "campaign.quarantine",
                CampaignEvent::PrefilterStats { .. } => "campaign.prefilter",
                CampaignEvent::FaultInjected { .. } => "campaign.fault",
                CampaignEvent::WorkerStarted { .. } => "campaign.worker_started",
                CampaignEvent::WorkerFinished { .. } => "campaign.worker_finished",
                CampaignEvent::Finished { .. } => "campaign.finished",
            },
            Event::Train(e) => match e {
                TrainEvent::Started { .. } => "train.started",
                TrainEvent::ShardQuarantined { .. } => "train.shard_quarantined",
                TrainEvent::EpochCompleted { .. } => "train.epoch",
                TrainEvent::AnomalyDetected { .. } => "train.anomaly",
                TrainEvent::RolledBack { .. } => "train.rollback",
                TrainEvent::CheckpointWritten { .. } => "train.checkpoint",
                TrainEvent::Finished { .. } => "train.finished",
            },
            Event::Serve(e) => match e {
                ServeEvent::Started { .. } => "serve.started",
                ServeEvent::Snapshot { .. } => "serve.snapshot",
                ServeEvent::RefreshStarted { .. } => "serve.refresh",
                ServeEvent::CandidateReady { .. } => "serve.candidate",
                ServeEvent::SwapInstalled { .. } => "serve.swap",
                ServeEvent::SwapRejected { .. } => "serve.swap_rejected",
                ServeEvent::SwapRolledBack { .. } => "serve.swap_rollback",
                ServeEvent::Stopped { .. } => "serve.stopped",
            },
            Event::Fleet(e) => match e {
                FleetEvent::Started { .. } => "fleet.started",
                FleetEvent::ShardLeased { .. } => "fleet.lease",
                FleetEvent::LeaseExpired { .. } => "fleet.lease_expired",
                FleetEvent::WorkerLost { .. } => "fleet.worker_lost",
                FleetEvent::ShardStolen { .. } => "fleet.steal",
                FleetEvent::ShardCompleted { .. } => "fleet.shard_done",
                FleetEvent::ShardQuarantined { .. } => "fleet.shard_quarantined",
                FleetEvent::WorkerSpawned { .. } => "fleet.worker_spawned",
                FleetEvent::WorkerHandshakeFailed { .. } => "fleet.worker_handshake_failed",
                FleetEvent::WorkerRespawned { .. } => "fleet.worker_respawned",
                FleetEvent::WorkerCrashLoop { .. } => "fleet.worker_crash_loop",
                FleetEvent::FleetDegraded { .. } => "fleet.degraded",
                FleetEvent::CheckpointWritten { .. } => "fleet.checkpoint",
                FleetEvent::Finished { .. } => "fleet.finished",
            },
        }
    }

    /// True for the terminal events that end a stream.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::Campaign(CampaignEvent::Finished { .. })
                | Event::Train(TrainEvent::Finished { .. })
                | Event::Serve(ServeEvent::Stopped { .. })
                | Event::Fleet(FleetEvent::Finished { .. })
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_non_finite_to_zero() {
        let e = Event::Train(TrainEvent::EpochCompleted {
            epoch: 1,
            attempt: 0,
            loss: f64::NAN,
            val_ap: Some(f64::INFINITY),
        })
        .sanitized();
        match e {
            Event::Train(TrainEvent::EpochCompleted { loss, val_ap, .. }) => {
                assert_eq!(loss, 0.0);
                assert_eq!(val_ap, Some(0.0));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = EventRecord {
            v: EVENT_SCHEMA_VERSION,
            seq: 3,
            t_us: 1234,
            event: Event::Campaign(CampaignEvent::ExecutionOutcome {
                position: 7,
                ct_a: 1,
                ct_b: 2,
                attempt: 0,
                executions: 42,
                new_races: 1,
                new_blocks: 5,
                latency_us: 900,
            }),
        };
        let s = serde_json::to_string(&rec).unwrap();
        let back: EventRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(back, rec);
    }
}
