//! Non-blocking bounded event sink and the background writer thread.
//!
//! The hot loop calls [`EventSink::emit`], which never blocks: when the
//! bounded queue is full the event is counted as dropped and discarded.
//! A dedicated [`EventWriter`] thread drains the queue into the JSON-lines
//! and Perfetto exporters, so file I/O never happens on the campaign or
//! training thread.
//!
//! The vendored `crossbeam` has no channels and the vendored `parking_lot`
//! has no `Condvar`, so the queue is a hand-rolled
//! `std::sync::{Mutex, Condvar}` ring.

use crate::jsonl::{JsonlWriter, EVENTS_FILE, TRACE_FILE};
use crate::perfetto::PerfettoBuilder;
use crate::schema::{
    CampaignEvent, Event, EventRecord, FleetEvent, ServeEvent, TrainEvent, EVENT_SCHEMA_VERSION,
};
use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct Queue {
    buf: VecDeque<EventRecord>,
    closed: bool,
}

struct Shared {
    cap: usize,
    q: Mutex<Queue>,
    cond: Condvar,
    emitted: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
}

/// Cloneable handle to a bounded event queue. `emit` is wait-free with
/// respect to the writer: a full queue drops (and counts) instead of
/// blocking the producer.
#[derive(Clone)]
pub struct EventSink {
    shared: Arc<Shared>,
}

impl fmt::Debug for EventSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventSink")
            .field("cap", &self.shared.cap)
            .field("emitted", &self.emitted())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventSink {
    /// A sink holding at most `cap` undelivered events (`cap` is clamped to
    /// at least 1).
    pub fn bounded(cap: usize) -> Self {
        EventSink {
            shared: Arc::new(Shared {
                cap: cap.max(1),
                q: Mutex::new(Queue { buf: VecDeque::new(), closed: false }),
                cond: Condvar::new(),
                emitted: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                epoch: Instant::now(),
            }),
        }
    }

    /// Enqueue `event` without blocking. Sequence numbers are assigned in
    /// emission order; a full (or closed) queue increments the drop counter
    /// instead of stalling the caller.
    pub fn emit(&self, event: Event) {
        let s = &self.shared;
        let seq = s.emitted.fetch_add(1, Ordering::Relaxed);
        let rec = EventRecord {
            v: EVENT_SCHEMA_VERSION,
            seq,
            t_us: s.epoch.elapsed().as_micros() as u64,
            event: event.sanitized(),
        };
        let mut q = s.q.lock().expect("event queue poisoned");
        if q.closed || q.buf.len() >= s.cap {
            s.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        q.buf.push_back(rec);
        // No wakeup here: the writer polls on a short timed wait instead,
        // so the hot loop pays one uncontended mutex push per event rather
        // than a futex wake (which costs microseconds, not nanoseconds,
        // when the writer is parked).
    }

    /// Convenience wrapper for campaign events.
    pub fn campaign(&self, e: CampaignEvent) {
        self.emit(Event::Campaign(e));
    }

    /// Convenience wrapper for train events.
    pub fn train(&self, e: TrainEvent) {
        self.emit(Event::Train(e));
    }

    /// Convenience wrapper for serving events.
    pub fn serve(&self, e: ServeEvent) {
        self.emit(Event::Serve(e));
    }

    /// Convenience wrapper for fleet-coordinator events.
    pub fn fleet(&self, e: FleetEvent) {
        self.emit(Event::Fleet(e));
    }

    /// Events emitted so far (delivered or dropped).
    pub fn emitted(&self) -> u64 {
        self.shared.emitted.load(Ordering::Relaxed)
    }

    /// Events dropped on overflow (or after close) so far.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Close the sink: subsequent emits are dropped and the writer drains
    /// what is left, then stops.
    pub fn close(&self) {
        let mut q = self.shared.q.lock().expect("event queue poisoned");
        q.closed = true;
        drop(q);
        self.shared.cond.notify_all();
    }

    /// Batch receive for the writer thread: drains everything queued into
    /// `out`, waiting (with a short timeout, so new events are picked up
    /// without producer-side wakeups) while the queue is empty. Returns
    /// `false` once the sink is closed *and* drained.
    fn recv_batch(&self, out: &mut Vec<EventRecord>) -> bool {
        let mut q = self.shared.q.lock().expect("event queue poisoned");
        loop {
            if !q.buf.is_empty() {
                out.extend(q.buf.drain(..));
                return true;
            }
            if q.closed {
                return false;
            }
            let (guard, _) = self
                .shared
                .cond
                .wait_timeout(q, Duration::from_millis(20))
                .expect("event queue poisoned");
            q = guard;
        }
    }
}

/// What the writer thread did, reported from [`EventWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    /// Records written to the JSON-lines stream.
    pub written: u64,
    /// Records dropped by the sink on overflow.
    pub dropped: u64,
}

/// Background thread draining an [`EventSink`] into `events.jsonl` and
/// `trace.json` under a directory.
pub struct EventWriter {
    sink: EventSink,
    handle: JoinHandle<io::Result<WriteSummary>>,
}

impl EventWriter {
    /// Create `dir` (if needed) and start draining `sink` into
    /// `dir/events.jsonl` and `dir/trace.json`.
    pub fn spawn(sink: EventSink, dir: &Path) -> io::Result<EventWriter> {
        fs::create_dir_all(dir)?;
        let jsonl_path = dir.join(EVENTS_FILE);
        let trace_path = dir.join(TRACE_FILE);
        let drain = sink.clone();
        let handle = std::thread::Builder::new().name("snowcat-events".into()).spawn(
            move || -> io::Result<WriteSummary> {
                let file = fs::File::create(&jsonl_path)?;
                let mut jsonl = JsonlWriter::new(BufWriter::new(file));
                let mut perfetto = PerfettoBuilder::new();
                let mut written = 0u64;
                let mut batch = Vec::new();
                while drain.recv_batch(&mut batch) {
                    for rec in batch.drain(..) {
                        jsonl.write_record(&rec)?;
                        perfetto.push(&rec);
                        written += 1;
                    }
                }
                let dropped = drain.dropped();
                let mut out = jsonl.finish(dropped)?;
                out.flush()?;
                let mut tf = BufWriter::new(fs::File::create(&trace_path)?);
                tf.write_all(perfetto.into_json().as_bytes())?;
                tf.flush()?;
                Ok(WriteSummary { written, dropped })
            },
        )?;
        Ok(EventWriter { sink, handle })
    }

    /// Close the sink, wait for the writer to drain and seal both files.
    pub fn finish(self) -> io::Result<WriteSummary> {
        self.sink.close();
        match self.handle.join() {
            Ok(res) => res,
            Err(_) => Err(io::Error::other("event writer thread panicked")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_drops_instead_of_blocking() {
        let sink = EventSink::bounded(2);
        for i in 0..5 {
            sink.campaign(CampaignEvent::StageTiming { stage: format!("s{i}"), micros: i });
        }
        assert_eq!(sink.emitted(), 5);
        assert_eq!(sink.dropped(), 3);
        // The two delivered records kept their emission-order sequence numbers.
        let mut batch = Vec::new();
        assert!(sink.recv_batch(&mut batch));
        assert_eq!(batch.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1]);
        // A closed, drained sink reports end-of-stream.
        sink.close();
        let mut rest = Vec::new();
        assert!(!sink.recv_batch(&mut rest));
        assert!(rest.is_empty());
    }

    #[test]
    fn writer_drains_to_files() {
        let dir = std::env::temp_dir().join(format!("snowcat-events-sink-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let sink = EventSink::bounded(64);
        let writer = EventWriter::spawn(sink.clone(), &dir).unwrap();
        sink.campaign(CampaignEvent::Started {
            label: "PCT".into(),
            seed: 7,
            ctis: 4,
            resumed_from: None,
        });
        sink.train(TrainEvent::EpochCompleted { epoch: 1, attempt: 0, loss: 0.5, val_ap: None });
        let summary = writer.finish().unwrap();
        assert_eq!(summary.written, 2);
        assert_eq!(summary.dropped, 0);
        let text = fs::read_to_string(dir.join(EVENTS_FILE)).unwrap();
        let parsed = crate::jsonl::validate_stream(&text).expect("stream validates");
        assert_eq!(parsed.records.len(), 2);
        let trace = fs::read_to_string(dir.join(TRACE_FILE)).unwrap();
        crate::perfetto::validate_trace(&trace).expect("trace validates");
        let _ = fs::remove_dir_all(&dir);
    }
}
