//! Chrome/Perfetto `trace_event` JSON exporter.
//!
//! Produces the classic `{"traceEvents":[...]}` object format that both
//! `chrome://tracing` and ui.perfetto.dev ingest. Durations (executions,
//! stage timings) become `ph:"X"` complete events; everything else becomes
//! an `ph:"i"` instant so it shows up as a marker on the timeline.

use crate::schema::{CampaignEvent, Event, EventRecord, FleetEvent, ServeEvent, TrainEvent};
use serde::Value;

const PID: i64 = 1;

/// The vendored serde has no `Serialize` impl for `Value` itself; this
/// adapter lets a hand-built tree reuse the JSON writer.
struct Raw(Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

/// Accumulates trace events; serialized once at the end of the run.
#[derive(Default)]
pub struct PerfettoBuilder {
    events: Vec<Value>,
}

impl PerfettoBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    fn push_raw(
        &mut self,
        name: String,
        ph: &str,
        ts: u64,
        dur: Option<u64>,
        tid: u64,
        args: Vec<(&str, Value)>,
    ) {
        let mut fields = vec![
            ("name", Value::Str(name)),
            ("ph", s(ph)),
            ("ts", Value::UInt(ts)),
            ("pid", Value::Int(PID)),
            ("tid", Value::UInt(tid)),
        ];
        if let Some(d) = dur {
            fields.push(("dur", Value::UInt(d)));
        }
        if ph == "i" {
            fields.push(("s", s("t")));
        }
        if !args.is_empty() {
            fields.push(("args", obj(args)));
        }
        self.events.push(obj(fields));
    }

    /// Map one record onto the timeline.
    pub fn push(&mut self, rec: &EventRecord) {
        let t = rec.t_us;
        match &rec.event {
            Event::Campaign(CampaignEvent::ExecutionOutcome {
                position,
                ct_a,
                ct_b,
                latency_us,
                new_races,
                new_blocks,
                ..
            }) => {
                self.push_raw(
                    format!("exec ct{ct_a}x{ct_b}"),
                    "X",
                    t.saturating_sub(*latency_us),
                    Some((*latency_us).max(1)),
                    0,
                    vec![
                        ("position", Value::UInt(*position)),
                        ("new_races", Value::UInt(*new_races)),
                        ("new_blocks", Value::UInt(*new_blocks)),
                    ],
                );
            }
            Event::Campaign(CampaignEvent::StageTiming { stage, micros }) => {
                self.push_raw(
                    format!("stage {stage}"),
                    "X",
                    t.saturating_sub(*micros),
                    Some((*micros).max(1)),
                    0,
                    vec![],
                );
            }
            Event::Campaign(CampaignEvent::WorkerStarted { slot, label }) => {
                self.push_raw(format!("worker {label}"), "i", t, None, *slot + 1, vec![]);
            }
            Event::Campaign(CampaignEvent::WorkerFinished {
                slot,
                label,
                ok,
                fault,
                elapsed_us,
            }) => {
                // Render the worker's lifetime as a complete slice so
                // wall-time-to-failure is visible on the timeline.
                let mut args = vec![("ok", Value::Bool(*ok))];
                if let Some(f) = fault {
                    args.push(("fault", Value::Str(f.clone())));
                }
                self.push_raw(
                    format!("worker {label}"),
                    "X",
                    t.saturating_sub(*elapsed_us),
                    Some((*elapsed_us).max(1)),
                    *slot + 1,
                    args,
                );
            }
            // Fleet shard lifecycle: one lane per worker slot, markers for
            // lease/steal/loss so recovery paths are visible at a glance.
            Event::Fleet(FleetEvent::ShardLeased { shard, worker, generation, deadline_ms }) => {
                self.push_raw(
                    format!("lease shard{shard}"),
                    "i",
                    t,
                    None,
                    *worker + 1,
                    vec![
                        ("generation", Value::UInt(*generation)),
                        ("deadline_ms", Value::UInt(*deadline_ms)),
                    ],
                );
            }
            Event::Fleet(FleetEvent::ShardStolen {
                shard,
                from_worker,
                to_worker,
                generation,
                resume_position,
            }) => {
                self.push_raw(
                    format!("steal shard{shard} w{from_worker}->w{to_worker}"),
                    "i",
                    t,
                    None,
                    *to_worker + 1,
                    vec![
                        ("generation", Value::UInt(*generation)),
                        ("resume_position", Value::UInt(*resume_position)),
                    ],
                );
            }
            Event::Fleet(FleetEvent::WorkerLost { worker, shard, detail }) => {
                self.push_raw(
                    format!("worker {worker} lost"),
                    "i",
                    t,
                    None,
                    *worker + 1,
                    vec![("shard", Value::UInt(*shard)), ("detail", Value::Str(detail.clone()))],
                );
            }
            Event::Fleet(FleetEvent::ShardCompleted { shard, worker, executions, races }) => {
                self.push_raw(
                    format!("shard{shard} done"),
                    "i",
                    t,
                    None,
                    *worker + 1,
                    vec![("executions", Value::UInt(*executions)), ("races", Value::UInt(*races))],
                );
            }
            Event::Train(TrainEvent::EpochCompleted { epoch, loss, .. }) => {
                self.push_raw(
                    format!("epoch {epoch}"),
                    "i",
                    t,
                    None,
                    0,
                    vec![("loss", Value::Float(*loss))],
                );
            }
            // Serving saturation as a counter track, swaps as markers.
            Event::Serve(ServeEvent::Snapshot { queue_depth_max, p99_us, batch_fill, .. }) => {
                self.push_raw(
                    "serve saturation".into(),
                    "C",
                    t,
                    None,
                    0,
                    vec![
                        ("queue_depth_max", Value::UInt(*queue_depth_max)),
                        ("p99_us", Value::UInt(*p99_us)),
                        ("batch_fill", Value::Float(*batch_fill)),
                    ],
                );
            }
            Event::Serve(ServeEvent::SwapInstalled { epoch, name, .. }) => {
                self.push_raw(
                    format!("swap#{epoch} -> {name}"),
                    "i",
                    t,
                    None,
                    0,
                    vec![("epoch", Value::UInt(*epoch))],
                );
            }
            Event::Serve(ServeEvent::SwapRolledBack { epoch, candidate_ap, incumbent_ap }) => {
                self.push_raw(
                    format!("swap#{epoch} rolled back"),
                    "i",
                    t,
                    None,
                    0,
                    vec![
                        ("candidate_ap", Value::Float(*candidate_ap)),
                        ("incumbent_ap", Value::Float(*incumbent_ap)),
                    ],
                );
            }
            other => {
                self.push_raw(other.tag().to_string(), "i", t, None, 0, vec![]);
            }
        }
    }

    /// Serialize as `{"traceEvents":[...]}`.
    pub fn into_json(self) -> String {
        let root = obj(vec![("traceEvents", Value::Array(self.events))]);
        serde_json::to_string(&Raw(root)).expect("value serialization is infallible")
    }
}

/// Parse a trace export and check every event has the required keys.
/// Returns the number of trace events.
pub fn validate_trace(text: &str) -> Result<u64, String> {
    let v = serde_json::parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    for (i, ev) in events.iter().enumerate() {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if ev.get(key).is_none() {
                return Err(format!("traceEvents[{i}] missing required key '{key}'"));
            }
        }
    }
    Ok(events.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::EVENT_SCHEMA_VERSION;

    #[test]
    fn exec_events_become_complete_slices() {
        let mut b = PerfettoBuilder::new();
        b.push(&EventRecord {
            v: EVENT_SCHEMA_VERSION,
            seq: 0,
            t_us: 1000,
            event: Event::Campaign(CampaignEvent::ExecutionOutcome {
                position: 0,
                ct_a: 1,
                ct_b: 2,
                attempt: 0,
                executions: 1,
                new_races: 0,
                new_blocks: 3,
                latency_us: 250,
            }),
        });
        b.push(&EventRecord {
            v: EVENT_SCHEMA_VERSION,
            seq: 1,
            t_us: 1100,
            event: Event::Train(TrainEvent::RolledBack { epoch: 2, attempt: 1 }),
        });
        let json = b.into_json();
        assert_eq!(validate_trace(&json).unwrap(), 2);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_trace("not json").is_err());
        assert!(validate_trace("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
    }
}
