//! The unified, versioned report — one schema for campaign and train.
//!
//! `snowcat campaign --report`, `snowcat train --report` and
//! `snowcat status --json` all emit this type. It deliberately excludes
//! wall-clock time, checkpoint-write counts and resume provenance, so a
//! killed-and-resumed run serializes byte-identically to an uninterrupted
//! run with the same seed.
//!
//! [`load_report`] additionally sniffs the two legacy shapes (the campaign
//! `--out` blob and the old train `--report` blob) and converts them, so
//! downstream tooling can migrate one release behind.

use serde::{Deserialize, Serialize, Value};

/// Version of the [`Report`] schema.
pub const REPORT_SCHEMA_VERSION: u16 = 1;

/// Predictor-chain counters as carried in a report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorCounters {
    pub inferences: u64,
    pub batches: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub degraded_batches: u64,
    pub fallback_predictions: u64,
}

/// Final counts of a supervised campaign. Derived identically from a live
/// `SupervisedResult` and from a final SCCP checkpoint.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    pub label: String,
    /// Campaign seed (0 when converted from a legacy blob that lacked it).
    pub seed: u64,
    pub ctis: u64,
    pub executions: u64,
    pub inferences: u64,
    pub races: u64,
    pub harmful_races: u64,
    pub sched_dep_blocks: u64,
    pub bugs_found: Vec<u64>,
    pub sim_hours: f64,
    pub quarantined: Vec<(u64, u64)>,
    pub hung_attempts: u64,
    pub retries: u64,
    pub wasted_executions: u64,
    pub skipped_quarantined: u64,
    /// Live-process predictor counters. `None` for PCT campaigns and for
    /// checkpoint-derived reports (the counters are not persisted).
    pub predictor: Option<PredictorCounters>,
}

/// One surviving training anomaly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnomalyRecord {
    pub epoch: u64,
    pub attempt: u64,
    pub kind: String,
    pub detail: String,
}

/// One quarantined dataset shard.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardIssue {
    pub path: String,
    pub reason: String,
}

/// Final counts of a robust training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainSummary {
    pub epochs: u64,
    pub epoch_losses: Vec<f64>,
    pub val_ap: Vec<f64>,
    pub best_epoch: Option<u64>,
    pub threshold: Option<f64>,
    pub anomalies: Vec<AnomalyRecord>,
    pub early_stopped: bool,
    pub completed: bool,
    pub params_crc32: u32,
    pub shards_loaded: u64,
    pub shard_examples: u64,
    pub quarantined_shards: Vec<ShardIssue>,
}

/// The one report schema. Exactly one of `campaign`/`train` is populated,
/// matching `kind`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    pub schema_version: u16,
    /// `"campaign"` or `"train"`.
    pub kind: String,
    pub campaign: Option<CampaignSummary>,
    pub train: Option<TrainSummary>,
}

impl Report {
    pub fn for_campaign(summary: CampaignSummary) -> Report {
        Report {
            schema_version: REPORT_SCHEMA_VERSION,
            kind: "campaign".into(),
            campaign: Some(summary),
            train: None,
        }
    }

    pub fn for_train(summary: TrainSummary) -> Report {
        Report {
            schema_version: REPORT_SCHEMA_VERSION,
            kind: "train".into(),
            campaign: None,
            train: Some(summary),
        }
    }

    /// Canonical serialization used by `--report` files and
    /// `snowcat status --json` (pretty JSON plus a trailing newline, so the
    /// two are byte-comparable).
    pub fn to_canonical_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serialization is infallible");
        s.push('\n');
        s
    }
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(|x| u64::from_value(x).ok())
}

fn get_f64(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(|x| f64::from_value(x).ok())
}

fn get_str(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(|x| String::from_value(x).ok())
}

fn legacy_campaign(v: &Value) -> Result<Report, String> {
    let result = v.get("result").ok_or("legacy campaign blob has no result")?;
    let last = result
        .get("history")
        .and_then(|h| h.as_array())
        .and_then(|a| a.last())
        .cloned()
        .unwrap_or(Value::Null);
    let recovery = v.get("recovery").cloned().unwrap_or(Value::Null);
    let quarantined: Vec<(u64, u64)> = v
        .get("quarantined")
        .and_then(|q| Vec::<(u64, u64)>::from_value(q).ok())
        .unwrap_or_default();
    let predictor = v.get("predictor_stats").and_then(|p| PredictorCounters::from_value(p).ok());
    let summary = CampaignSummary {
        label: get_str(result, "label").unwrap_or_default(),
        seed: 0,
        ctis: get_u64(&last, "ctis").unwrap_or(0),
        executions: get_u64(&last, "executions").unwrap_or(0),
        inferences: get_u64(&last, "inferences").unwrap_or(0),
        races: get_u64(&last, "races").unwrap_or(0),
        harmful_races: get_u64(&last, "harmful_races").unwrap_or(0),
        sched_dep_blocks: get_u64(&last, "sched_dep_blocks").unwrap_or(0),
        bugs_found: result
            .get("bugs_found")
            .and_then(|b| Vec::<u64>::from_value(b).ok())
            .unwrap_or_default(),
        sim_hours: get_f64(&last, "hours").unwrap_or(0.0),
        quarantined,
        hung_attempts: get_u64(&recovery, "hung_attempts").unwrap_or(0),
        retries: get_u64(&recovery, "retries").unwrap_or(0),
        wasted_executions: get_u64(&recovery, "wasted_executions").unwrap_or(0),
        skipped_quarantined: get_u64(&recovery, "skipped_quarantined").unwrap_or(0),
        predictor,
    };
    Ok(Report::for_campaign(summary))
}

fn legacy_train(v: &Value) -> Result<Report, String> {
    let result = v.get("result").ok_or("legacy train blob has no result")?;
    let anomalies = result
        .get("anomalies")
        .and_then(|a| a.as_array())
        .map(|a| {
            a.iter()
                .map(|x| AnomalyRecord {
                    epoch: get_u64(x, "epoch").unwrap_or(0),
                    attempt: get_u64(x, "attempt").unwrap_or(0),
                    kind: get_str(x, "kind").unwrap_or_default(),
                    detail: get_str(x, "detail").unwrap_or_default(),
                })
                .collect()
        })
        .unwrap_or_default();
    let quarantine = v.get("quarantine").cloned().unwrap_or(Value::Null);
    let quarantined_shards = quarantine
        .get("quarantined")
        .and_then(|a| a.as_array())
        .map(|a| {
            a.iter()
                .map(|x| ShardIssue {
                    path: get_str(x, "path").unwrap_or_default(),
                    reason: get_str(x, "reason").unwrap_or_default(),
                })
                .collect()
        })
        .unwrap_or_default();
    let epoch_losses: Vec<f64> =
        result.get("epoch_losses").and_then(|a| Vec::<f64>::from_value(a).ok()).unwrap_or_default();
    let summary = TrainSummary {
        epochs: epoch_losses.len() as u64,
        epoch_losses,
        val_ap: result
            .get("val_ap")
            .and_then(|a| Vec::<f64>::from_value(a).ok())
            .unwrap_or_default(),
        best_epoch: result
            .get("best_epoch")
            .and_then(|x| Option::<u64>::from_value(x).ok())
            .flatten(),
        threshold: result
            .get("threshold")
            .and_then(|x| Option::<f64>::from_value(x).ok())
            .flatten(),
        anomalies,
        early_stopped: result
            .get("early_stopped")
            .and_then(|x| bool::from_value(x).ok())
            .unwrap_or(false),
        completed: result.get("completed").and_then(|x| bool::from_value(x).ok()).unwrap_or(false),
        params_crc32: get_u64(result, "params_crc32").unwrap_or(0) as u32,
        shards_loaded: get_u64(&quarantine, "loaded").unwrap_or(0),
        shard_examples: get_u64(&quarantine, "examples").unwrap_or(0),
        quarantined_shards,
    };
    Ok(Report::for_train(summary))
}

/// Load a report, sniffing the shape structurally:
///
/// * top-level `schema_version` → current unified [`Report`];
/// * `result.epoch_losses` → legacy `snowcat train --report` blob;
/// * `result.history` → legacy `snowcat campaign --out` blob.
pub fn load_report(text: &str) -> Result<Report, String> {
    let v = serde_json::parse(text).map_err(|e| format!("not JSON: {e}"))?;
    if v.get("schema_version").is_some() {
        return serde_json::from_str::<Report>(text).map_err(|e| format!("bad report: {e}"));
    }
    if let Some(result) = v.get("result") {
        if result.get("epoch_losses").is_some() {
            return legacy_train(&v);
        }
        if result.get("history").is_some() {
            return legacy_campaign(&v);
        }
    }
    Err("unrecognized report shape (no schema_version, not a known legacy blob)".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_campaign() -> Report {
        Report::for_campaign(CampaignSummary {
            label: "PCT".into(),
            seed: 77,
            ctis: 8,
            executions: 120,
            inferences: 0,
            races: 9,
            harmful_races: 2,
            sched_dep_blocks: 33,
            bugs_found: vec![1, 4],
            sim_hours: 0.25,
            quarantined: vec![(3, 5)],
            hung_attempts: 1,
            retries: 1,
            wasted_executions: 5,
            skipped_quarantined: 0,
            predictor: Some(PredictorCounters { inferences: 10, batches: 2, ..Default::default() }),
        })
    }

    #[test]
    fn report_round_trips() {
        let r = sample_campaign();
        let s = r.to_canonical_json();
        let back = load_report(&s).unwrap();
        assert_eq!(back, r);
        let t = Report::for_train(TrainSummary {
            epochs: 2,
            epoch_losses: vec![0.5, 0.25],
            val_ap: vec![0.7, 0.8],
            best_epoch: Some(1),
            threshold: Some(0.5),
            anomalies: vec![AnomalyRecord {
                epoch: 1,
                attempt: 0,
                kind: "grad-spike".into(),
                detail: "x".into(),
            }],
            early_stopped: false,
            completed: true,
            params_crc32: 0xDEAD_BEEF,
            shards_loaded: 2,
            shard_examples: 64,
            quarantined_shards: vec![ShardIssue { path: "s1.scds".into(), reason: "crc".into() }],
        });
        let back = load_report(&t.to_canonical_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn legacy_campaign_blob_is_sniffed() {
        let legacy = r#"{
          "result": {
            "label": "PCT",
            "history": [
              {"ctis": 1, "executions": 10, "inferences": 0, "hours": 0.1,
               "races": 1, "harmful_races": 0, "sched_dep_blocks": 4, "bugs": 0},
              {"ctis": 2, "executions": 25, "inferences": 0, "hours": 0.2,
               "races": 3, "harmful_races": 1, "sched_dep_blocks": 9, "bugs": 1}
            ],
            "bugs_found": [7]
          },
          "quarantined": [[1, 2]],
          "recovery": {"hung_attempts": 2, "retries": 2, "wasted_executions": 6,
                       "quarantined": 1, "skipped_quarantined": 0, "checkpoints_written": 3},
          "resumed_from": null,
          "predictor_stats": null
        }"#;
        let r = load_report(legacy).unwrap();
        assert_eq!(r.kind, "campaign");
        let c = r.campaign.unwrap();
        assert_eq!(c.label, "PCT");
        assert_eq!(c.ctis, 2);
        assert_eq!(c.executions, 25);
        assert_eq!(c.bugs_found, vec![7]);
        assert_eq!(c.quarantined, vec![(1, 2)]);
        assert_eq!(c.hung_attempts, 2);
        assert!(c.predictor.is_none());
    }

    #[test]
    fn legacy_train_blob_is_sniffed() {
        let legacy = r#"{
          "result": {
            "epoch_losses": [0.5, 0.4],
            "val_ap": [0.6, 0.65],
            "best_epoch": 1,
            "threshold": 0.5,
            "anomalies": [{"epoch": 0, "attempt": 0, "kind": "nan-loss", "detail": "d"}],
            "early_stopped": false,
            "completed": true,
            "params_crc32": 123
          },
          "quarantine": {"loaded": 3, "examples": 90,
                         "quarantined": [{"path": "bad.scds", "reason": "checksum"}]}
        }"#;
        let r = load_report(legacy).unwrap();
        assert_eq!(r.kind, "train");
        let t = r.train.unwrap();
        assert_eq!(t.epochs, 2);
        assert_eq!(t.best_epoch, Some(1));
        assert_eq!(t.shards_loaded, 3);
        assert_eq!(t.quarantined_shards.len(), 1);
        assert_eq!(t.quarantined_shards[0].reason, "checksum");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(load_report("{}").is_err());
        assert!(load_report("nope").is_err());
    }
}
