//! Property tests for the JSON-lines event stream: every event variant must
//! round-trip bit-exactly through the exporter, and a truncated, torn, or
//! bit-flipped stream must be *detected*, never silently accepted —
//! mirroring the SCDS corruption suite.

use proptest::prelude::*;
use snowcat_events::{
    read_stream, CampaignEvent, Event, EventRecord, FleetEvent, JsonlWriter, ServeEvent,
    TrainEvent, EVENT_SCHEMA_VERSION,
};

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(97u8..123, 0..12)
        .prop_map(|v| String::from_utf8(v).expect("ascii lowercase"))
}

fn arb_opt_u64() -> impl Strategy<Value = Option<u64>> {
    (proptest::bool::ANY, 0u64..1_000_000).prop_map(|(some, v)| some.then_some(v))
}

fn arb_campaign() -> impl Strategy<Value = CampaignEvent> {
    (
        0usize..14,
        arb_string(),
        (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        (0u64..64, 0u64..64, 0u64..10_000),
        arb_opt_u64(),
        (proptest::bool::ANY, 0.0f64..1.0e4),
    )
        .prop_map(|(variant, text, (a, b, c), (x, y, z), opt, (flag, f))| match variant {
            0 => CampaignEvent::Started { label: text, seed: a, ctis: b, resumed_from: opt },
            1 => CampaignEvent::ExecutionOutcome {
                position: a,
                ct_a: x,
                ct_b: y,
                attempt: z,
                executions: b,
                new_races: c,
                new_blocks: z,
                latency_us: c,
            },
            2 => CampaignEvent::StageTiming { stage: text, micros: a },
            3 => CampaignEvent::PredictorBatch {
                batches: a,
                inferences: b,
                cache_hits: c,
                cache_misses: x,
                cache_evictions: y,
                degraded_batches: z,
                fallback_predictions: x,
            },
            4 => CampaignEvent::PredictorDegraded { reason: text, permanent: flag },
            5 => CampaignEvent::CheckpointWritten {
                path: text,
                position: a,
                ordinal: b,
                rotated: flag,
            },
            6 => CampaignEvent::HangDetected { position: a, attempt: z, injected: flag },
            7 => CampaignEvent::Quarantined { position: a, ct_a: x, ct_b: y, attempts: z },
            8 => CampaignEvent::FaultInjected { entry: text, position: a },
            9 => CampaignEvent::WorkerStarted { slot: x, label: text },
            10 => CampaignEvent::WorkerFinished {
                slot: x,
                label: text,
                ok: flag,
                fault: opt.map(|v| format!("hang@{v}")),
                elapsed_us: c,
            },
            11 => CampaignEvent::PrefilterStats {
                vetoed: a,
                survivors: b,
                may_race_pairs: c,
                refined: flag,
            },
            12 => CampaignEvent::Finished {
                label: text,
                executions: a,
                inferences: b,
                races: c,
                harmful_races: x,
                blocks: y,
                bugs: z,
                quarantined: x,
                sim_hours: f,
            },
            _ => CampaignEvent::WorkerStarted { slot: y, label: text },
        })
}

fn arb_train() -> impl Strategy<Value = TrainEvent> {
    (
        0usize..7,
        arb_string(),
        (0u64..1_000, 0u64..8),
        arb_opt_u64(),
        (proptest::bool::ANY, 0.0f64..1.0e3),
    )
        .prop_map(|(variant, text, (epoch, attempt), opt, (flag, f))| match variant {
            0 => TrainEvent::Started { epochs: epoch, examples: attempt, resumed_epoch: opt },
            1 => TrainEvent::ShardQuarantined { path: text, reason: "bad checksum".into() },
            2 => TrainEvent::EpochCompleted {
                epoch,
                attempt,
                loss: f,
                val_ap: opt.map(|v| v as f64 / 1.0e6),
            },
            3 => TrainEvent::AnomalyDetected { epoch, attempt, kind: text, detail: "d".into() },
            4 => TrainEvent::RolledBack { epoch, attempt },
            5 => TrainEvent::CheckpointWritten { path: text, epoch, complete: flag },
            _ => TrainEvent::Finished {
                epochs: epoch,
                best_epoch: opt,
                best_val_ap: opt.map(|v| v as f64 / 1.0e6),
                early_stopped: flag,
                diverged: !flag,
            },
        })
}

fn arb_serve() -> impl Strategy<Value = ServeEvent> {
    (
        0usize..8,
        arb_string(),
        (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        (0u64..64, 0u64..64, 0u64..10_000),
        0.0f64..1.0,
    )
        .prop_map(|(variant, text, (a, b, c), (x, y, z), f)| match variant {
            0 => ServeEvent::Started { model: text, max_batch: x, max_wait_us: z, queue_cap: b },
            1 => ServeEvent::Snapshot {
                requests: a,
                graphs: b,
                flushes: c,
                shed: x,
                queue_depth_max: y,
                batch_fill: f,
                p50_us: z,
                p99_us: z * 3,
            },
            2 => ServeEvent::RefreshStarted { ordinal: x, examples: b },
            3 => ServeEvent::CandidateReady { ordinal: x, name: text, fingerprint: a },
            4 => ServeEvent::SwapInstalled { epoch: x, name: text, fingerprint: a },
            5 => ServeEvent::SwapRejected { epoch: x, reason: text },
            6 => ServeEvent::SwapRolledBack { epoch: x, candidate_ap: f, incumbent_ap: 1.0 - f },
            _ => ServeEvent::Stopped { requests: a, graphs: b, swaps: y },
        })
}

fn arb_fleet() -> impl Strategy<Value = FleetEvent> {
    (
        0usize..14,
        arb_string(),
        (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        (0u64..64, 0u64..64, 0u64..10_000),
        proptest::bool::ANY,
    )
        .prop_map(|(variant, text, (a, b, c), (x, y, z), flag)| match variant {
            0 => FleetEvent::Started { workers: x, shards: y, stream_len: a, resumed: flag },
            1 => FleetEvent::ShardLeased { shard: x, worker: y, generation: z, deadline_ms: a },
            2 => FleetEvent::LeaseExpired { shard: x, worker: y, deadline_ms: a },
            3 => FleetEvent::WorkerLost { worker: y, shard: x, detail: text },
            4 => FleetEvent::ShardStolen {
                shard: x,
                from_worker: y,
                to_worker: z,
                generation: b,
                resume_position: a,
            },
            5 => FleetEvent::ShardCompleted { shard: x, worker: y, executions: a, races: b },
            6 => FleetEvent::ShardQuarantined { shard: x, generations: z },
            7 => FleetEvent::CheckpointWritten {
                path: text,
                done_shards: x,
                ordinal: b,
                rotated: flag,
            },
            8 => FleetEvent::WorkerSpawned { worker: y, pid: a, attempt: z },
            9 => FleetEvent::WorkerHandshakeFailed { worker: y, attempt: z, detail: text },
            10 => FleetEvent::WorkerRespawned { worker: y, attempt: z, backoff_ms: a },
            11 => FleetEvent::WorkerCrashLoop { worker: y, deaths: z, detail: text },
            12 => FleetEvent::FleetDegraded { live_workers: x, min_workers: y },
            _ => FleetEvent::Finished {
                shards: x,
                steals: y,
                reexecutions: z,
                lost_workers: b,
                quarantined_shards: c,
                executions: a,
                races: b,
            },
        })
}

fn arb_event() -> impl Strategy<Value = Event> {
    (0usize..4, arb_campaign(), arb_train(), arb_serve(), arb_fleet()).prop_map(
        |(leg, c, t, s, fl)| match leg {
            0 => Event::Campaign(c),
            1 => Event::Train(t),
            2 => Event::Serve(s),
            _ => Event::Fleet(fl),
        },
    )
}

/// One record per schema variant, so coverage of every arm is guaranteed
/// rather than probabilistic.
fn one_of_each() -> Vec<Event> {
    vec![
        Event::Campaign(CampaignEvent::Started {
            label: "pct".into(),
            seed: 7,
            ctis: 4,
            resumed_from: Some(2),
        }),
        Event::Campaign(CampaignEvent::ExecutionOutcome {
            position: 0,
            ct_a: 1,
            ct_b: 2,
            attempt: 0,
            executions: 5,
            new_races: 1,
            new_blocks: 9,
            latency_us: 130,
        }),
        Event::Campaign(CampaignEvent::StageTiming { stage: "select".into(), micros: 12 }),
        Event::Campaign(CampaignEvent::PredictorBatch {
            batches: 1,
            inferences: 8,
            cache_hits: 3,
            cache_misses: 5,
            cache_evictions: 0,
            degraded_batches: 0,
            fallback_predictions: 0,
        }),
        Event::Campaign(CampaignEvent::PredictorDegraded {
            reason: "batch panicked".into(),
            permanent: false,
        }),
        Event::Campaign(CampaignEvent::CheckpointWritten {
            path: "c.ckpt".into(),
            position: 3,
            ordinal: 1,
            rotated: true,
        }),
        Event::Campaign(CampaignEvent::HangDetected { position: 3, attempt: 0, injected: true }),
        Event::Campaign(CampaignEvent::Quarantined { position: 3, ct_a: 1, ct_b: 2, attempts: 3 }),
        Event::Campaign(CampaignEvent::FaultInjected { entry: "hang@3x3".into(), position: 3 }),
        Event::Campaign(CampaignEvent::PrefilterStats {
            vetoed: 31,
            survivors: 9,
            may_race_pairs: 112,
            refined: true,
        }),
        Event::Campaign(CampaignEvent::WorkerStarted { slot: 0, label: "pct".into() }),
        Event::Campaign(CampaignEvent::WorkerFinished {
            slot: 0,
            label: "pct".into(),
            ok: false,
            fault: Some("panic@1".into()),
            elapsed_us: 48_000,
        }),
        Event::Campaign(CampaignEvent::Finished {
            label: "pct".into(),
            executions: 40,
            inferences: 0,
            races: 9,
            harmful_races: 3,
            blocks: 77,
            bugs: 1,
            quarantined: 1,
            sim_hours: 1.5,
        }),
        Event::Train(TrainEvent::Started { epochs: 3, examples: 120, resumed_epoch: None }),
        Event::Train(TrainEvent::ShardQuarantined {
            path: "shard1.scds".into(),
            reason: "bad checksum".into(),
        }),
        Event::Train(TrainEvent::EpochCompleted {
            epoch: 0,
            attempt: 0,
            loss: 0.25,
            val_ap: Some(0.8),
        }),
        Event::Train(TrainEvent::AnomalyDetected {
            epoch: 1,
            attempt: 0,
            kind: "loss-divergence".into(),
            detail: "x".into(),
        }),
        Event::Train(TrainEvent::RolledBack { epoch: 1, attempt: 1 }),
        Event::Train(TrainEvent::CheckpointWritten {
            path: "t.stcp".into(),
            epoch: 1,
            complete: false,
        }),
        Event::Train(TrainEvent::Finished {
            epochs: 3,
            best_epoch: Some(2),
            best_val_ap: Some(0.82),
            early_stopped: false,
            diverged: false,
        }),
        Event::Serve(ServeEvent::Started {
            model: "pic-5".into(),
            max_batch: 16,
            max_wait_us: 500,
            queue_cap: 256,
        }),
        Event::Serve(ServeEvent::Snapshot {
            requests: 90,
            graphs: 410,
            flushes: 30,
            shed: 2,
            queue_depth_max: 48,
            batch_fill: 0.85,
            p50_us: 220,
            p99_us: 900,
        }),
        Event::Serve(ServeEvent::RefreshStarted { ordinal: 1, examples: 64 }),
        Event::Serve(ServeEvent::CandidateReady {
            ordinal: 1,
            name: "pic-5+r1".into(),
            fingerprint: 0xF00D,
        }),
        Event::Serve(ServeEvent::SwapInstalled {
            epoch: 2,
            name: "pic-5+r1".into(),
            fingerprint: 0xF00D,
        }),
        Event::Serve(ServeEvent::SwapRejected { epoch: 3, reason: "non-finite weights".into() }),
        Event::Serve(ServeEvent::SwapRolledBack {
            epoch: 4,
            candidate_ap: 0.31,
            incumbent_ap: 0.78,
        }),
        Event::Serve(ServeEvent::Stopped { requests: 90, graphs: 410, swaps: 1 }),
        Event::Fleet(FleetEvent::Started { workers: 4, shards: 4, stream_len: 64, resumed: true }),
        Event::Fleet(FleetEvent::ShardLeased {
            shard: 2,
            worker: 1,
            generation: 0,
            deadline_ms: 500,
        }),
        Event::Fleet(FleetEvent::LeaseExpired { shard: 2, worker: 1, deadline_ms: 500 }),
        Event::Fleet(FleetEvent::WorkerLost {
            worker: 1,
            shard: 2,
            detail: "missed heartbeat".into(),
        }),
        Event::Fleet(FleetEvent::ShardStolen {
            shard: 2,
            from_worker: 1,
            to_worker: 3,
            generation: 1,
            resume_position: 9,
        }),
        Event::Fleet(FleetEvent::ShardCompleted { shard: 2, worker: 3, executions: 40, races: 7 }),
        Event::Fleet(FleetEvent::ShardQuarantined { shard: 0, generations: 3 }),
        Event::Fleet(FleetEvent::WorkerSpawned { worker: 1, pid: 4242, attempt: 0 }),
        Event::Fleet(FleetEvent::WorkerHandshakeFailed {
            worker: 1,
            attempt: 1,
            detail: "handshake timed out after 100ms".into(),
        }),
        Event::Fleet(FleetEvent::WorkerRespawned { worker: 1, attempt: 2, backoff_ms: 400 }),
        Event::Fleet(FleetEvent::WorkerCrashLoop {
            worker: 1,
            deaths: 4,
            detail: "exit status 8; no progress since last checkpoint".into(),
        }),
        Event::Fleet(FleetEvent::FleetDegraded { live_workers: 1, min_workers: 2 }),
        Event::Fleet(FleetEvent::CheckpointWritten {
            path: "fleet.scfc".into(),
            done_shards: 3,
            ordinal: 2,
            rotated: true,
        }),
        Event::Fleet(FleetEvent::Finished {
            shards: 4,
            steals: 1,
            reexecutions: 1,
            lost_workers: 1,
            quarantined_shards: 1,
            executions: 160,
            races: 21,
        }),
    ]
}

fn to_records(events: Vec<Event>) -> Vec<EventRecord> {
    events
        .into_iter()
        .enumerate()
        .map(|(i, event)| EventRecord {
            v: EVENT_SCHEMA_VERSION,
            seq: i as u64,
            t_us: (i as u64) * 17,
            event: event.sanitized(),
        })
        .collect()
}

fn write_stream(records: &[EventRecord], dropped: u64) -> String {
    let mut w = JsonlWriter::new(Vec::new());
    for r in records {
        w.write_record(r).expect("vec write");
    }
    String::from_utf8(w.finish(dropped).expect("vec write")).expect("json is utf-8")
}

#[test]
fn every_variant_roundtrips_bit_exactly() {
    let records = to_records(one_of_each());
    let text = write_stream(&records, 3);
    let summary = read_stream(&text);
    assert!(summary.is_clean(), "issues: {:?}", summary.issues);
    assert_eq!(summary.records, records);
    assert_eq!(summary.dropped, 3);
}

#[test]
fn non_finite_floats_are_sanitized_not_null() {
    // The vendored serde_json writes non-finite floats as `null`, which
    // would fail to parse back as f64 — sanitization must zero them first.
    let records = to_records(vec![
        Event::Campaign(CampaignEvent::Finished {
            label: "pct".into(),
            executions: 1,
            inferences: 0,
            races: 0,
            harmful_races: 0,
            blocks: 0,
            bugs: 0,
            quarantined: 0,
            sim_hours: f64::NAN,
        }),
        Event::Train(TrainEvent::EpochCompleted {
            epoch: 0,
            attempt: 0,
            loss: f64::INFINITY,
            val_ap: Some(f64::NEG_INFINITY),
        }),
        Event::Serve(ServeEvent::SwapRolledBack {
            epoch: 1,
            candidate_ap: f64::NAN,
            incumbent_ap: f64::INFINITY,
        }),
    ]);
    let text = write_stream(&records, 0);
    let summary = read_stream(&text);
    assert!(summary.is_clean(), "issues: {:?}", summary.issues);
    match &summary.records[0].event {
        Event::Campaign(CampaignEvent::Finished { sim_hours, .. }) => assert_eq!(*sim_hours, 0.0),
        other => panic!("wrong event: {other:?}"),
    }
    match &summary.records[1].event {
        Event::Train(TrainEvent::EpochCompleted { loss, val_ap, .. }) => {
            assert_eq!(*loss, 0.0);
            assert_eq!(*val_ap, Some(0.0));
        }
        other => panic!("wrong event: {other:?}"),
    }
    match &summary.records[2].event {
        Event::Serve(ServeEvent::SwapRolledBack { candidate_ap, incumbent_ap, .. }) => {
            assert_eq!(*candidate_ap, 0.0);
            assert_eq!(*incumbent_ap, 0.0);
        }
        other => panic!("wrong event: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_streams_roundtrip(events in proptest::collection::vec(arb_event(), 1..30),
                                   dropped in 0u64..100) {
        let records = to_records(events);
        let text = write_stream(&records, dropped);
        let summary = read_stream(&text);
        prop_assert!(summary.is_clean(), "issues: {:?}", summary.issues);
        prop_assert_eq!(summary.records, records);
        prop_assert_eq!(summary.dropped, dropped);
    }

    #[test]
    fn truncated_streams_are_detected(events in proptest::collection::vec(arb_event(), 1..10),
                                      cut_frac in 0.0f64..1.0) {
        let records = to_records(events);
        let text = write_stream(&records, 0);
        // Cut anywhere short of the full stream: the torn tail, the missing
        // footer, or the count mismatch must surface as an issue.
        let cut = ((text.len() - 1) as f64 * cut_frac) as usize;
        let torn: String = text.chars().take(cut).collect();
        let summary = read_stream(&torn);
        prop_assert!(!summary.is_clean(), "undetected truncation at {} of {}", cut, text.len());
    }

    #[test]
    fn bit_flips_are_detected(events in proptest::collection::vec(arb_event(), 1..10),
                              pos_frac in 0.0f64..1.0, bit in 0u8..7) {
        let records = to_records(events);
        let mut raw = write_stream(&records, 0).into_bytes();
        let pos = ((raw.len() - 1) as f64 * pos_frac) as usize;
        raw[pos] ^= 1 << bit;
        // A flip that produces invalid UTF-8 is skipped: the reader works on
        // &str, so such corruption is caught upstream at file-read time.
        if let Ok(text) = String::from_utf8(raw) {
            // The body hash (FNV-1a over exact line bytes) or the CRC-framed
            // footer must catch any single-bit flip.
            prop_assert!(!read_stream(&text).is_clean(), "undetected bit flip at byte {pos}");
        }
    }
}
