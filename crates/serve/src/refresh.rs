//! Online model refresh: fine-tune on freshly executed CTs and offer the
//! result to the server's hot-swap gate.
//!
//! The refresher is the training half of predictor-as-a-service. A
//! campaign pushes each accepted concurrency-test execution into a
//! [`CtFeed`]; the refresher drains the feed, and once enough fresh pairs
//! have accumulated it builds a labeled dataset from them (executing the
//! schedules exactly as offline training does), fine-tunes a copy of the
//! currently served weights with [`snowcat_harness::robust_train`] — the
//! same anomaly-guarded trainer the offline pipeline uses — and offers the
//! candidate checkpoint to [`InferenceServer::try_swap`]. The swap gate,
//! not the refresher, decides whether the candidate ships: poisoned
//! weights are rejected outright and AP regressions are rolled back, so a
//! bad fine-tune can never degrade the serving path.

use crate::model::{ApGate, SwapOutcome};
use crate::server::InferenceServer;
use snowcat_cfg::KernelCfg;
use snowcat_corpus::{build_dataset, DatasetConfig, StiProfile};
use snowcat_events::ServeEvent;
use snowcat_harness::{CtFeed, RobustTrainConfig};
use snowcat_kernel::Kernel;
use snowcat_nn::{Checkpoint, LabeledGraph, TrainConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Refresh scheduling and fine-tune hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshConfig {
    /// Fresh CT pairs to accumulate before a refresh round starts.
    pub min_pairs: usize,
    /// Interleavings executed per pair when labeling the refresh dataset.
    pub interleavings_per_cti: usize,
    /// Fine-tune epochs per refresh round.
    pub epochs: usize,
    /// Fine-tune learning rate (typically well below the from-scratch
    /// rate: the incumbent is already trained).
    pub lr: f32,
    /// Fine-tune minibatch size.
    pub batch: usize,
    /// Base seed; each round salts it with its ordinal.
    pub seed: u64,
    /// Feed polling interval while below `min_pairs`.
    pub poll_ms: u64,
    /// Stop after this many refresh rounds (0 = unbounded, until `stop`).
    pub max_refreshes: u64,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        Self {
            min_pairs: 16,
            interleavings_per_cti: 4,
            epochs: 2,
            lr: 5e-3,
            batch: 8,
            seed: 0x5EED_F00D,
            poll_ms: 5,
            max_refreshes: 0,
        }
    }
}

/// What a refresher run accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct RefreshReport {
    /// Refresh rounds attempted.
    pub refreshes: u64,
    /// Candidates installed and kept.
    pub installed: u64,
    /// Candidates rejected before install.
    pub rejected: u64,
    /// Candidates installed then rolled back by the AP breaker.
    pub rolled_back: u64,
    /// Fresh CT pairs consumed from the feed.
    pub pairs_consumed: u64,
}

/// Drive refresh rounds until `stop` is set (and, past `max_refreshes`
/// rounds, sooner). Intended to run on its own thread next to a campaign;
/// leftover feed entries below the `min_pairs` threshold are abandoned at
/// stop rather than trained on (a final under-sized fine-tune is noise).
#[allow(clippy::too_many_arguments)]
pub fn run_refresher(
    server: &InferenceServer,
    feed: &CtFeed,
    kernel: &Kernel,
    kcfg: &KernelCfg,
    corpus: &[StiProfile],
    gate: &ApGate,
    rcfg: &RefreshConfig,
    stop: &AtomicBool,
) -> RefreshReport {
    let mut report = RefreshReport::default();
    let mut pending: Vec<(usize, usize)> = Vec::new();
    let min_pairs = rcfg.min_pairs.max(1);

    loop {
        pending.extend(feed.drain());
        if pending.len() < min_pairs {
            if stop.load(Ordering::Relaxed) {
                return report;
            }
            std::thread::sleep(Duration::from_millis(rcfg.poll_ms.max(1)));
            continue;
        }

        report.refreshes += 1;
        let ordinal = report.refreshes;
        let pairs: Vec<(usize, usize)> = std::mem::take(&mut pending);
        report.pairs_consumed += pairs.len() as u64;

        if let Some(outcome) =
            refresh_once(server, kernel, kcfg, corpus, &pairs, gate, rcfg, ordinal)
        {
            match outcome {
                SwapOutcome::Installed { .. } => report.installed += 1,
                SwapOutcome::Rejected { .. } => report.rejected += 1,
                SwapOutcome::RolledBack { .. } => report.rolled_back += 1,
            }
        }

        if stop.load(Ordering::Relaxed)
            || (rcfg.max_refreshes > 0 && report.refreshes >= rcfg.max_refreshes)
        {
            return report;
        }
    }
}

/// One refresh round: label the fresh pairs, fine-tune a copy of the
/// served weights, offer the candidate to the swap gate. Returns `None`
/// when the pairs produced no usable training examples.
#[allow(clippy::too_many_arguments)]
fn refresh_once(
    server: &InferenceServer,
    kernel: &Kernel,
    kcfg: &KernelCfg,
    corpus: &[StiProfile],
    pairs: &[(usize, usize)],
    gate: &ApGate,
    rcfg: &RefreshConfig,
    ordinal: u64,
) -> Option<SwapOutcome> {
    let incumbent = server.current_epoch();

    let ds = build_dataset(
        kernel,
        kcfg,
        corpus,
        pairs,
        DatasetConfig {
            interleavings_per_cti: rcfg.interleavings_per_cti.max(1),
            seed: rcfg.seed ^ ordinal,
        },
    );
    let train_set: Vec<LabeledGraph<'_>> =
        ds.examples.iter().map(|e| (&e.graph, e.labels.as_slice())).collect();
    if train_set.is_empty() {
        return None;
    }

    let valid = gate.labeled();
    let mut model = incumbent.model.clone();
    let tcfg = RobustTrainConfig::new(TrainConfig {
        epochs: rcfg.epochs.max(1),
        lr: rcfg.lr,
        batch: rcfg.batch.max(1),
        seed: rcfg.seed ^ ordinal.rotate_left(17),
        threads: 1,
    });
    if let Some(events) = server.events() {
        events.serve(ServeEvent::RefreshStarted { ordinal, examples: train_set.len() as u64 });
    }
    // An anomalous fine-tune (spike retries exhausted, divergence breaker)
    // aborts this round; the incumbent keeps serving untouched.
    snowcat_harness::robust_train(&mut model, &train_set, &valid, &tcfg, false).ok()?;

    let base = incumbent.name.split("+r").next().unwrap_or(&incumbent.name);
    // Keep the incumbent's tuned threshold: AP gating is threshold-free
    // and the refresh set is too small to re-tune F2 meaningfully.
    let candidate = Checkpoint::new(&model, incumbent.threshold, &format!("{base}+r{ordinal}"));
    if let Some(events) = server.events() {
        events.serve(ServeEvent::CandidateReady {
            ordinal,
            name: candidate.name.clone(),
            fingerprint: snowcat_core::checkpoint_fingerprint(&candidate),
        });
    }
    Some(server.try_swap(&candidate, gate))
}
