//! Glue: run a supervised MLPCT campaign whose inference goes through a
//! live [`InferenceServer`], optionally with an online refresher thread
//! fine-tuning on the campaign's own freshly executed CTs.
//!
//! The campaign side is unchanged plumbing: a [`snowcat_core::Pic`] still
//! builds the CT graphs (it borrows the kernel image), but the
//! [`snowcat_core::PredictorService`] routes inference through a
//! [`crate::ServerHandle`] instead of calling the model directly. Because
//! the server replays the exact per-graph computation of
//! [`snowcat_core::Pic::predict_batch`], a served campaign with refresh
//! disabled is bit-identical to a direct one.

use crate::model::ApGate;
use crate::refresh::{run_refresher, RefreshConfig, RefreshReport};
use crate::server::{InferenceServer, ServeConfig};
use crate::stats::ServingReport;
use snowcat_cfg::KernelCfg;
use snowcat_core::{
    CostModel, CoveragePredictor, ExploreConfig, Explorer, Pic, PredictorService, SnowcatError,
    StrategyKind,
};
use snowcat_corpus::StiProfile;
use snowcat_harness::{
    run_supervised_campaign, CampaignCheckpoint, CtFeed, SupervisedResult, SupervisorConfig,
};
use snowcat_kernel::Kernel;
use snowcat_nn::Checkpoint;
use std::sync::atomic::{AtomicBool, Ordering};

/// How to serve a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedCampaignConfig {
    /// Server tuning (batching, backpressure, workers).
    pub serve: ServeConfig,
    /// MLPCT candidate-selection strategy.
    pub strategy: StrategyKind,
    /// Online refresh; `None` serves a frozen model.
    pub refresh: Option<RefreshConfig>,
    /// Capacity of the fresh-CT feed between campaign and refresher
    /// (oldest pairs are dropped on overflow).
    pub feed_cap: usize,
}

impl Default for ServedCampaignConfig {
    fn default() -> Self {
        Self {
            serve: ServeConfig::default(),
            strategy: StrategyKind::S1,
            refresh: None,
            feed_cap: 1024,
        }
    }
}

/// Everything a served campaign produced.
#[derive(Debug)]
pub struct ServedCampaignOutcome {
    /// The supervised campaign result (races, history, recovery log).
    pub result: SupervisedResult,
    /// Final serving report (throughput, latency percentiles, swaps).
    pub serving: ServingReport,
    /// Refresher tally, when refresh was enabled.
    pub refresh: Option<RefreshReport>,
}

/// Run a supervised MLPCT campaign through a live inference server.
///
/// Starts the server on `checkpoint`, wires every accepted execution's CT
/// pair into a [`CtFeed`], runs the refresher (when configured) on a
/// sibling thread, and shuts the server down after the campaign — the
/// batcher drains every queued request first, so no prediction is lost at
/// the boundary.
#[allow(clippy::too_many_arguments)]
pub fn run_served_campaign(
    kernel: &Kernel,
    kcfg: &KernelCfg,
    corpus: &[StiProfile],
    stream: &[(usize, usize)],
    checkpoint: &Checkpoint,
    explore_cfg: &ExploreConfig,
    cost: &CostModel,
    sup: &SupervisorConfig,
    gate: &ApGate,
    scfg: &ServedCampaignConfig,
    resume: Option<CampaignCheckpoint>,
) -> Result<ServedCampaignOutcome, SnowcatError> {
    let mut server = InferenceServer::start(checkpoint, scfg.serve.clone(), sup.events.clone());
    let handle = server.handle();
    let pic = Pic::new(checkpoint, kernel, kcfg);

    let feed = CtFeed::bounded(scfg.feed_cap.max(1));
    let mut sup = sup.clone();
    if scfg.refresh.is_some() {
        sup.fresh_cts = Some(feed.clone());
    }

    let stop = AtomicBool::new(false);
    let (result, refresh) = crossbeam::thread::scope(|s| {
        let refresher = scfg.refresh.as_ref().map(|rcfg| {
            let server = &server;
            let feed = &feed;
            let stop = &stop;
            s.spawn(move |_| run_refresher(server, feed, kernel, kcfg, corpus, gate, rcfg, stop))
        });

        let service = PredictorService::with(&pic, &handle as &dyn CoveragePredictor);
        let explorer = Explorer::MlPct { service, strategy: scfg.strategy.build() };
        let result = run_supervised_campaign(
            kernel,
            corpus,
            stream,
            explorer,
            explore_cfg,
            cost,
            &sup,
            resume,
        );
        stop.store(true, Ordering::Relaxed);
        let refresh = refresher.map(|h| h.join().expect("refresher thread panicked"));
        (result, refresh)
    })
    .expect("served-campaign scope panicked");

    let serving = server.shutdown();
    Ok(ServedCampaignOutcome { result: result?, serving, refresh })
}
