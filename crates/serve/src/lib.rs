//! Predictor-as-a-service for the Snowcat reproduction.
//!
//! The offline pipeline deploys the learned coverage predictor as a value
//! owned by one campaign. This crate turns it into a **long-lived
//! in-process inference server** that many concurrent clients share:
//!
//! * [`InferenceServer`] owns the model behind an MPSC request queue
//!   drained by a batcher thread with **adaptive micro-batching** — a
//!   flush goes out when it fills ([`ServeConfig::max_batch`]) or when the
//!   oldest request ages out ([`ServeConfig::max_wait_us`]), whichever
//!   comes first. The queue is bounded; overload either blocks callers or
//!   sheds to inline prediction ([`OverloadPolicy`]).
//! * [`ServerHandle`] is the cloneable client. It implements
//!   [`snowcat_core::CoveragePredictor`], so campaigns, caches, and
//!   benches plug in unchanged — and served results are **bit-identical**
//!   to calling the model directly, for any batching schedule, because
//!   per-graph inference never depends on batch composition.
//! * [`SwapCell`] holds the served weights behind an arc-swap:
//!   [`InferenceServer::try_swap`] installs a refreshed checkpoint
//!   **atomically** (in-flight flushes finish on the epoch they hold),
//!   guarded by [`Checkpoint::sanity_check`] up front and an
//!   **AP-regression breaker** ([`ApGate`]) that rolls a degraded
//!   candidate back to the incumbent weights.
//! * [`run_refresher`] is the online-learning loop: it drains freshly
//!   executed CTs from a [`snowcat_harness::CtFeed`], fine-tunes the
//!   served weights with the anomaly-guarded trainer, and offers each
//!   candidate to the swap gate. [`run_served_campaign`] wires the whole
//!   thing to the fault-tolerant campaign supervisor.
//!
//! [`Checkpoint::sanity_check`]: snowcat_nn::Checkpoint::sanity_check

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod model;
pub mod refresh;
pub mod server;
pub mod stats;

pub use campaign::{run_served_campaign, ServedCampaignConfig, ServedCampaignOutcome};
pub use model::{ApGate, EpochPredictor, ModelEpoch, SwapCell, SwapOutcome};
pub use refresh::{run_refresher, RefreshConfig, RefreshReport};
pub use server::{InferenceServer, OverloadPolicy, ServeConfig, ServerHandle};
pub use stats::{LatencyHistogram, ServingReport};
