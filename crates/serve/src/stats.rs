//! Lock-free serving telemetry: a log2-bucketed latency histogram and the
//! JSON-friendly [`ServingReport`] snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets. Bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 additionally holds 0µs), so 40
/// buckets span sub-microsecond to ~12.7 days — every latency this harness
/// can produce.
const BUCKETS: usize = 40;

/// Fixed-size log2 histogram of per-request latencies in microseconds.
///
/// Recording is a single relaxed atomic increment, so callers and the
/// batcher can record concurrently without a lock. Percentiles are
/// approximate (bucket upper bound), which is plenty for SLO accounting —
/// the error is at most 2x, uniform across the distribution's tail.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    fn bucket_of(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((63 - us.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Record one latency sample.
    pub fn record(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `p`-th percentile (0.0..=1.0) as the upper bound of the bucket
    /// containing it, in microseconds. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank of the sample we want, 1-based; p=1.0 picks the last sample.
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i: 2^(i+1) - 1, except bucket 0
                // whose lower edge also covers 0µs.
                return if i == 0 { 1 } else { (1u64 << (i + 1)) - 1 };
            }
        }
        (1u64 << BUCKETS) - 1
    }
}

/// Point-in-time summary of a server's activity, suitable for events,
/// benches, and the CLI (hence `Serialize`).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ServingReport {
    /// Requests admitted (including shed ones).
    pub requests: u64,
    /// Graphs predicted.
    pub graphs: u64,
    /// Batches flushed by the batcher.
    pub flushes: u64,
    /// Requests served inline because the queue was full (Shed policy) or
    /// the server was stopping.
    pub shed: u64,
    /// High-water mark of queued graphs.
    pub queue_depth_max: u64,
    /// Mean flush fill ratio: coalesced graphs / (flushes * max_batch).
    pub batch_fill: f64,
    /// Median per-request latency, microseconds (bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile per-request latency, microseconds.
    pub p99_us: u64,
    /// Model swaps installed so far (rollbacks do not subtract).
    pub swaps: u64,
    /// Epoch ordinal of the currently served model.
    pub epoch: u64,
    /// Name of the currently served model.
    pub model_name: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), 0, "empty histogram reports 0");
        for us in [3u64, 3, 3, 3, 3, 3, 3, 3, 3, 900] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        // p50 lands in the [2,4) bucket -> upper bound 3.
        assert_eq!(h.percentile(0.5), 3);
        // p99 of 10 samples is the max -> 900 lives in [512,1024) -> 1023.
        assert_eq!(h.percentile(0.99), 1023);
        // Bounds are monotone in p.
        assert!(h.percentile(0.1) <= h.percentile(0.9));
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(0.0), 1);
        assert!(h.percentile(1.0) > 1);
    }
}
