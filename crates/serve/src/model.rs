//! Owned model snapshots and the atomic hot-swap cell.
//!
//! The deployed [`snowcat_core::Pic`] borrows the kernel image for graph
//! construction, which would tie a long-lived server thread to a stack
//! frame. Serving therefore splits the two roles: graph building stays on
//! the campaign side (through [`snowcat_core::PredictorService`]), while the
//! server owns a fully `'static` [`ModelEpoch`] — restored weights, tuned
//! threshold, fingerprint — behind a [`SwapCell`].
//!
//! A swap replaces the `Arc<ModelEpoch>` under a write lock: flushes that
//! already cloned the old `Arc` finish on the old weights, every later
//! flush picks up the new ones, and nothing is ever predicted on a
//! half-written model. The previous epoch is retained so the AP-regression
//! gate can roll a bad candidate back.

use parking_lot::{Mutex, RwLock};
use snowcat_core::{checkpoint_fingerprint, CoveragePredictor, PredictedCoverage, PredictorStats};
use snowcat_graph::CtGraph;
use snowcat_nn::{urb_average_precision, Checkpoint, LabeledGraph, PicModel, PicSession};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One immutable generation of the served model. Everything a flush needs
/// to predict is owned here, so a flush holding an `Arc<ModelEpoch>` is
/// unaffected by concurrent swaps.
pub struct ModelEpoch {
    /// Restored weights.
    pub model: PicModel,
    /// Tuned classification threshold.
    pub threshold: f32,
    /// Content fingerprint (same derivation as a direct `Pic` deployment,
    /// so caches keyed on the server see the same keys as caches keyed on
    /// the underlying model).
    pub fingerprint: u64,
    /// Provenance name of the checkpoint.
    pub name: String,
    /// Swap ordinal: 0 for the initial model, incremented per install.
    pub epoch: u64,
}

impl ModelEpoch {
    /// Snapshot a checkpoint into a serveable epoch.
    pub fn from_checkpoint(ck: &Checkpoint, epoch: u64) -> Self {
        Self {
            model: ck.restore(),
            threshold: ck.threshold,
            fingerprint: checkpoint_fingerprint(ck),
            name: ck.name.clone(),
            epoch,
        }
    }

    /// Predict a batch — the exact computation of
    /// [`snowcat_core::Pic::predict_batch`]: one scratch session for the
    /// batch, `forward_into` per graph, threshold compare. Per-graph output
    /// depends only on (weights, graph), never on batch composition, which
    /// is what makes arbitrary server-side coalescing bit-identical to a
    /// direct call.
    pub fn predict(&self, graphs: &[CtGraph]) -> Vec<PredictedCoverage> {
        let mut session = PicSession::new();
        graphs
            .iter()
            .map(|graph| {
                let mut probs = Vec::new();
                self.model.forward_into(graph, &mut session, &mut probs);
                let positive = probs.iter().map(|&p| p >= self.threshold).collect();
                PredictedCoverage { graph: graph.clone(), probs, positive }
            })
            .collect()
    }
}

/// [`CoveragePredictor`] adapter over an epoch, used to fan a flush out
/// through [`snowcat_core::ParallelPredictor`]. Counters live on the server
/// (this adapter reports zeros so wrapper stats never double-count).
pub struct EpochPredictor {
    epoch: Arc<ModelEpoch>,
}

impl EpochPredictor {
    /// Wrap an epoch snapshot.
    pub fn new(epoch: Arc<ModelEpoch>) -> Self {
        Self { epoch }
    }
}

impl CoveragePredictor for EpochPredictor {
    fn predict_batch(&self, graphs: &[CtGraph]) -> Vec<PredictedCoverage> {
        self.epoch.predict(graphs)
    }

    fn stats(&self) -> PredictorStats {
        PredictorStats::new()
    }

    fn fingerprint(&self) -> u64 {
        self.epoch.fingerprint
    }

    fn name(&self) -> String {
        self.epoch.name.clone()
    }
}

/// The arc-swap holding the served model. Readers clone the current
/// `Arc<ModelEpoch>` under a read lock (nanoseconds, never blocked by
/// inference); a swap takes the write lock only for the pointer exchange.
pub struct SwapCell {
    current: RwLock<Arc<ModelEpoch>>,
    /// The epoch displaced by the most recent install, kept for rollback.
    previous: Mutex<Option<Arc<ModelEpoch>>>,
    /// Next install's ordinal.
    next_epoch: AtomicU64,
    /// Successful installs (including ones later rolled back).
    installs: AtomicU64,
}

impl SwapCell {
    /// Start serving `initial` as epoch 0.
    pub fn new(initial: ModelEpoch) -> Self {
        Self {
            current: RwLock::new(Arc::new(initial)),
            previous: Mutex::new(None),
            next_epoch: AtomicU64::new(1),
            installs: AtomicU64::new(0),
        }
    }

    /// The epoch new flushes will use. In-flight flushes keep whatever
    /// `Arc` they already cloned.
    pub fn current(&self) -> Arc<ModelEpoch> {
        self.current.read().clone()
    }

    /// Installs so far (rollbacks do not subtract).
    pub fn installs(&self) -> u64 {
        self.installs.load(Ordering::Relaxed)
    }

    /// Claim the next epoch ordinal.
    pub(crate) fn claim_epoch(&self) -> u64 {
        self.next_epoch.fetch_add(1, Ordering::Relaxed)
    }

    /// Atomically publish `candidate`, retaining the displaced epoch for
    /// rollback.
    pub(crate) fn install(&self, candidate: ModelEpoch) {
        let displaced = {
            let mut cur = self.current.write();
            std::mem::replace(&mut *cur, Arc::new(candidate))
        };
        *self.previous.lock() = Some(displaced);
        self.installs.fetch_add(1, Ordering::Relaxed);
    }

    /// Restore the epoch displaced by the last install. Returns false when
    /// there is nothing to roll back to.
    pub(crate) fn rollback(&self) -> bool {
        match self.previous.lock().take() {
            Some(prev) => {
                *self.current.write() = prev;
                true
            }
            None => false,
        }
    }
}

/// What [`crate::InferenceServer::try_swap`] did with a candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum SwapOutcome {
    /// Candidate passed the gate and is now serving.
    Installed {
        /// Its swap ordinal.
        epoch: u64,
    },
    /// Candidate was refused before install (it never served a prediction).
    Rejected {
        /// The ordinal the candidate would have had.
        epoch: u64,
        /// Why the gate refused it.
        reason: String,
    },
    /// Candidate was installed, then the AP-regression breaker fired and
    /// the previous weights were restored.
    RolledBack {
        /// The candidate's (revoked) ordinal.
        epoch: u64,
        /// Candidate's validation AP.
        candidate_ap: f64,
        /// The incumbent's validation AP it failed to match.
        incumbent_ap: f64,
    },
}

/// The swap gate: a held-out validation set plus a regression tolerance.
///
/// Gating is two-phase. Before install, [`Checkpoint::sanity_check`]
/// refuses structurally poisoned candidates (non-finite weights, bogus
/// threshold) outright. After install, the breaker evaluates URB average
/// precision on the held-out set and rolls back when the candidate is worse
/// than `incumbent_ap - tolerance` — mirroring how the
/// `ResilientPredictor` breaker degrades after observing failures rather
/// than predicting them.
pub struct ApGate {
    valid: Vec<(CtGraph, Vec<bool>)>,
    tolerance: f64,
}

impl ApGate {
    /// Gate on `valid` (graph, per-vertex labels) with an allowed AP drop
    /// of `tolerance`.
    pub fn new(valid: Vec<(CtGraph, Vec<bool>)>, tolerance: f64) -> Self {
        Self { valid, tolerance: tolerance.max(0.0) }
    }

    /// A gate with no validation data: sanity checks still apply, the AP
    /// breaker never fires.
    pub fn disabled() -> Self {
        Self { valid: Vec::new(), tolerance: 0.0 }
    }

    /// Allowed AP drop before the breaker fires.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Number of held-out validation graphs.
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    /// Whether the AP breaker is inert (no validation data).
    pub fn is_empty(&self) -> bool {
        self.valid.is_empty()
    }

    /// Validation URB average precision of `model`, `None` when the gate
    /// holds no data.
    pub fn ap(&self, model: &PicModel) -> Option<f64> {
        if self.valid.is_empty() {
            return None;
        }
        let refs: Vec<LabeledGraph<'_>> =
            self.valid.iter().map(|(g, y)| (g, y.as_slice())).collect();
        Some(urb_average_precision(model, &refs))
    }

    /// Borrow the validation set as labeled references (for refresh
    /// fine-tunes that validate against the same held-out data the gate
    /// judges with).
    pub fn labeled(&self) -> Vec<LabeledGraph<'_>> {
        self.valid.iter().map(|(g, y)| (g, y.as_slice())).collect()
    }
}
