//! The in-process inference server: an MPSC request queue drained by a
//! batcher thread with adaptive micro-batching.
//!
//! # Batching policy
//!
//! The batcher flushes when either trigger fires, whichever comes first:
//!
//! * **fill** — queued graphs reach [`ServeConfig::max_batch`], or
//! * **age** — the oldest queued request has waited
//!   [`ServeConfig::max_wait_us`].
//!
//! Under load the queue stays full and every flush goes out at capacity
//! (maximum throughput); when traffic is sparse a lone request waits at
//! most `max_wait_us` before being flushed alone (bounded latency). Whole
//! requests are never split across flushes, so a caller's
//! `predict_batch` result is always produced by a single model epoch — a
//! hot swap can never hand one caller a torn mix of old and new weights.
//!
//! # Backpressure
//!
//! The queue is bounded at [`ServeConfig::queue_cap`] graphs. When it is
//! full, [`OverloadPolicy::Block`] parks the caller until the batcher
//! drains (lossless, campaign default), while [`OverloadPolicy::Shed`]
//! predicts inline on the caller's thread against the current model
//! snapshot — the request still succeeds (the [`CoveragePredictor`]
//! contract has no error channel) but skips the queue and is counted in
//! [`crate::ServingReport::shed`]. A request larger than the whole queue
//! is always admitted alone rather than deadlocking.
//!
//! The queue uses `std::sync::{Mutex, Condvar}` rather than the vendored
//! `parking_lot` (which carries no condvar), matching the event sink's
//! idiom.

use crate::model::{ApGate, EpochPredictor, ModelEpoch, SwapCell, SwapOutcome};
use crate::stats::{LatencyHistogram, ServingReport};
use snowcat_core::{CoveragePredictor, ParallelPredictor, PredictedCoverage, PredictorStats};
use snowcat_events::{EventSink, ServeEvent};
use snowcat_graph::CtGraph;
use snowcat_nn::Checkpoint;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What to do with a request that does not fit the bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Park the caller until the batcher frees capacity (lossless).
    Block,
    /// Serve the request inline on the caller's thread, bypassing the
    /// queue. Counted as shed; the result is still bit-identical.
    Shed,
}

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Flush as soon as this many graphs are queued.
    pub max_batch: usize,
    /// Flush the oldest request after it has waited this long, µs.
    pub max_wait_us: u64,
    /// Bounded-queue capacity in graphs.
    pub queue_cap: usize,
    /// Policy when the queue is full.
    pub overload: OverloadPolicy,
    /// Inference worker threads per flush (1 = serial in the batcher).
    pub workers: usize,
    /// Advisory p99 latency objective, µs (reported, not enforced).
    pub slo_p99_us: u64,
    /// Emit a [`ServeEvent::Snapshot`] every this many flushes (0 = never).
    pub snapshot_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait_us: 500,
            queue_cap: 256,
            overload: OverloadPolicy::Block,
            workers: 1,
            slo_p99_us: 50_000,
            snapshot_every: 64,
        }
    }
}

impl ServeConfig {
    fn normalized(mut self) -> Self {
        self.max_batch = self.max_batch.max(1);
        self.queue_cap = self.queue_cap.max(self.max_batch);
        self.workers = self.workers.max(1);
        self
    }
}

/// Rendezvous cell a caller parks on until its flush completes.
#[derive(Default)]
struct Slot {
    result: Mutex<Option<Vec<PredictedCoverage>>>,
    ready: Condvar,
}

struct Request {
    graphs: Vec<CtGraph>,
    slot: Arc<Slot>,
    enqueued: Instant,
}

#[derive(Default)]
struct Queue {
    pending: VecDeque<Request>,
    pending_graphs: usize,
    stopped: bool,
}

struct Shared {
    cfg: ServeConfig,
    q: Mutex<Queue>,
    not_empty: Condvar,
    not_full: Condvar,
    model: SwapCell,
    /// Serializes `try_swap` callers so install/gate/rollback is one
    /// transaction.
    swap_serial: parking_lot::Mutex<()>,
    requests: AtomicU64,
    inferences: AtomicU64,
    coalesced: AtomicU64,
    flushes: AtomicU64,
    flush_capacity: AtomicU64,
    shed: AtomicU64,
    queue_depth_max: AtomicU64,
    latency: LatencyHistogram,
    events: Option<EventSink>,
}

impl Shared {
    fn emit(&self, e: ServeEvent) {
        if let Some(s) = &self.events {
            s.serve(e);
        }
    }

    /// Predict on the caller's thread against the current epoch, counted
    /// as shed. Used by the Shed policy and after shutdown, so a handle
    /// never deadlocks and never returns a wrong-length result.
    fn predict_inline(&self, graphs: &[CtGraph]) -> Vec<PredictedCoverage> {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.inferences.fetch_add(graphs.len() as u64, Ordering::Relaxed);
        let start = Instant::now();
        let out = self.model.current().predict(graphs);
        self.latency.record(start.elapsed().as_micros() as u64);
        out
    }

    /// Run one coalesced batch through the current model epoch and deliver
    /// per-request slices back to the parked callers.
    fn flush(&self, mut batch: Vec<Request>) {
        let epoch = self.model.current();
        // Move the graphs out of the requests rather than cloning them —
        // the batch is consumed here, and per-request lengths are all the
        // delivery loop needs.
        let sizes: Vec<usize> = batch.iter().map(|r| r.graphs.len()).collect();
        let graphs: Vec<CtGraph> =
            batch.iter_mut().flat_map(|r| std::mem::take(&mut r.graphs)).collect();
        let preds = if self.cfg.workers > 1 {
            ParallelPredictor::new(EpochPredictor::new(epoch), self.cfg.workers)
                .predict_batch(&graphs)
        } else {
            epoch.predict(&graphs)
        };
        debug_assert_eq!(preds.len(), graphs.len());

        // Account the flush before waking any caller, so a caller that
        // reads `stats()` right after its result arrives sees counters
        // that already include its own flush.
        let n = graphs.len() as u64;
        self.inferences.fetch_add(n, Ordering::Relaxed);
        self.coalesced.fetch_add(n, Ordering::Relaxed);
        self.flush_capacity.fetch_add(self.cfg.max_batch as u64, Ordering::Relaxed);
        let flushes = self.flushes.fetch_add(1, Ordering::Relaxed) + 1;

        let done = Instant::now();
        let mut it = preds.into_iter();
        for (req, size) in batch.into_iter().zip(sizes) {
            let part: Vec<PredictedCoverage> = it.by_ref().take(size).collect();
            let us = done.saturating_duration_since(req.enqueued).as_micros() as u64;
            self.latency.record(us);
            let mut slot = req.slot.result.lock().unwrap();
            *slot = Some(part);
            req.slot.ready.notify_all();
        }

        if self.cfg.snapshot_every > 0 && flushes.is_multiple_of(self.cfg.snapshot_every) {
            self.emit(self.snapshot_event());
        }
    }

    fn batch_fill(&self) -> f64 {
        let cap = self.flush_capacity.load(Ordering::Relaxed);
        if cap == 0 {
            0.0
        } else {
            self.coalesced.load(Ordering::Relaxed) as f64 / cap as f64
        }
    }

    fn snapshot_event(&self) -> ServeEvent {
        ServeEvent::Snapshot {
            requests: self.requests.load(Ordering::Relaxed),
            graphs: self.inferences.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            queue_depth_max: self.queue_depth_max.load(Ordering::Relaxed),
            batch_fill: self.batch_fill(),
            p50_us: self.latency.percentile(0.5),
            p99_us: self.latency.percentile(0.99),
        }
    }

    fn report(&self) -> ServingReport {
        let cur = self.model.current();
        ServingReport {
            requests: self.requests.load(Ordering::Relaxed),
            graphs: self.inferences.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            queue_depth_max: self.queue_depth_max.load(Ordering::Relaxed),
            batch_fill: self.batch_fill(),
            p50_us: self.latency.percentile(0.5),
            p99_us: self.latency.percentile(0.99),
            swaps: self.model.installs(),
            epoch: cur.epoch,
            model_name: cur.name.clone(),
        }
    }
}

/// The batcher thread body: wait for work, age the oldest request up to
/// the adaptive deadline, drain whole requests up to `max_batch` graphs,
/// flush outside the lock. Exits only once stopped *and* drained, so
/// shutdown never strands a parked caller.
fn batcher_loop(shared: Arc<Shared>) {
    loop {
        let batch: Vec<Request> = {
            let mut q = shared.q.lock().unwrap();
            // Phase 1: wait until there is at least one request.
            while q.pending.is_empty() {
                if q.stopped {
                    return;
                }
                q = shared.not_empty.wait(q).unwrap();
            }
            // Phase 2: adaptive micro-batching — hold the flush until the
            // batch fills or the oldest request's deadline passes.
            let deadline = q.pending.front().expect("non-empty").enqueued
                + Duration::from_micros(shared.cfg.max_wait_us);
            while q.pending_graphs < shared.cfg.max_batch && !q.stopped {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timeout) = shared.not_empty.wait_timeout(q, deadline - now).unwrap();
                q = guard;
            }
            // Phase 3: drain whole requests up to max_batch graphs. An
            // oversized request (> max_batch graphs) flushes alone.
            let mut batch = Vec::new();
            let mut graphs = 0usize;
            while let Some(front) = q.pending.front() {
                let n = front.graphs.len();
                if !batch.is_empty() && graphs + n > shared.cfg.max_batch {
                    break;
                }
                let req = q.pending.pop_front().expect("front exists");
                q.pending_graphs -= n;
                graphs += n;
                batch.push(req);
                if graphs >= shared.cfg.max_batch {
                    break;
                }
            }
            batch
        };
        shared.not_full.notify_all();
        shared.flush(batch);
    }
}

/// Cloneable, thread-safe client of a running [`InferenceServer`].
///
/// Implements [`CoveragePredictor`], so it plugs into everything that
/// takes one — [`snowcat_core::PredictorService`], campaign explorers,
/// caches — while the server coalesces requests from any number of
/// concurrent handles into shared flushes.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle").field("name", &self.name()).finish()
    }
}

impl ServerHandle {
    /// Point-in-time serving report (same data as the owning server's).
    pub fn report(&self) -> ServingReport {
        self.shared.report()
    }
}

impl CoveragePredictor for ServerHandle {
    fn predict_batch(&self, graphs: &[CtGraph]) -> Vec<PredictedCoverage> {
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        if graphs.is_empty() {
            return Vec::new();
        }
        let n = graphs.len();
        let slot = Arc::new(Slot::default());
        // Copy the graphs before touching the queue: the clone is the
        // expensive part of admission, and doing it under the mutex would
        // serialize every caller (and the batcher's drain) behind it.
        let owned = graphs.to_vec();
        {
            let mut q = self.shared.q.lock().unwrap();
            loop {
                if q.stopped {
                    drop(q);
                    return self.shared.predict_inline(graphs);
                }
                // Admit when the request fits, or unconditionally when the
                // queue is empty (an oversized request must not deadlock).
                if q.pending_graphs + n <= self.shared.cfg.queue_cap || q.pending.is_empty() {
                    break;
                }
                match self.shared.cfg.overload {
                    OverloadPolicy::Block => {
                        q = self.shared.not_full.wait(q).unwrap();
                    }
                    OverloadPolicy::Shed => {
                        drop(q);
                        return self.shared.predict_inline(graphs);
                    }
                }
            }
            q.pending.push_back(Request {
                graphs: owned,
                slot: slot.clone(),
                enqueued: Instant::now(),
            });
            q.pending_graphs += n;
            self.shared.queue_depth_max.fetch_max(q.pending_graphs as u64, Ordering::Relaxed);
        }
        self.shared.not_empty.notify_one();

        let mut result = slot.result.lock().unwrap();
        while result.is_none() {
            result = slot.ready.wait(result).unwrap();
        }
        result.take().expect("checked Some")
    }

    fn stats(&self) -> PredictorStats {
        let s = &self.shared;
        let mut out = PredictorStats::of_inference_counts(
            s.inferences.load(Ordering::Relaxed),
            s.requests.load(Ordering::Relaxed),
        );
        out.add_serving(
            s.queue_depth_max.load(Ordering::Relaxed),
            s.coalesced.load(Ordering::Relaxed),
            s.flushes.load(Ordering::Relaxed),
            s.flush_capacity.load(Ordering::Relaxed),
            s.shed.load(Ordering::Relaxed),
        );
        out
    }

    fn fingerprint(&self) -> u64 {
        // The served model's fingerprint, so caches keyed on this handle
        // invalidate naturally across a hot swap.
        self.shared.model.current().fingerprint
    }

    fn name(&self) -> String {
        let cur = self.shared.model.current();
        format!(
            "serve(batch<={},{}us,{})",
            self.shared.cfg.max_batch, self.shared.cfg.max_wait_us, cur.name
        )
    }
}

/// The long-lived inference server: owns the model behind a [`SwapCell`]
/// and the batcher thread draining the request queue.
pub struct InferenceServer {
    shared: Arc<Shared>,
    batcher: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for InferenceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceServer").field("report", &self.shared.report()).finish()
    }
}

impl InferenceServer {
    /// Start serving `checkpoint` under `cfg`, emitting serving events to
    /// `events` when provided.
    pub fn start(checkpoint: &Checkpoint, cfg: ServeConfig, events: Option<EventSink>) -> Self {
        let cfg = cfg.normalized();
        let shared = Arc::new(Shared {
            model: SwapCell::new(ModelEpoch::from_checkpoint(checkpoint, 0)),
            swap_serial: parking_lot::Mutex::new(()),
            q: Mutex::new(Queue::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            requests: AtomicU64::new(0),
            inferences: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            flush_capacity: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queue_depth_max: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            events,
            cfg,
        });
        shared.emit(ServeEvent::Started {
            model: checkpoint.name.clone(),
            max_batch: shared.cfg.max_batch as u64,
            max_wait_us: shared.cfg.max_wait_us,
            queue_cap: shared.cfg.queue_cap as u64,
        });
        let batcher = {
            let shared = shared.clone();
            std::thread::spawn(move || batcher_loop(shared))
        };
        Self { shared, batcher: Some(batcher) }
    }

    /// A new client handle. Handles stay valid after `shutdown` (they fall
    /// back to inline prediction).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: self.shared.clone() }
    }

    /// The epoch currently being served.
    pub fn current_epoch(&self) -> Arc<ModelEpoch> {
        self.shared.model.current()
    }

    /// Point-in-time serving report.
    pub fn report(&self) -> ServingReport {
        self.shared.report()
    }

    /// The event sink serving events go to, when one was provided.
    pub fn events(&self) -> Option<&EventSink> {
        self.shared.events.as_ref()
    }

    /// Offer `candidate` as the next served model.
    ///
    /// The swap is one serialized transaction: (1) a structurally broken
    /// candidate (non-finite weights, bogus threshold) is **rejected**
    /// before install; (2) otherwise the candidate is installed atomically
    /// — in-flight flushes finish on the epoch they already hold; (3) when
    /// `gate` carries validation data, the AP-regression breaker compares
    /// candidate vs. incumbent and **rolls back** to the incumbent's
    /// weights if the candidate is worse by more than the gate tolerance.
    pub fn try_swap(&self, candidate: &Checkpoint, gate: &ApGate) -> SwapOutcome {
        let shared = &self.shared;
        let _serial = shared.swap_serial.lock();
        let epoch_no = shared.model.claim_epoch();

        if let Err(reason) = candidate.sanity_check() {
            shared.emit(ServeEvent::SwapRejected { epoch: epoch_no, reason: reason.clone() });
            return SwapOutcome::Rejected { epoch: epoch_no, reason };
        }

        let incumbent = shared.model.current();
        let cand = ModelEpoch::from_checkpoint(candidate, epoch_no);
        let (name, fingerprint) = (cand.name.clone(), cand.fingerprint);
        shared.model.install(cand);
        shared.emit(ServeEvent::SwapInstalled { epoch: epoch_no, name, fingerprint });

        if !gate.is_empty() {
            let installed = shared.model.current();
            let candidate_ap = gate.ap(&installed.model).expect("gate non-empty");
            let incumbent_ap = gate.ap(&incumbent.model).expect("gate non-empty");
            if candidate_ap + gate.tolerance() < incumbent_ap {
                shared.model.rollback();
                shared.emit(ServeEvent::SwapRolledBack {
                    epoch: epoch_no,
                    candidate_ap,
                    incumbent_ap,
                });
                return SwapOutcome::RolledBack { epoch: epoch_no, candidate_ap, incumbent_ap };
            }
        }
        SwapOutcome::Installed { epoch: epoch_no }
    }

    /// Stop the batcher after draining every queued request (no prediction
    /// is ever dropped), emit [`ServeEvent::Stopped`], and return the final
    /// report. Idempotent.
    pub fn shutdown(&mut self) -> ServingReport {
        let was_running = self.batcher.is_some();
        {
            let mut q = self.shared.q.lock().unwrap();
            q.stopped = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        let report = self.shared.report();
        if was_running {
            self.shared.emit(ServeEvent::Stopped {
                requests: report.requests,
                graphs: report.graphs,
                swaps: report.swaps,
            });
        }
        report
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        if self.batcher.is_some() {
            let _ = self.shutdown();
        }
    }
}
