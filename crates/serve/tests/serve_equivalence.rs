//! The serving contract: predictions that went through the inference
//! server — any batching schedule, any worker count, any overload policy,
//! any number of concurrent callers — are *bit-identical* to calling
//! `Pic::predict_batch` directly on the same model. Micro-batching is a
//! throughput feature, never a behavioural one.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_core::{CoveragePredictor, Pic, PredictedCoverage};
use snowcat_corpus::{StiFuzzer, StiProfile};
use snowcat_graph::CtGraph;
use snowcat_kernel::{generate, GenConfig, Kernel};
use snowcat_nn::{Checkpoint, PicConfig, PicModel};
use snowcat_serve::{InferenceServer, OverloadPolicy, ServeConfig};
use snowcat_vm::propose_hints;
use std::sync::OnceLock;

struct Fixture {
    kernel: Kernel,
    cfg: KernelCfg,
    corpus: Vec<StiProfile>,
    checkpoint: Checkpoint,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let kernel = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&kernel);
        let mut fz = StiFuzzer::new(&kernel, 0x5E);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        let model = PicModel::new(PicConfig { hidden: 10, layers: 2, ..Default::default() });
        let checkpoint = Checkpoint::new(&model, 0.5, "serve-prop");
        Fixture { kernel, cfg, corpus, checkpoint }
    })
}

fn random_graphs(pic: &Pic<'_>, corpus: &[StiProfile], seed: u64, n: usize) -> Vec<CtGraph> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    use rand::Rng;
    let ia = rng.gen_range(0..corpus.len());
    let ib = rng.gen_range(0..corpus.len());
    let (a, b) = (&corpus[ia], &corpus[ib]);
    let base = pic.base_graph(a, b);
    (0..n)
        .map(|_| {
            let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
            pic.candidate_graph(&base, a, b, &hints)
        })
        .collect()
}

fn assert_bit_identical(label: &str, serial: &[PredictedCoverage], other: &[PredictedCoverage]) {
    assert_eq!(serial.len(), other.len(), "{label}: batch length");
    for (i, (s, o)) in serial.iter().zip(other).enumerate() {
        assert_eq!(s.graph, o.graph, "{label}: graph {i}");
        assert_eq!(s.probs, o.probs, "{label}: probs {i}");
        assert_eq!(s.positive, o.positive, "{label}: positive {i}");
    }
}

/// Split `graphs` into request-sized chunks per `cuts` (arbitrary
/// partition points from proptest).
fn partition(graphs: &[CtGraph], cuts: &[usize]) -> Vec<Vec<CtGraph>> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for &c in cuts {
        let end = (start + 1 + c % 5).min(graphs.len());
        if end > start {
            out.push(graphs[start..end].to_vec());
            start = end;
        }
    }
    if start < graphs.len() {
        out.push(graphs[start..].to_vec());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concurrent callers sending arbitrary request partitions through a
    /// server with arbitrary batching knobs get back exactly what a direct
    /// serial `predict_batch` produces, request by request.
    #[test]
    fn served_predictions_are_bit_identical_to_direct(
        seed in 0u64..1_000,
        n in 1usize..20,
        cuts in proptest::collection::vec(0usize..16, 0..8),
        max_batch in 1usize..12,
        wait_idx in 0usize..3,
        workers in 1usize..4,
        shed in proptest::bool::ANY,
    ) {
        let max_wait_us = [0u64, 50, 2_000][wait_idx];
        let fx = fixture();
        let pic = Pic::new(&fx.checkpoint, &fx.kernel, &fx.cfg);
        let graphs = random_graphs(&pic, &fx.corpus, seed, n);
        let requests = partition(&graphs, &cuts);
        let direct: Vec<Vec<PredictedCoverage>> =
            requests.iter().map(|r| pic.predict_batch(r)).collect();

        let mut server = InferenceServer::start(
            &fx.checkpoint,
            ServeConfig {
                max_batch,
                max_wait_us,
                queue_cap: max_batch.max(4),
                overload: if shed { OverloadPolicy::Shed } else { OverloadPolicy::Block },
                workers,
                ..ServeConfig::default()
            },
            None,
        );
        // Fire every request from its own thread so flushes genuinely
        // coalesce across callers.
        let served: Vec<Vec<PredictedCoverage>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = requests
                .iter()
                .map(|req| {
                    let h = server.handle();
                    s.spawn(move |_| h.predict_batch(req))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();

        for ((d, s), req) in direct.iter().zip(&served).zip(&requests) {
            prop_assert_eq!(d.len(), req.len());
            assert_bit_identical("served", d, s);
        }

        let report = server.shutdown();
        let total: u64 = requests.iter().map(|r| r.len() as u64).sum();
        // Every graph predicted exactly once (conservation across flushes).
        prop_assert_eq!(report.graphs, total);
        prop_assert_eq!(report.requests, requests.len() as u64);
    }
}

#[test]
fn empty_request_returns_empty_without_touching_the_queue() {
    let fx = fixture();
    let mut server = InferenceServer::start(&fx.checkpoint, ServeConfig::default(), None);
    let handle = server.handle();
    assert!(handle.predict_batch(&[]).is_empty());
    let report = server.shutdown();
    assert_eq!(report.requests, 1);
    assert_eq!(report.graphs, 0);
    assert_eq!(report.flushes, 0);
}

#[test]
fn oversized_request_flushes_alone_instead_of_deadlocking() {
    let fx = fixture();
    let pic = Pic::new(&fx.checkpoint, &fx.kernel, &fx.cfg);
    let graphs = random_graphs(&pic, &fx.corpus, 7, 9);
    // queue_cap (after normalization) = max_batch = 2 < 9 graphs.
    let mut server = InferenceServer::start(
        &fx.checkpoint,
        ServeConfig { max_batch: 2, queue_cap: 1, max_wait_us: 10, ..ServeConfig::default() },
        None,
    );
    let served = server.handle().predict_batch(&graphs);
    assert_bit_identical("oversized", &pic.predict_batch(&graphs), &served);
    server.shutdown();
}

#[test]
fn handle_survives_shutdown_by_predicting_inline() {
    let fx = fixture();
    let pic = Pic::new(&fx.checkpoint, &fx.kernel, &fx.cfg);
    let graphs = random_graphs(&pic, &fx.corpus, 3, 4);
    let mut server = InferenceServer::start(&fx.checkpoint, ServeConfig::default(), None);
    let handle = server.handle();
    server.shutdown();
    let served = handle.predict_batch(&graphs);
    assert_bit_identical("post-shutdown", &pic.predict_batch(&graphs), &served);
    assert_eq!(handle.report().shed, 1, "post-shutdown request counted as shed");
}

#[test]
fn stats_expose_serving_counters_through_the_predictor_trait() {
    let fx = fixture();
    let pic = Pic::new(&fx.checkpoint, &fx.kernel, &fx.cfg);
    let graphs = random_graphs(&pic, &fx.corpus, 5, 6);
    let mut server = InferenceServer::start(
        &fx.checkpoint,
        ServeConfig { max_batch: 4, max_wait_us: 100, ..ServeConfig::default() },
        None,
    );
    let handle = server.handle();
    handle.predict_batch(&graphs[..2]);
    handle.predict_batch(&graphs[2..]);
    let stats = handle.stats();
    assert_eq!(stats.inferences(), 6);
    assert_eq!(stats.batches(), 2);
    assert!(stats.server_flushes() >= 1);
    assert!(stats.batch_fill() > 0.0);
    assert_eq!(stats.shed_requests(), 0);
    assert_eq!(
        handle.fingerprint(),
        pic.fingerprint(),
        "server fingerprint matches the underlying deployment"
    );
    server.shutdown();
}
