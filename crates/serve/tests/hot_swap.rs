//! Hot-swap safety: a swap mid-stream never tears, drops, or duplicates a
//! prediction; poisoned candidates are rejected before they ever serve;
//! AP-degraded candidates are installed, caught by the breaker, and rolled
//! back to the incumbent weights.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_core::{checkpoint_fingerprint, CoveragePredictor, Pic, PredictedCoverage};
use snowcat_corpus::{StiFuzzer, StiProfile};
use snowcat_graph::CtGraph;
use snowcat_kernel::{generate, GenConfig, Kernel};
use snowcat_nn::{Checkpoint, PicConfig, PicModel, PicSession};
use snowcat_serve::{ApGate, InferenceServer, ServeConfig, SwapOutcome};
use snowcat_vm::propose_hints;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

struct Fixture {
    kernel: Kernel,
    cfg: KernelCfg,
    corpus: Vec<StiProfile>,
    /// Two genuinely different models over the same architecture.
    ck_a: Checkpoint,
    ck_b: Checkpoint,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let kernel = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&kernel);
        let mut fz = StiFuzzer::new(&kernel, 0xA7);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        let base = PicConfig { hidden: 8, layers: 1, ..Default::default() };
        let model_a = PicModel::new(PicConfig { seed: 11, ..base });
        let model_b = PicModel::new(PicConfig { seed: 29, ..base });
        let ck_a = Checkpoint::new(&model_a, 0.5, "model-a");
        let ck_b = Checkpoint::new(&model_b, 0.5, "model-b");
        Fixture { kernel, cfg, corpus, ck_a, ck_b }
    })
}

fn random_graphs(pic: &Pic<'_>, corpus: &[StiProfile], seed: u64, n: usize) -> Vec<CtGraph> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    use rand::Rng;
    let ia = rng.gen_range(0..corpus.len());
    let ib = rng.gen_range(0..corpus.len());
    let (a, b) = (&corpus[ia], &corpus[ib]);
    let base = pic.base_graph(a, b);
    (0..n)
        .map(|_| {
            let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
            pic.candidate_graph(&base, a, b, &hints)
        })
        .collect()
}

fn same_predictions(a: &[PredictedCoverage], b: &[PredictedCoverage]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.probs == y.probs && x.positive == y.positive && x.graph == y.graph)
}

/// Label each validation graph's URBs by `model`'s own ranking (top half
/// positive), so `model` scores a perfect validation AP and any materially
/// different model scores lower — a deterministic way to manufacture an
/// AP gap for breaker tests.
fn gate_favoring(model: &PicModel, graphs: &[CtGraph], tolerance: f64) -> ApGate {
    let mut session = PicSession::new();
    let mut probs = Vec::new();
    // AP pools URB scores across graphs, so the labels must be ranked
    // globally too: collect (graph, vertex, score) for every URB, sort by
    // the favored model's score, mark the global top half positive.
    let mut scored: Vec<(usize, usize, f32)> = Vec::new();
    for (gi, g) in graphs.iter().enumerate() {
        model.forward_into(g, &mut session, &mut probs);
        for i in g.urb_indices() {
            scored.push((gi, i, probs[i]));
        }
    }
    scored.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    let k = (scored.len() / 2).max(1);
    let mut valid: Vec<(CtGraph, Vec<bool>)> =
        graphs.iter().map(|g| (g.clone(), vec![false; g.num_verts()])).collect();
    for &(gi, i, _) in scored.iter().take(k) {
        valid[gi].1[i] = true;
    }
    ApGate::new(valid, tolerance)
}

/// Requests racing with swaps: every request's result must be *entirely*
/// model A's output or *entirely* model B's — a flush predicts on exactly
/// one epoch, so a caller can never observe a torn mix — and every request
/// is answered exactly once.
#[test]
fn swap_mid_stream_never_tears_or_drops_a_request() {
    let fx = fixture();
    let pic_a = Pic::new(&fx.ck_a, &fx.kernel, &fx.cfg);
    let pic_b = Pic::new(&fx.ck_b, &fx.kernel, &fx.cfg);

    const PRODUCERS: usize = 4;
    const ROUNDS: usize = 12;
    let requests: Vec<Vec<CtGraph>> =
        (0..PRODUCERS).map(|p| random_graphs(&pic_a, &fx.corpus, 100 + p as u64, 3)).collect();
    let direct_a: Vec<Vec<PredictedCoverage>> =
        requests.iter().map(|r| pic_a.predict_batch(r)).collect();
    let direct_b: Vec<Vec<PredictedCoverage>> =
        requests.iter().map(|r| pic_b.predict_batch(r)).collect();

    let mut server = InferenceServer::start(
        &fx.ck_a,
        ServeConfig { max_batch: 6, max_wait_us: 30, ..ServeConfig::default() },
        None,
    );
    let gate = ApGate::disabled();
    let stop = AtomicBool::new(false);

    crossbeam::thread::scope(|s| {
        // Swapper: flip between A and B as fast as it can.
        let swapper = {
            let server = &server;
            let (stop, gate) = (&stop, &gate);
            let (ck_a, ck_b) = (&fx.ck_a, &fx.ck_b);
            s.spawn(move |_| {
                let mut swaps = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let ck = if swaps.is_multiple_of(2) { ck_b } else { ck_a };
                    assert!(matches!(server.try_swap(ck, gate), SwapOutcome::Installed { .. }));
                    swaps += 1;
                }
                swaps
            })
        };

        let producers: Vec<_> = requests
            .iter()
            .enumerate()
            .map(|(p, req)| {
                let h = server.handle();
                let (da, db) = (&direct_a[p], &direct_b[p]);
                s.spawn(move |_| {
                    for round in 0..ROUNDS {
                        let got = h.predict_batch(req);
                        assert!(
                            same_predictions(&got, da) || same_predictions(&got, db),
                            "producer {p} round {round}: result is neither \
                             model A's nor model B's output — torn swap"
                        );
                    }
                })
            })
            .collect();

        for h in producers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        assert!(swapper.join().unwrap() > 0, "at least one swap raced the requests");
    })
    .unwrap();

    let report = server.shutdown();
    let expected: u64 = requests.iter().map(|r| (r.len() * ROUNDS) as u64).sum();
    assert_eq!(report.graphs, expected, "no prediction dropped or duplicated across swaps");
    assert_eq!(report.requests, (PRODUCERS * ROUNDS) as u64);
    assert!(report.swaps > 0);
}

#[test]
fn poisoned_candidate_is_rejected_before_install() {
    let fx = fixture();
    let pic_a = Pic::new(&fx.ck_a, &fx.kernel, &fx.cfg);
    let graphs = random_graphs(&pic_a, &fx.corpus, 42, 4);

    let mut server = InferenceServer::start(&fx.ck_a, ServeConfig::default(), None);
    let handle = server.handle();
    let before = handle.fingerprint();

    let mut poisoned = fx.ck_b.clone();
    poisoned.params.w_out.data[0] = f32::NAN;
    let outcome = server.try_swap(&poisoned, &ApGate::disabled());
    match outcome {
        SwapOutcome::Rejected { reason, .. } => {
            assert!(reason.contains("NaN") || reason.contains("infinite"), "reason: {reason}");
        }
        other => panic!("poisoned candidate was not rejected: {other:?}"),
    }

    // A bogus threshold is rejected the same way.
    let mut bad_threshold = fx.ck_b.clone();
    bad_threshold.threshold = 1.5;
    assert!(matches!(
        server.try_swap(&bad_threshold, &ApGate::disabled()),
        SwapOutcome::Rejected { .. }
    ));

    assert_eq!(handle.fingerprint(), before, "incumbent untouched by rejected swaps");
    assert!(
        same_predictions(&handle.predict_batch(&graphs), &pic_a.predict_batch(&graphs)),
        "serving continues on the incumbent after rejections"
    );
    let report = server.shutdown();
    assert_eq!(report.swaps, 0, "a rejected candidate never counts as installed");
    assert_eq!(report.epoch, 0);
}

#[test]
fn degraded_candidate_is_rolled_back_by_the_ap_breaker() {
    let fx = fixture();
    let pic_a = Pic::new(&fx.ck_a, &fx.kernel, &fx.cfg);
    let graphs = random_graphs(&pic_a, &fx.corpus, 77, 6);
    // Validation labels manufactured from model A's own ranking: A scores
    // AP 1.0, the differently-seeded model B scores strictly lower.
    let gate = gate_favoring(pic_a.model(), &graphs, 1e-9);

    let mut server = InferenceServer::start(&fx.ck_a, ServeConfig::default(), None);
    let handle = server.handle();
    let before = handle.fingerprint();

    match server.try_swap(&fx.ck_b, &gate) {
        SwapOutcome::RolledBack { candidate_ap, incumbent_ap, .. } => {
            assert!(
                candidate_ap < incumbent_ap,
                "breaker fired on a regression: {candidate_ap} vs {incumbent_ap}"
            );
            assert!((incumbent_ap - 1.0).abs() < 1e-12, "labels built from incumbent ranking");
        }
        other => panic!("degraded candidate was not rolled back: {other:?}"),
    }

    assert_eq!(handle.fingerprint(), before, "rollback restored the incumbent weights");
    assert!(
        same_predictions(&handle.predict_batch(&graphs), &pic_a.predict_batch(&graphs)),
        "post-rollback predictions are the incumbent's, bit for bit"
    );
    server.shutdown();
}

#[test]
fn non_degraded_candidate_is_installed_and_served() {
    let fx = fixture();
    let pic_a = Pic::new(&fx.ck_a, &fx.kernel, &fx.cfg);
    let pic_b = Pic::new(&fx.ck_b, &fx.kernel, &fx.cfg);
    let graphs = random_graphs(&pic_a, &fx.corpus, 9, 5);
    // Labels favor the *candidate* this time: B matches or beats A, so the
    // breaker stays quiet.
    let gate = gate_favoring(pic_b.model(), &graphs, 1e-9);

    let mut server = InferenceServer::start(&fx.ck_a, ServeConfig::default(), None);
    let handle = server.handle();

    assert!(matches!(server.try_swap(&fx.ck_b, &gate), SwapOutcome::Installed { epoch: 1 }));
    assert_eq!(handle.fingerprint(), checkpoint_fingerprint(&fx.ck_b));
    assert!(
        same_predictions(&handle.predict_batch(&graphs), &pic_b.predict_batch(&graphs)),
        "post-swap predictions come from the new model"
    );
    let report = server.shutdown();
    assert_eq!(report.swaps, 1);
    assert_eq!(report.epoch, 1);
    assert_eq!(report.model_name, "model-b");
}
