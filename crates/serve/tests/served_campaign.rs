//! End-to-end: a supervised MLPCT campaign whose predictions go through a
//! live inference server is bit-identical to one predicting directly (no
//! refresh), and the online-refresh loop runs, consumes the campaign's
//! fresh CTs, and leaves the event stream self-consistent.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_core::{CostModel, ExploreConfig, Explorer, Pic, SnowcatError, StrategyKind};
use snowcat_corpus::{random_cti_pairs, StiFuzzer, StiProfile};
use snowcat_harness::{run_supervised_campaign, SupervisorConfig};
use snowcat_kernel::{generate, GenConfig, Kernel};
use snowcat_nn::{Checkpoint, PicConfig, PicModel};
use snowcat_serve::{
    run_served_campaign, ApGate, RefreshConfig, ServeConfig, ServedCampaignConfig,
};

fn setup(stream_len: usize) -> (Kernel, KernelCfg, Vec<StiProfile>, Vec<(usize, usize)>) {
    let k = generate(&GenConfig::default());
    let cfg = KernelCfg::build(&k);
    let mut fz = StiFuzzer::new(&k, 1);
    fz.seed_each_syscall();
    let corpus = fz.into_corpus();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let stream = random_cti_pairs(&mut rng, corpus.len(), stream_len);
    (k, cfg, corpus, stream)
}

fn checkpoint() -> Checkpoint {
    let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
    Checkpoint::new(&model, 0.5, "t")
}

#[test]
fn served_campaign_without_refresh_is_bit_identical_to_direct() -> Result<(), SnowcatError> {
    let (k, kcfg, corpus, stream) = setup(5);
    let ck = checkpoint();
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_inference_cap(40);
    let cost = CostModel::default();
    let sup = SupervisorConfig::new();

    let pic = Pic::new(&ck, &k, &kcfg);
    let direct = run_supervised_campaign(
        &k,
        &corpus,
        &stream,
        Explorer::mlpct(&pic, StrategyKind::S1.build()),
        &ecfg,
        &cost,
        &sup,
        None,
    )?;

    let served = run_served_campaign(
        &k,
        &kcfg,
        &corpus,
        &stream,
        &ck,
        &ecfg,
        &cost,
        &sup,
        &ApGate::disabled(),
        &ServedCampaignConfig {
            serve: ServeConfig { max_batch: 8, max_wait_us: 50, ..ServeConfig::default() },
            strategy: StrategyKind::S1,
            refresh: None,
            ..ServedCampaignConfig::default()
        },
        None,
    )?;

    assert_eq!(served.result.result.history, direct.result.history);
    assert_eq!(served.result.result.bugs_found, direct.result.bugs_found);
    assert_eq!(served.result.result.label, direct.result.label);
    assert!(served.refresh.is_none());
    assert_eq!(served.serving.swaps, 0, "frozen model: no swap ever happens");
    assert!(served.serving.graphs > 0, "inference actually went through the server");
    let stats = served.result.predictor_stats.expect("MLPCT records predictor stats");
    assert!(stats.server_flushes() > 0, "serving counters flow into campaign stats");
    Ok(())
}

#[test]
fn served_campaign_with_refresh_consumes_fresh_cts() -> Result<(), SnowcatError> {
    let (k, kcfg, corpus, stream) = setup(6);
    let ck = checkpoint();
    let ecfg = ExploreConfig::default().with_exec_budget(3).with_inference_cap(30);
    let cost = CostModel::default();
    let sup = SupervisorConfig::new();

    let served = run_served_campaign(
        &k,
        &kcfg,
        &corpus,
        &stream,
        &ck,
        &ecfg,
        &cost,
        &sup,
        &ApGate::disabled(),
        &ServedCampaignConfig {
            serve: ServeConfig { max_batch: 8, max_wait_us: 50, ..ServeConfig::default() },
            strategy: StrategyKind::S1,
            refresh: Some(RefreshConfig {
                min_pairs: 2,
                interleavings_per_cti: 2,
                epochs: 1,
                batch: 4,
                max_refreshes: 2,
                poll_ms: 1,
                ..RefreshConfig::default()
            }),
            ..ServedCampaignConfig::default()
        },
        None,
    )?;

    let refresh = served.refresh.expect("refresher ran");
    assert!(refresh.refreshes >= 1, "fresh CTs triggered at least one refresh round");
    assert!(refresh.pairs_consumed >= 2);
    assert_eq!(
        refresh.installed + refresh.rejected + refresh.rolled_back,
        refresh.refreshes,
        "every refresh round ends in exactly one swap outcome"
    );
    // Fine-tuned candidates pass sanity gating; with a disabled AP gate
    // they install, and the serving report reflects it.
    assert_eq!(served.serving.swaps, refresh.installed);
    Ok(())
}
