//! Detector semantics pinned down on hand-built access streams.

use snowcat_kernel::{generate, Addr, BlockId, GenConfig, InstrLoc, ThreadId};
use snowcat_race::{RaceDetector, RaceKey};
use snowcat_vm::{BitSet, ExecResult, ExitReason, MemAccess};

fn result_with_accesses(kernel_blocks: usize, accesses: Vec<MemAccess>) -> ExecResult {
    ExecResult {
        coverage: BitSet::new(kernel_blocks),
        per_thread_coverage: vec![BitSet::new(kernel_blocks), BitSet::new(kernel_blocks)],
        block_trace: vec![vec![], vec![]],
        block_entry_steps: vec![vec![], vec![]],
        accesses,
        bugs: vec![],
        steps: 0,
        thread_steps: vec![0, 0],
        exit: ExitReason::Completed,
    }
}

fn acc(t: u8, block: u32, idx: u16, addr: u32, write: bool, lockset: u64, step: u64) -> MemAccess {
    MemAccess {
        thread: ThreadId(t),
        loc: InstrLoc::new(BlockId(block), idx),
        addr: Addr(addr),
        is_write: write,
        lockset,
        step,
    }
}

#[test]
fn write_read_different_threads_disjoint_locks_is_race() {
    let k = generate(&GenConfig::default());
    let det = RaceDetector::new(10);
    let r = result_with_accesses(
        k.num_blocks(),
        vec![acc(0, 1, 0, 100, true, 0, 5), acc(1, 2, 0, 100, false, 0, 8)],
    );
    let races = det.detect(&k, &r);
    assert_eq!(races.len(), 1);
    assert_eq!(
        races[0].key,
        RaceKey::new(InstrLoc::new(BlockId(1), 0), InstrLoc::new(BlockId(2), 0))
    );
    assert!(!races[0].write_write);
    assert_eq!(races[0].distance, 3);
}

#[test]
fn common_lock_suppresses_race() {
    let k = generate(&GenConfig::default());
    let det = RaceDetector::new(10);
    let r = result_with_accesses(
        k.num_blocks(),
        vec![
            acc(0, 1, 0, 100, true, 0b01, 5),
            acc(1, 2, 0, 100, false, 0b01, 8), // same lock held
        ],
    );
    assert!(det.detect(&k, &r).is_empty());
}

#[test]
fn disjoint_nonempty_locksets_still_race() {
    let k = generate(&GenConfig::default());
    let det = RaceDetector::new(10);
    let r = result_with_accesses(
        k.num_blocks(),
        vec![acc(0, 1, 0, 100, true, 0b01, 5), acc(1, 2, 0, 100, false, 0b10, 8)],
    );
    assert_eq!(det.detect(&k, &r).len(), 1);
}

#[test]
fn read_read_is_not_a_race() {
    let k = generate(&GenConfig::default());
    let det = RaceDetector::new(10);
    let r = result_with_accesses(
        k.num_blocks(),
        vec![acc(0, 1, 0, 100, false, 0, 5), acc(1, 2, 0, 100, false, 0, 6)],
    );
    assert!(det.detect(&k, &r).is_empty());
}

#[test]
fn same_thread_is_not_a_race() {
    let k = generate(&GenConfig::default());
    let det = RaceDetector::new(10);
    let r = result_with_accesses(
        k.num_blocks(),
        vec![acc(0, 1, 0, 100, true, 0, 5), acc(0, 2, 0, 100, true, 0, 6)],
    );
    assert!(det.detect(&k, &r).is_empty());
}

#[test]
fn window_excludes_distant_conflicts() {
    let k = generate(&GenConfig::default());
    let det = RaceDetector::new(10);
    let r = result_with_accesses(
        k.num_blocks(),
        vec![acc(0, 1, 0, 100, true, 0, 5), acc(1, 2, 0, 100, true, 0, 100)],
    );
    assert!(det.detect(&k, &r).is_empty());
}

#[test]
fn different_addresses_do_not_race() {
    let k = generate(&GenConfig::default());
    let det = RaceDetector::new(10);
    let r = result_with_accesses(
        k.num_blocks(),
        vec![acc(0, 1, 0, 100, true, 0, 5), acc(1, 2, 0, 101, true, 0, 6)],
    );
    assert!(det.detect(&k, &r).is_empty());
}

#[test]
fn duplicate_instruction_pairs_dedupe_within_run() {
    let k = generate(&GenConfig::default());
    let det = RaceDetector::new(50);
    let r = result_with_accesses(
        k.num_blocks(),
        vec![
            acc(0, 1, 0, 100, true, 0, 1),
            acc(1, 2, 0, 100, false, 0, 2),
            acc(0, 1, 0, 100, true, 0, 10),
            acc(1, 2, 0, 100, false, 0, 11),
        ],
    );
    assert_eq!(det.detect(&k, &r).len(), 1, "same static pair counts once per run");
}

#[test]
fn stats_region_race_is_benign_other_regions_not() {
    let k = generate(&GenConfig::default());
    let det = RaceDetector::new(10);
    let stats_region = k
        .regions
        .iter()
        .find(|r| r.kind == snowcat_kernel::RegionKind::StatsCounter)
        .expect("generator allocates stats regions");
    let flags_region =
        k.regions.iter().find(|r| r.kind == snowcat_kernel::RegionKind::Flags).unwrap();
    let r = result_with_accesses(
        k.num_blocks(),
        vec![
            acc(0, 1, 0, stats_region.start.0, true, 0, 1),
            acc(1, 2, 0, stats_region.start.0, true, 0, 2),
            acc(0, 3, 0, flags_region.start.0, true, 0, 5),
            acc(1, 4, 0, flags_region.start.0, false, 0, 6),
        ],
    );
    let races = det.detect(&k, &r);
    assert_eq!(races.len(), 2);
    for race in races {
        let benign_expected = race.addr == stats_region.start;
        assert_eq!(race.benign, benign_expected, "race at {}", race.addr);
    }
}
