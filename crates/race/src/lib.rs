//! # snowcat-race — potential data-race detection
//!
//! An implementation of the detector role DataCollider [13] plays in the
//! paper's evaluation: it scans the serialized memory-access stream of one
//! dynamic execution and reports *potential data races* — pairs of accesses
//! from different threads to the same address, at least one being a write,
//! holding disjoint locksets, and landing within a step window of each other
//! (DataCollider only flags accesses that are truly adjacent in time; the
//! window models that under our serialized scheduler).
//!
//! Races are deduplicated by their unordered pair of *static* instruction
//! locations — the paper's "unique possible data races" metric
//! (Data-race-coverage) counts exactly these keys across all explored
//! interleavings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use serde::{Deserialize, Serialize};
use snowcat_kernel::{Addr, BugId, InstrLoc, Kernel, RegionKind};
use snowcat_vm::{ExecResult, MemAccess};
use std::collections::{HashMap, HashSet};

/// Normalized (order-independent) identity of a potential data race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RaceKey(pub InstrLoc, pub InstrLoc);

impl RaceKey {
    /// Build a normalized key from two racing instruction locations.
    pub fn new(a: InstrLoc, b: InstrLoc) -> Self {
        if a <= b {
            Self(a, b)
        } else {
            Self(b, a)
        }
    }
}

/// A potential data race observed in one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceReport {
    /// Normalized instruction pair.
    pub key: RaceKey,
    /// Address the two accesses collided on.
    pub addr: Addr,
    /// Whether either access was a write (always true by construction) and
    /// both were writes.
    pub write_write: bool,
    /// Races on pure statistics counters are classified benign, matching the
    /// paper's manual pruning of tolerated races.
    pub benign: bool,
    /// Step distance between the two accesses in the serialized order.
    pub distance: u64,
}

/// Detector configuration.
#[derive(Debug, Clone, Copy)]
pub struct RaceDetector {
    /// Maximum step distance between two conflicting accesses for them to
    /// count as a potential race.
    pub window: u64,
}

impl Default for RaceDetector {
    fn default() -> Self {
        Self { window: 50 }
    }
}

impl RaceDetector {
    /// Detector with a custom adjacency window.
    pub fn new(window: u64) -> Self {
        Self { window }
    }

    /// Scan one execution's access stream for potential data races.
    ///
    /// Reports are deduplicated by [`RaceKey`] within the run; the first
    /// (closest-distance) occurrence wins.
    pub fn detect(&self, kernel: &Kernel, result: &ExecResult) -> Vec<RaceReport> {
        let mut by_addr: HashMap<Addr, Vec<&MemAccess>> = HashMap::new();
        for a in &result.accesses {
            by_addr.entry(a.addr).or_default().push(a);
        }
        let mut seen: HashSet<RaceKey> = HashSet::new();
        let mut out = Vec::new();
        for (addr, accs) in by_addr {
            // accs is in serialized step order (the VM pushes in order).
            for (i, x) in accs.iter().enumerate() {
                for y in accs.iter().skip(i + 1) {
                    let dist = y.step - x.step;
                    if dist > self.window {
                        break; // later accesses are even farther
                    }
                    if x.thread == y.thread
                        || (!x.is_write && !y.is_write)
                        || (x.lockset & y.lockset) != 0
                    {
                        continue;
                    }
                    let key = RaceKey::new(x.loc, y.loc);
                    if !seen.insert(key) {
                        continue;
                    }
                    let benign = matches!(
                        kernel.region_of(addr).map(|r| r.kind),
                        Some(RegionKind::StatsCounter)
                    );
                    out.push(RaceReport {
                        key,
                        addr,
                        write_write: x.is_write && y.is_write,
                        benign,
                        distance: dist,
                    });
                }
            }
        }
        // Deterministic output order.
        out.sort_by_key(|r| r.key);
        out
    }
}

/// Cumulative set of unique races across many executions — the paper's
/// Data-race-coverage.
#[derive(Debug, Clone, Default)]
pub struct RaceSet {
    keys: HashSet<RaceKey>,
}

impl RaceSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a race; returns true if it was new.
    pub fn insert(&mut self, key: RaceKey) -> bool {
        self.keys.insert(key)
    }

    /// Add all races from a report list; returns how many were new.
    pub fn absorb(&mut self, reports: &[RaceReport]) -> usize {
        reports.iter().filter(|r| self.keys.insert(r.key)).count()
    }

    /// Number of unique races seen.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no race has been recorded.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, key: &RaceKey) -> bool {
        self.keys.contains(key)
    }

    /// Iterate over the recorded keys (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &RaceKey> {
        self.keys.iter()
    }
}

/// Match a detected race against the planted-bug registry: a report that
/// pairs two instructions recorded in a bug's `racing_instrs` *is* that bug.
pub fn match_planted_bug(kernel: &Kernel, report: &RaceReport) -> Option<BugId> {
    kernel.bugs.iter().find_map(|b| {
        let has = |loc: InstrLoc| b.racing_instrs.contains(&loc);
        (has(report.key.0) && has(report.key.1)).then_some(b.id)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_kernel::{generate, BugKind, GenConfig, ThreadId};
    use snowcat_vm::{
        run_ct, run_sequential, Cti, ScheduleHints, Sti, SwitchPoint, SyscallInvocation, VmConfig,
    };

    fn kernel() -> Kernel {
        generate(&GenConfig::default())
    }

    #[test]
    fn sequential_runs_have_no_races() {
        let k = kernel();
        let det = RaceDetector::default();
        for i in 0..6 {
            let sti = Sti::new(vec![SyscallInvocation {
                syscall: snowcat_kernel::SyscallId(i),
                args: [0; 3],
            }]);
            let r = run_sequential(&k, &sti);
            assert!(det.detect(&k, &r).is_empty(), "single-thread run cannot race");
        }
    }

    #[test]
    fn planted_data_race_is_detected_under_some_schedule() {
        let k = kernel();
        let bug = k.bugs.iter().find(|b| b.kind == BugKind::DataRace).expect("DR bug planted");
        let a = Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.0, args: [0; 3] }]);
        let b = Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.1, args: [0; 3] }]);
        let cti = Cti::new(a.clone(), b);
        let len_a = run_sequential(&k, &cti.a).steps;
        let det = RaceDetector::default();
        let mut matched = false;
        'outer: for x in 1..=len_a {
            for y in [1u64, 3, 5, 8, 13, 21] {
                let hints = ScheduleHints {
                    first: ThreadId(0),
                    switches: vec![
                        SwitchPoint { thread: ThreadId(0), after: x },
                        SwitchPoint { thread: ThreadId(1), after: y },
                    ],
                };
                let r = run_ct(&k, &cti, hints, VmConfig::default());
                for report in det.detect(&k, &r) {
                    if match_planted_bug(&k, &report) == Some(bug.id) {
                        matched = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(matched, "planted data race should be observable under some schedule");
    }

    #[test]
    fn race_key_is_symmetric() {
        let a = InstrLoc::new(snowcat_kernel::BlockId(5), 1);
        let b = InstrLoc::new(snowcat_kernel::BlockId(2), 7);
        assert_eq!(RaceKey::new(a, b), RaceKey::new(b, a));
    }

    #[test]
    fn race_set_counts_unique() {
        let mut set = RaceSet::new();
        let a = InstrLoc::new(snowcat_kernel::BlockId(1), 0);
        let b = InstrLoc::new(snowcat_kernel::BlockId(2), 0);
        let c = InstrLoc::new(snowcat_kernel::BlockId(3), 0);
        assert!(set.insert(RaceKey::new(a, b)));
        assert!(!set.insert(RaceKey::new(b, a)));
        assert!(set.insert(RaceKey::new(a, c)));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn window_limits_detection() {
        // With a zero window, only immediately adjacent conflicting accesses
        // can race; a huge window admits more.
        let k = kernel();
        let cti = Cti::new(
            Sti::new(vec![SyscallInvocation { syscall: k.bugs[0].syscalls.0, args: [0; 3] }]),
            Sti::new(vec![SyscallInvocation { syscall: k.bugs[0].syscalls.1, args: [0; 3] }]),
        );
        let hints = ScheduleHints {
            first: ThreadId(0),
            switches: vec![
                SwitchPoint { thread: ThreadId(0), after: 5 },
                SwitchPoint { thread: ThreadId(1), after: 5 },
            ],
        };
        let r = run_ct(&k, &cti, hints, VmConfig::default());
        let narrow = RaceDetector::new(1).detect(&k, &r).len();
        let wide = RaceDetector::new(10_000).detect(&k, &r).len();
        assert!(wide >= narrow);
    }

    #[test]
    fn benign_classification_uses_region_kind() {
        // Run two stat-heavy syscalls concurrently with tight interleaving;
        // any reported stat-counter race must be flagged benign.
        let k = kernel();
        let det = RaceDetector::new(10_000);
        let mut saw_benign = false;
        for (i, j) in [(0u32, 1u32), (2, 3), (0, 4)] {
            let cti = Cti::new(
                Sti::new(vec![SyscallInvocation {
                    syscall: snowcat_kernel::SyscallId(i),
                    args: [0; 3],
                }]),
                Sti::new(vec![SyscallInvocation {
                    syscall: snowcat_kernel::SyscallId(j),
                    args: [0; 3],
                }]),
            );
            for x in [2u64, 5, 9, 14] {
                let hints = ScheduleHints {
                    first: ThreadId(0),
                    switches: vec![
                        SwitchPoint { thread: ThreadId(0), after: x },
                        SwitchPoint { thread: ThreadId(1), after: x },
                    ],
                };
                let r = run_ct(&k, &cti, hints, VmConfig::default());
                for report in det.detect(&k, &r) {
                    let kind = k.region_of(report.addr).map(|reg| reg.kind);
                    if kind == Some(RegionKind::StatsCounter) {
                        assert!(report.benign);
                        saw_benign = true;
                    } else {
                        assert!(!report.benign);
                    }
                }
            }
        }
        // Not guaranteed for every pair, but across the sweep we should see
        // at least one benign stat race; if not, the assertion logic above
        // still validated classification consistency.
        let _ = saw_benign;
    }
}
