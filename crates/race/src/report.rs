//! Human-readable race and bug reports, in the spirit of KCSAN's
//! "BUG: KCSAN: data-race in A / B" output. Used by the CLI and by anyone
//! triaging campaign findings.

use crate::RaceReport;
use snowcat_kernel::{BugSpec, InstrLoc, Kernel};

/// Resolve an instruction location to `function+block:idx` with the
/// rendered instruction text.
pub fn describe_loc(kernel: &Kernel, loc: InstrLoc) -> String {
    let block = kernel.block(loc.block);
    let func = kernel.func(block.func);
    let instr = block
        .instrs
        .get(loc.idx as usize)
        .map(|i| format!("{i:?}"))
        .unwrap_or_else(|| "<terminator>".into());
    format!("{}+{}:{} ({})", func.name, loc.block.0, loc.idx, instr)
}

/// Render one potential data race as a multi-line report.
pub fn render_race(kernel: &Kernel, race: &RaceReport) -> String {
    let region = kernel
        .region_of(race.addr)
        .map(|r| format!("{} ({:?})", r.name, r.kind))
        .unwrap_or_else(|| "<unmapped>".into());
    let kind = if race.write_write { "write/write" } else { "read/write" };
    let verdict = if race.benign { "likely benign (statistics counter)" } else { "suspicious" };
    format!(
        "POTENTIAL DATA RACE ({kind}) on {} in {region}\n  racing: {}\n     and: {}\n  distance: {} steps in the serialized order\n  verdict: {verdict}\n",
        race.addr,
        describe_loc(kernel, race.key.0),
        describe_loc(kernel, race.key.1),
        race.distance,
    )
}

/// Render a planted-bug manifestation report.
pub fn render_bug(kernel: &Kernel, bug: &BugSpec) -> String {
    let sub = &kernel.subsystems[bug.subsystem.index()].name;
    let (a, b) = bug.syscalls;
    let mut s = format!(
        "BUG: {} [{}/{:?}] in {sub}/\n  summary : {}\n  exposed by: {}() concurrent with {}()\n",
        bug.kind.code(),
        bug.kind.code(),
        bug.difficulty,
        bug.summary,
        kernel.syscall(a).name,
        kernel.syscall(b).name,
    );
    if !bug.racing_instrs.is_empty() {
        s.push_str("  involved instructions:\n");
        for &loc in &bug.racing_instrs {
            s.push_str(&format!("    {}\n", describe_loc(kernel, loc)));
        }
    }
    s.push_str(if bug.harmful {
        "  assessment: harmful\n"
    } else {
        "  assessment: likely benign\n"
    });
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RaceDetector, RaceKey};
    use snowcat_kernel::{generate, Addr, BlockId, GenConfig};

    #[test]
    fn describe_loc_names_function_and_instruction() {
        let k = generate(&GenConfig::default());
        let f = &k.funcs[0];
        let block = f.blocks[0];
        let desc = describe_loc(&k, InstrLoc::new(block, 0));
        assert!(desc.contains(&f.name), "missing function name: {desc}");
        assert!(desc.contains(&format!("+{}", block.0)));
    }

    #[test]
    fn describe_loc_handles_out_of_range_index() {
        let k = generate(&GenConfig::default());
        let block = k.funcs[0].blocks[0];
        let desc = describe_loc(&k, InstrLoc::new(block, 999));
        assert!(desc.contains("<terminator>"));
    }

    #[test]
    fn render_race_mentions_region_and_verdict() {
        let k = generate(&GenConfig::default());
        let stats =
            k.regions.iter().find(|r| r.kind == snowcat_kernel::RegionKind::StatsCounter).unwrap();
        let race = RaceReport {
            key: RaceKey::new(InstrLoc::new(BlockId(0), 0), InstrLoc::new(BlockId(1), 0)),
            addr: Addr(stats.start.0),
            write_write: true,
            benign: true,
            distance: 7,
        };
        let text = render_race(&k, &race);
        assert!(text.contains("write/write"));
        assert!(text.contains(&stats.name));
        assert!(text.contains("benign"));
        assert!(text.contains("7 steps"));
        let _ = RaceDetector::default(); // keep the import meaningful
    }

    #[test]
    fn render_bug_lists_carriers_and_instructions() {
        let k = generate(&GenConfig::default());
        let bug = &k.bugs[0];
        let text = render_bug(&k, bug);
        assert!(text.contains(&bug.summary));
        assert!(text.contains(&k.syscall(bug.syscalls.0).name));
        assert!(text.contains("involved instructions"));
    }
}
