//! End-to-end fleet acceptance suite.
//!
//! Proves the fleet's headline guarantees:
//!
//! * a **single-worker, fault-free fleet** is bit-identical to the plain
//!   supervised campaign (same SCCP bytes, same report JSON),
//! * a **killed worker**'s shard is stolen and re-executed from its last
//!   checkpoint, and the merged report stays byte-identical to an
//!   unfaulted fleet's,
//! * a **stalled worker** (silent heartbeat) has its lease expired and its
//!   shard stolen, again without changing the merged report,
//! * a fleet whose workers **all die** fails with exit-code-8 semantics
//!   but leaves a crash-consistent SCFC behind; `--resume` completes the
//!   run and the merged report is byte-identical to an uninterrupted one,
//! * a **corrupted shard checkpoint** costs the shard its progress but not
//!   the fleet its liveness (salted re-execution, documented tradeoff).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_core::{CostModel, ExploreConfig, Explorer, Pic, SnowcatError, StrategyKind};
use snowcat_corpus::{random_cti_pairs, StiFuzzer, StiProfile};
use snowcat_harness::{
    report_from_fleet_checkpoint, report_from_supervised, run_fleet, run_supervised_campaign,
    shard_ckpt_path, FaultPlan, FleetCheckpoint, FleetConfig, FleetWorker, ShardAssignment,
    ShardStatus, SupervisedResult, SupervisorConfig, ThreadWorker, WorkerFault, FLEET_CKPT_FILE,
};
use snowcat_kernel::{generate, GenConfig, Kernel};
use snowcat_nn::{Checkpoint, PicConfig, PicModel};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

const SEED: u64 = 0xF1EE7;

fn setup(stream_len: usize) -> (Kernel, KernelCfg, Vec<StiProfile>, Vec<(usize, usize)>) {
    let k = generate(&GenConfig::default());
    let cfg = KernelCfg::build(&k);
    let mut fz = StiFuzzer::new(&k, 1);
    fz.seed_each_syscall();
    let corpus = fz.into_corpus();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let stream = random_cti_pairs(&mut rng, corpus.len(), stream_len);
    (k, cfg, corpus, stream)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snowcat-fleet-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run a PCT fleet over `stream` with the given knobs.
#[allow(clippy::too_many_arguments)]
fn run_pct_fleet(
    k: &Kernel,
    corpus: &[StiProfile],
    stream: &[(usize, usize)],
    ecfg: &ExploreConfig,
    dir: &Path,
    workers: usize,
    fault_plan: FaultPlan,
    lease_ms: u64,
    resume: bool,
) -> Result<FleetCheckpoint, SnowcatError> {
    let cost = CostModel::default();
    let mut cfg = FleetConfig::new(workers, dir);
    cfg.lease_ms = lease_ms;
    cfg.checkpoint_every = 5;
    cfg.stall_ms = if workers > 1 { 2 } else { 0 };
    cfg.fault_plan = fault_plan;
    let make = |_slot: usize| Explorer::Pct;
    let worker = ThreadWorker {
        kernel: k,
        corpus,
        stream,
        explore_cfg: ecfg,
        cost: &cost,
        cfg: &cfg,
        make_explorer: &make,
    };
    run_fleet(&worker, "PCT", ecfg.seed, stream.len(), &cfg, resume)
}

#[test]
fn single_worker_fleet_is_bit_identical_to_supervised_campaign() {
    let (k, _, corpus, stream) = setup(12);
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_seed(SEED);
    let cost = CostModel::default();

    // Reference: plain supervised campaign with the same checkpoint cadence.
    let ref_dir = tmp_dir("n1-ref");
    let mut sup = SupervisorConfig::new();
    sup.checkpoint_path = Some(ref_dir.join("campaign.ckpt"));
    sup.checkpoint_every = 5;
    let supervised =
        run_supervised_campaign(&k, &corpus, &stream, Explorer::Pct, &ecfg, &cost, &sup, None)
            .unwrap();

    let dir = tmp_dir("n1-fleet");
    let fc =
        run_pct_fleet(&k, &corpus, &stream, &ecfg, &dir, 1, FaultPlan::default(), 2_000, false)
            .unwrap();
    assert!(fc.is_complete());
    assert_eq!(fc.shards.len(), 1);
    assert_eq!((fc.steals, fc.lost_workers, fc.reexecutions), (0, 0, 0));

    // The shard's SCCP file is byte-identical to the supervised one.
    let shard_bytes = std::fs::read(shard_ckpt_path(&dir, 0)).unwrap();
    let ref_bytes = std::fs::read(ref_dir.join("campaign.ckpt")).unwrap();
    assert_eq!(shard_bytes, ref_bytes, "N=1 fleet shard checkpoint differs from campaign");

    // And the merged fleet report is byte-identical to the live report.
    let fleet_report = report_from_fleet_checkpoint(&fc, &cost).unwrap();
    let live_report = report_from_supervised(&supervised, SEED);
    assert_eq!(fleet_report.to_canonical_json(), live_report.to_canonical_json());
}

#[test]
fn killed_worker_is_stolen_and_report_is_unchanged() {
    let (k, _, corpus, stream) = setup(24);
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_seed(SEED);
    let cost = CostModel::default();

    let ref_dir = tmp_dir("kill-ref");
    let reference =
        run_pct_fleet(&k, &corpus, &stream, &ecfg, &ref_dir, 2, FaultPlan::default(), 2_000, false)
            .unwrap();

    let dir = tmp_dir("kill-victim");
    let plan = FaultPlan::parse("kill-worker@1").unwrap();
    let fc = run_pct_fleet(&k, &corpus, &stream, &ecfg, &dir, 2, plan, 400, false).unwrap();
    assert!(fc.is_complete());
    assert!(fc.lost_workers >= 1, "the killed worker must be declared lost");
    assert!(fc.steals >= 1, "the dead worker's shard must be stolen");
    assert!(fc.quarantined_shards().is_empty());

    // The killed worker persisted a checkpoint before dying, so the steal
    // resumes unsalted and the merged report is byte-identical.
    let a = report_from_fleet_checkpoint(&reference, &cost).unwrap();
    let b = report_from_fleet_checkpoint(&fc, &cost).unwrap();
    assert_eq!(a.to_canonical_json(), b.to_canonical_json());
}

#[test]
fn stalled_worker_lease_expires_and_shard_is_stolen() {
    let (k, _, corpus, stream) = setup(24);
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_seed(SEED);
    let cost = CostModel::default();

    let ref_dir = tmp_dir("stall-ref");
    let reference =
        run_pct_fleet(&k, &corpus, &stream, &ecfg, &ref_dir, 2, FaultPlan::default(), 2_000, false)
            .unwrap();

    let dir = tmp_dir("stall-victim");
    let plan = FaultPlan::parse("stall-worker@0").unwrap();
    let fc = run_pct_fleet(&k, &corpus, &stream, &ecfg, &dir, 2, plan, 250, false).unwrap();
    assert!(fc.is_complete());
    assert!(fc.lost_workers >= 1, "the straggler must miss its deadline");
    assert!(fc.steals >= 1, "the straggler's shard must be stolen");

    let a = report_from_fleet_checkpoint(&reference, &cost).unwrap();
    let b = report_from_fleet_checkpoint(&fc, &cost).unwrap();
    assert_eq!(a.to_canonical_json(), b.to_canonical_json());
}

#[test]
fn losing_every_worker_fails_resumably_and_resume_is_bit_identical() {
    let (k, _, corpus, stream) = setup(24);
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_seed(SEED);
    let cost = CostModel::default();

    let ref_dir = tmp_dir("resume-ref");
    let reference =
        run_pct_fleet(&k, &corpus, &stream, &ecfg, &ref_dir, 2, FaultPlan::default(), 2_000, false)
            .unwrap();

    // Both workers die after their first shard checkpoint: the fleet has
    // nobody left and must fail with the exit-code-8 error, leaving a
    // crash-consistent SCFC behind.
    let dir = tmp_dir("resume-victim");
    let plan = FaultPlan::parse("kill-worker@0,kill-worker@1").unwrap();
    let err = run_pct_fleet(&k, &corpus, &stream, &ecfg, &dir, 2, plan, 400, false).unwrap_err();
    assert!(matches!(err, SnowcatError::FleetFailed { .. }), "{err}");
    assert_eq!(err.exit_code(), 8);
    assert!(dir.join(FLEET_CKPT_FILE).exists(), "failed fleet must leave its SCFC");

    // Resume without faults: incomplete shards continue from their
    // persisted checkpoints and the merged report is byte-identical.
    let fc = run_pct_fleet(&k, &corpus, &stream, &ecfg, &dir, 2, FaultPlan::default(), 2_000, true)
        .unwrap();
    assert!(fc.is_complete());
    assert!(fc.lost_workers >= 2, "lost-worker counters survive the resume");
    let a = report_from_fleet_checkpoint(&reference, &cost).unwrap();
    let b = report_from_fleet_checkpoint(&fc, &cost).unwrap();
    assert_eq!(a.to_canonical_json(), b.to_canonical_json());
}

#[test]
fn corrupt_shard_checkpoint_costs_progress_but_not_liveness() {
    let (k, _, corpus, stream) = setup(20);
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_seed(SEED);
    let cost = CostModel::default();

    let dir = tmp_dir("corrupt-victim");
    let plan = FaultPlan::parse("corrupt-worker-ckpt@0").unwrap();
    let fc = run_pct_fleet(&k, &corpus, &stream, &ecfg, &dir, 2, plan, 400, false).unwrap();

    // The corrupted first write left no usable checkpoint, so the steal
    // starts the shard over with salted seeds: liveness wins over
    // bit-identity on that shard (by design), but the fleet completes and
    // every shard is Done.
    assert!(fc.is_complete());
    assert!(fc.lost_workers >= 1);
    assert!(fc.shards.iter().all(|s| s.status == ShardStatus::Done));
    let report = report_from_fleet_checkpoint(&fc, &cost).unwrap();
    let c = report.campaign.as_ref().unwrap();
    assert_eq!(c.ctis as usize, stream.len(), "every position was processed");
}

#[test]
fn resume_rejects_mismatched_identity() {
    let (k, _, corpus, stream) = setup(8);
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_seed(SEED);
    let dir = tmp_dir("resume-mismatch");
    run_pct_fleet(&k, &corpus, &stream, &ecfg, &dir, 2, FaultPlan::default(), 2_000, false)
        .unwrap();
    // Different base seed.
    let other = ExploreConfig::default().with_exec_budget(4).with_seed(SEED ^ 1);
    let err =
        run_pct_fleet(&k, &corpus, &stream, &other, &dir, 2, FaultPlan::default(), 2_000, true)
            .unwrap_err();
    assert!(matches!(err, SnowcatError::Config(_)), "{err}");
    // Different stream length.
    let err =
        run_pct_fleet(&k, &corpus, &stream[..6], &ecfg, &dir, 2, FaultPlan::default(), 2_000, true)
            .unwrap_err();
    assert!(matches!(err, SnowcatError::Config(_)), "{err}");
}

#[test]
fn mlpct_fleet_completes_with_per_worker_predictors() {
    let (k, cfg_k, corpus, stream) = setup(10);
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_inference_cap(40).with_seed(SEED);
    let cost = CostModel::default();
    let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
    let ck = Checkpoint::new(&model, 0.5, "t");
    let pics: Vec<Pic> = (0..2).map(|_| Pic::new(&ck, &k, &cfg_k)).collect();

    let dir = tmp_dir("mlpct");
    let mut cfg = FleetConfig::new(2, &dir);
    cfg.checkpoint_every = 5;
    cfg.stall_ms = 2;
    let make = |slot: usize| Explorer::mlpct(&pics[slot], StrategyKind::S1.build());
    let worker = ThreadWorker {
        kernel: &k,
        corpus: &corpus,
        stream: &stream,
        explore_cfg: &ecfg,
        cost: &cost,
        cfg: &cfg,
        make_explorer: &make,
    };
    let label = Explorer::mlpct(&pics[0], StrategyKind::S1.build()).label();
    let fc = run_fleet(&worker, &label, SEED, stream.len(), &cfg, false).unwrap();
    assert!(fc.is_complete());
    let report = report_from_fleet_checkpoint(&fc, &cost).unwrap();
    assert_eq!(report.campaign.as_ref().unwrap().label, label);
}

/// Wraps a [`ThreadWorker`] and *panics* (instead of returning an error)
/// the first time the target shard is run — after letting the inner
/// worker persist one checkpoint interval, so the thief has a prefix to
/// resume from. Exercises the coordinator's `catch_unwind` containment.
struct PanicOnce<'a> {
    inner: ThreadWorker<'a>,
    target_shard: usize,
    tripped: AtomicBool,
}

impl FleetWorker for PanicOnce<'_> {
    fn run_shard(&self, asg: &ShardAssignment) -> Result<SupervisedResult, SnowcatError> {
        if asg.shard == self.target_shard && !self.tripped.swap(true, Ordering::SeqCst) {
            // Arm the kill fault so the inner worker checkpoints one
            // interval and returns; then panic mid-shard instead of
            // surfacing that error.
            let mut armed = asg.clone();
            armed.fault = Some(WorkerFault::Kill);
            let _ = self.inner.run_shard(&armed);
            panic!("injected mid-shard panic");
        }
        self.inner.run_shard(asg)
    }
}

#[test]
fn panicking_worker_is_contained_stolen_and_report_is_unchanged() {
    let (k, _, corpus, stream) = setup(24);
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_seed(SEED);
    let cost = CostModel::default();

    let ref_dir = tmp_dir("panic-ref");
    let reference =
        run_pct_fleet(&k, &corpus, &stream, &ecfg, &ref_dir, 2, FaultPlan::default(), 2_000, false)
            .unwrap();

    let dir = tmp_dir("panic-victim");
    let mut cfg = FleetConfig::new(2, &dir);
    cfg.lease_ms = 400;
    cfg.checkpoint_every = 5;
    cfg.stall_ms = 2;
    let make = |_slot: usize| Explorer::Pct;
    let worker = PanicOnce {
        inner: ThreadWorker {
            kernel: &k,
            corpus: &corpus,
            stream: &stream,
            explore_cfg: &ecfg,
            cost: &cost,
            cfg: &cfg,
            make_explorer: &make,
        },
        target_shard: 1,
        tripped: AtomicBool::new(false),
    };
    // The panic must not unwind out of the fleet: it surfaces as a lost
    // worker, the shard is stolen, and the run completes.
    let fc = run_fleet(&worker, "PCT", SEED, stream.len(), &cfg, false).unwrap();
    assert!(fc.is_complete());
    assert!(fc.lost_workers >= 1, "the panicking worker must be declared lost");
    assert!(fc.steals >= 1, "the panicked shard must be stolen");
    assert!(fc.quarantined_shards().is_empty());

    // The panic struck after a persisted checkpoint, so the steal resumes
    // unsalted: merged bytes identical to the unfaulted fleet.
    let a = report_from_fleet_checkpoint(&reference, &cost).unwrap();
    let b = report_from_fleet_checkpoint(&fc, &cost).unwrap();
    assert_eq!(a.to_canonical_json(), b.to_canonical_json());
}

#[test]
fn poison_shard_crash_loop_is_quarantined_within_max_steals() {
    let (k, _, corpus, stream) = setup(24);
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_seed(SEED);
    let cost = CostModel::default();

    let dir = tmp_dir("poison");
    let mut cfg = FleetConfig::new(2, &dir);
    cfg.lease_ms = 400;
    cfg.checkpoint_every = 5;
    cfg.stall_ms = 2;
    cfg.max_steals = 2;
    // Process-transport supervision semantics: slots respawn after worker
    // death instead of retiring, so only the quarantine breaker can end
    // the crash loop.
    cfg.respawn = true;
    cfg.fault_plan = FaultPlan::parse("poison-shard@1").unwrap();
    let make = |_slot: usize| Explorer::Pct;
    let worker = ThreadWorker {
        kernel: &k,
        corpus: &corpus,
        stream: &stream,
        explore_cfg: &ecfg,
        cost: &cost,
        cfg: &cfg,
        make_explorer: &make,
    };
    let fc = run_fleet(&worker, "PCT", SEED, stream.len(), &cfg, false).unwrap();
    assert!(fc.is_complete(), "quarantine must end the crash loop, not hang the fleet");
    let poisoned = &fc.shards[1];
    assert_eq!(poisoned.status, ShardStatus::Quarantined, "poison shard must be quarantined");
    assert!(
        poisoned.stalled_generations <= cfg.max_steals + 1,
        "crash loop must break within max_steals ({}) generations, took {}",
        cfg.max_steals,
        poisoned.stalled_generations
    );
    assert_eq!(fc.shards[0].status, ShardStatus::Done, "healthy shards still complete");
    assert!(fc.lost_workers >= cfg.max_steals, "every poison lease costs a worker death");
    let report = report_from_fleet_checkpoint(&fc, &cost).unwrap();
    assert!(report.campaign.is_some(), "a quarantined shard still yields a merged report");
}

#[test]
fn dropping_below_min_workers_degrades_resumably() {
    let (k, _, corpus, stream) = setup(24);
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_seed(SEED);
    let cost = CostModel::default();

    let ref_dir = tmp_dir("degrade-ref");
    let reference =
        run_pct_fleet(&k, &corpus, &stream, &ecfg, &ref_dir, 2, FaultPlan::default(), 2_000, false)
            .unwrap();

    // Worker 0 dies after its first checkpoint; with a floor of 2 the
    // fleet must not limp on single-handed — it checkpoints and exits
    // resumable with the degraded (exit 8) error.
    let dir = tmp_dir("degrade-victim");
    let mut cfg = FleetConfig::new(2, &dir);
    cfg.lease_ms = 2_000;
    cfg.checkpoint_every = 5;
    cfg.stall_ms = 2;
    cfg.min_workers = 2;
    cfg.fault_plan = FaultPlan::parse("kill-worker@0").unwrap();
    let make = |_slot: usize| Explorer::Pct;
    let worker = ThreadWorker {
        kernel: &k,
        corpus: &corpus,
        stream: &stream,
        explore_cfg: &ecfg,
        cost: &cost,
        cfg: &cfg,
        make_explorer: &make,
    };
    let err = run_fleet(&worker, "PCT", SEED, stream.len(), &cfg, false).unwrap_err();
    assert!(
        matches!(err, SnowcatError::FleetDegraded { live_workers: 1, min_workers: 2, .. }),
        "{err}"
    );
    assert_eq!(err.exit_code(), 8);
    assert!(dir.join(FLEET_CKPT_FILE).exists(), "degraded fleet must leave its SCFC");

    // Resume with healthy workers (floor back at the default): the run
    // completes and the merged report is byte-identical.
    let fc = run_pct_fleet(&k, &corpus, &stream, &ecfg, &dir, 2, FaultPlan::default(), 2_000, true)
        .unwrap();
    assert!(fc.is_complete());
    let a = report_from_fleet_checkpoint(&reference, &cost).unwrap();
    let b = report_from_fleet_checkpoint(&fc, &cost).unwrap();
    assert_eq!(a.to_canonical_json(), b.to_canonical_json());
}

#[test]
fn lease_arithmetic_is_instant_based_never_wall_clock() {
    // Regression guard for the monotonic-time satellite: lease deadlines
    // must be computed from `std::time::Instant` exclusively. A wall-clock
    // source (`SystemTime`) would let an NTP step or `date -s` expire a
    // healthy lease (false steal → wasted re-execution) or extend a dead
    // one (hung fleet). Scan the fleet source: any reintroduction of
    // SystemTime/UNIX_EPOCH into lease handling trips this test.
    let fleet_src = include_str!("../src/fleet.rs");
    assert!(
        !fleet_src.contains("SystemTime") && !fleet_src.contains("UNIX_EPOCH"),
        "fleet.rs must not use wall-clock time for lease arithmetic"
    );
    let process_src = include_str!("../src/process_worker.rs");
    assert!(
        !process_src.contains("SystemTime") && !process_src.contains("UNIX_EPOCH"),
        "process_worker.rs must not use wall-clock time for supervision timing"
    );
}
