//! Fault-injection integration suite for the robust training pipeline.
//!
//! Proves the training-robustness acceptance criteria end to end:
//!
//! * an **empty fault plan** makes [`robust_train`] bit-identical to the
//!   plain `snowcat_nn::train`, at any thread count,
//! * **injected NaN, gradient-spike and worker-panic faults** are detected
//!   by the anomaly guards, rolled back, and survived via salted retries,
//!   with every event in the anomaly log,
//! * a **persistent fault** exhausts the bounded retries into a typed
//!   `SnowcatError::TrainingDiverged` (exit code 7) with the model left at
//!   its last good state,
//! * **corrupt data shards** are quarantined with reasons instead of
//!   aborting the load,
//! * an **interrupted run resumed from its checkpoint** — even at a
//!   different thread count — finishes bit-identical to an uninterrupted
//!   one, including when the newest checkpoint is corrupt and the `.prev`
//!   fallback must be used.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_corpus::{build_dataset, interacting_cti_pairs, Dataset, DatasetConfig, StiFuzzer};
use snowcat_harness::{
    corrupt, load_shards_quarantining, prev_path, robust_train, CorruptionKind, RobustTrainConfig,
    TrainFaultPlan, TrainRunReport,
};
use snowcat_kernel::{generate, GenConfig};
use snowcat_nn::{train, LabeledGraph, PicConfig, PicModel, TrainConfig};
use std::path::PathBuf;

fn small_model() -> PicModel {
    PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() })
}

/// A small deterministic (train, valid) dataset pair built through the real
/// collection path.
fn small_data() -> (Dataset, Dataset) {
    let k = generate(&GenConfig::default());
    let cfg = KernelCfg::build(&k);
    let mut fz = StiFuzzer::new(&k, 11);
    fz.seed_each_syscall();
    let corpus = fz.into_corpus();
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let ctis = interacting_cti_pairs(&mut rng, &corpus, 10);
    let dc = DatasetConfig { interleavings_per_cti: 2, seed: 17 };
    let train_set = build_dataset(&k, &cfg, &corpus, &ctis[..8], dc);
    let valid_set = build_dataset(&k, &cfg, &corpus, &ctis[8..], dc);
    (train_set, valid_set)
}

fn as_refs(ds: &Dataset) -> Vec<LabeledGraph<'_>> {
    ds.examples.iter().map(|e| (&e.graph, e.labels.as_slice())).collect()
}

fn schedule(threads: usize) -> TrainConfig {
    TrainConfig { epochs: 4, batch: 2, seed: 0xBADD_CAFE, threads, ..Default::default() }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snowcat-train-rob-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn empty_plan_is_bit_identical_to_plain_train_at_any_thread_count() {
    let (tr, va) = small_data();
    let (tr_refs, va_refs) = (as_refs(&tr), as_refs(&va));

    let mut plain = small_model();
    let plain_report = train(&mut plain, &tr_refs, &va_refs, schedule(1));

    for threads in [1usize, 3] {
        let mut supervised = small_model();
        let cfg = RobustTrainConfig::new(schedule(threads));
        let report = robust_train(&mut supervised, &tr_refs, &va_refs, &cfg, false).unwrap();
        assert_eq!(
            supervised.params, plain.params,
            "{threads}-thread supervised run must be bit-identical to plain train()"
        );
        let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&report.epoch_losses), bits(&plain_report.epoch_losses));
        assert_eq!(report.val_ap, plain_report.val_ap);
        assert!(report.anomalies.is_empty() && report.completed && !report.early_stopped);
    }
}

#[test]
fn injected_faults_are_detected_rolled_back_and_survived() {
    let (tr, va) = small_data();
    let (tr_refs, va_refs) = (as_refs(&tr), as_refs(&va));

    let mut cfg = RobustTrainConfig::new(schedule(2));
    cfg.fault_plan = TrainFaultPlan::parse("panic@0,nan@1,spike@2").unwrap();
    let mut model = small_model();
    let report = robust_train(&mut model, &tr_refs, &va_refs, &cfg, false).unwrap();

    assert!(report.completed, "every fault class must be recovered, not fatal");
    assert_eq!(report.epoch_losses.len(), 4);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    let kind_at = |epoch: usize| {
        report
            .anomalies
            .iter()
            .find(|a| a.epoch == epoch)
            .unwrap_or_else(|| panic!("no anomaly recorded for epoch {epoch}: {report:?}"))
            .kind
            .clone()
    };
    assert_eq!(kind_at(0), "worker-panic");
    assert_eq!(kind_at(1), "nan-grad");
    assert_eq!(kind_at(2), "grad-spike");
    // Each fault fired on attempt 0 only, so one anomaly per epoch.
    assert_eq!(report.anomalies.len(), 3);
    assert!(report.anomalies.iter().all(|a| a.attempt == 0));
}

#[test]
fn persistent_fault_exhausts_retries_into_training_diverged() {
    let (tr, va) = small_data();
    let (tr_refs, va_refs) = (as_refs(&tr), as_refs(&va));

    let mut cfg = RobustTrainConfig::new(schedule(1));
    cfg.max_retries = 2;
    // Faulted through attempts 0..=2 — one more than the retry budget.
    cfg.fault_plan = TrainFaultPlan::parse("nan@0x3").unwrap();
    let mut model = small_model();
    let initial = model.params.clone();
    let err = robust_train(&mut model, &tr_refs, &va_refs, &cfg, false).unwrap_err();

    assert_eq!(err.exit_code(), 7, "training divergence has its own exit code: {err}");
    let text = err.to_string();
    assert!(text.contains("epoch 0") && text.contains("nan-grad"), "cause is named: {text}");
    assert_eq!(model.params, initial, "model must be left at the last good state");
}

#[test]
fn corrupt_shards_are_quarantined_with_reasons_not_fatal() {
    let dir = tmp_dir("shards");
    let (tr, _) = small_data();
    let shard = |range: std::ops::Range<usize>| Dataset { examples: tr.examples[range].to_vec() };
    let paths: Vec<PathBuf> = (0..3).map(|i| dir.join(format!("shard{i}.scds"))).collect();
    for (i, p) in paths.iter().enumerate() {
        snowcat_core::save_dataset(p, &shard(i * 4..(i + 1) * 4)).unwrap();
    }
    // A 4th shard that decodes (JSON) but fails structural validation.
    let mut bad = shard(12..14);
    bad.examples[0].labels.pop();
    let bad_path = dir.join("shard3.json");
    std::fs::write(&bad_path, bad.to_json().unwrap()).unwrap();
    // A 5th that does not exist at all.
    let missing = dir.join("shard4.scds");
    let mut all = paths.clone();
    all.push(bad_path);
    all.push(missing);

    let plan = TrainFaultPlan::parse("shard@1:flip,shard@2:trunc").unwrap();
    let (merged, report) = load_shards_quarantining(&all, &plan);

    assert_eq!(report.loaded, 1, "only the untouched shard 0 survives");
    assert_eq!(merged.len(), 4);
    assert_eq!(merged.examples, tr.examples[0..4].to_vec());
    assert_eq!(report.quarantined.len(), 4, "{report:?}");
    let reason_of = |name: &str| {
        report
            .quarantined
            .iter()
            .find(|q| q.path.contains(name))
            .unwrap_or_else(|| panic!("{name} not quarantined: {report:?}"))
            .reason
            .clone()
    };
    assert!(reason_of("shard1").contains("decode failed"));
    assert!(reason_of("shard2").contains("decode failed"));
    assert!(reason_of("shard3").contains("validation failed"), "{}", reason_of("shard3"));
    assert!(reason_of("shard3").contains("label count"));
    assert!(reason_of("shard4").contains("read failed"));

    // The empty plan loads everything that is well-formed.
    let (_, clean) = load_shards_quarantining(&paths, &TrainFaultPlan::default());
    assert_eq!(clean.loaded, 3);
    assert!(clean.quarantined.is_empty());
}

fn run_uninterrupted(
    tr: &[LabeledGraph<'_>],
    va: &[LabeledGraph<'_>],
) -> (PicModel, TrainRunReport) {
    let mut model = small_model();
    let cfg = RobustTrainConfig::new(schedule(1));
    let report = robust_train(&mut model, tr, va, &cfg, false).unwrap();
    (model, report)
}

#[test]
fn interrupted_run_resumes_bit_identically_even_across_thread_counts() {
    let (tr, va) = small_data();
    let (tr_refs, va_refs) = (as_refs(&tr), as_refs(&va));
    let (reference, ref_report) = run_uninterrupted(&tr_refs, &va_refs);

    let dir = tmp_dir("resume");
    let ckpt = dir.join("train.stcp");
    let mut cfg = RobustTrainConfig::new(schedule(1));
    cfg.checkpoint_path = Some(ckpt.clone());
    cfg.stop_after = Some(2);
    let mut model = small_model();
    let partial = robust_train(&mut model, &tr_refs, &va_refs, &cfg, false).unwrap();
    assert!(!partial.completed);
    assert_eq!(partial.epoch_losses.len(), 2);
    assert!(partial.threshold.is_none(), "no threshold tuning before completion");

    // Resume in a fresh "process" (fresh model object) at a different
    // thread count — the checkpoint carries the RNG stream and permutation.
    let mut resumed_cfg = RobustTrainConfig::new(schedule(3));
    resumed_cfg.checkpoint_path = Some(ckpt.clone());
    let mut resumed = small_model();
    let report = robust_train(&mut resumed, &tr_refs, &va_refs, &resumed_cfg, true).unwrap();

    assert_eq!(resumed.params, reference.params, "resumed weights must be bit-identical");
    assert_eq!(report, ref_report, "resumed report must match the uninterrupted one exactly");

    // Resuming a *complete* checkpoint short-circuits to the same result.
    let mut again = small_model();
    let report2 = robust_train(&mut again, &tr_refs, &va_refs, &resumed_cfg, true).unwrap();
    assert_eq!(again.params, reference.params);
    assert_eq!(report2, ref_report);
}

#[test]
fn corrupt_training_checkpoint_falls_back_to_prev_and_still_matches() {
    let (tr, va) = small_data();
    let (tr_refs, va_refs) = (as_refs(&tr), as_refs(&va));
    let (reference, ref_report) = run_uninterrupted(&tr_refs, &va_refs);

    let dir = tmp_dir("fallback");
    let ckpt = dir.join("train.stcp");
    let mut cfg = RobustTrainConfig::new(schedule(1));
    cfg.checkpoint_path = Some(ckpt.clone());
    cfg.stop_after = Some(2);
    let mut model = small_model();
    robust_train(&mut model, &tr_refs, &va_refs, &cfg, false).unwrap();

    // Tear the newest snapshot; `.prev` (one epoch earlier) must carry the
    // resume, which then replays one extra epoch to the same final state.
    let bytes = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, corrupt(&bytes, CorruptionKind::Flip)).unwrap();
    assert!(prev_path(&ckpt).exists());

    let mut resumed_cfg = RobustTrainConfig::new(schedule(1));
    resumed_cfg.checkpoint_path = Some(ckpt.clone());
    let mut resumed = small_model();
    let report = robust_train(&mut resumed, &tr_refs, &va_refs, &resumed_cfg, true).unwrap();
    assert_eq!(resumed.params, reference.params);
    assert_eq!(report, ref_report);

    // With both snapshots torn, resume is a typed checkpoint error. (The
    // successful resume above re-wrote a valid complete checkpoint, so tear
    // the current file again too.)
    std::fs::write(&ckpt, b"garbage").unwrap();
    std::fs::write(prev_path(&ckpt), b"garbage").unwrap();
    let err = robust_train(&mut small_model(), &tr_refs, &va_refs, &resumed_cfg, true).unwrap_err();
    assert_eq!(err.exit_code(), 4, "unusable checkpoints are CheckpointCorrupt: {err}");
}

#[test]
fn resume_rejects_mismatched_run_configuration() {
    let (tr, va) = small_data();
    let (tr_refs, va_refs) = (as_refs(&tr), as_refs(&va));

    let dir = tmp_dir("mismatch");
    let ckpt = dir.join("train.stcp");
    let mut cfg = RobustTrainConfig::new(schedule(1));
    cfg.checkpoint_path = Some(ckpt.clone());
    cfg.stop_after = Some(1);
    let mut model = small_model();
    robust_train(&mut model, &tr_refs, &va_refs, &cfg, false).unwrap();

    // Different seed → different run; the checkpoint must refuse it.
    let mut other = RobustTrainConfig::new(TrainConfig { seed: 1, ..schedule(1) });
    other.checkpoint_path = Some(ckpt.clone());
    let err = robust_train(&mut small_model(), &tr_refs, &va_refs, &other, true).unwrap_err();
    assert_eq!(err.exit_code(), 2, "schedule mismatch is a config error: {err}");
    assert!(err.to_string().contains("schedule"), "{err}");

    // Different training data → refused by fingerprint.
    let mut fewer = tr_refs.clone();
    fewer.pop();
    let err = robust_train(&mut small_model(), &fewer, &va_refs, &cfg, true).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
    assert!(err.to_string().contains("fingerprint") || err.to_string().contains("size"), "{err}");
}
