//! Property tests for the fleet layer.
//!
//! * **Merge algebra** — [`ShardMerge`] is a commutative, associative
//!   monoid: any insertion order and any grouping of unions over the same
//!   shard set finalizes to byte-identical merged checkpoints (and
//!   byte-identical reports).
//! * **SCFC integrity** — every single-byte corruption and every proper
//!   truncation of an encoded fleet checkpoint is detected by the decoder
//!   (error, never a panic and never silent acceptance).

use proptest::prelude::*;
use snowcat_core::CostModel;
use snowcat_harness::{
    decode_fleet_checkpoint, encode_checkpoint, encode_fleet_checkpoint,
    report_from_campaign_checkpoint, CampaignCheckpoint, FleetCheckpoint, RecoveryLog, ShardMerge,
    ShardState, ShardStatus,
};
use snowcat_kernel::{BlockId, BugId, InstrLoc};
use snowcat_race::RaceKey;
use snowcat_vm::BitSet;
use std::path::Path;

const BLOCKS: usize = 96;

fn arb_race_keys() -> impl Strategy<Value = Vec<RaceKey>> {
    proptest::collection::vec(((0u32..40, 0u16..4), (0u32..40, 0u16..4)), 0..12).prop_map(|raw| {
        let mut keys: Vec<RaceKey> = raw
            .into_iter()
            .map(|((ab, ai), (bb, bi))| {
                RaceKey::new(InstrLoc::new(BlockId(ab), ai), InstrLoc::new(BlockId(bb), bi))
            })
            .collect();
        keys.sort();
        keys.dedup();
        keys
    })
}

fn arb_history() -> impl Strategy<Value = Vec<snowcat_core::HistoryPoint>> {
    proptest::collection::vec(
        ((0usize..50, 0u64..500, 0u64..500), (0usize..20, 0usize..20, 0usize..96), 0usize..4),
        0..3,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|((ctis, executions, inferences), (races, harmful, blocks), bugs)| {
                snowcat_core::HistoryPoint {
                    ctis,
                    executions,
                    inferences,
                    hours: CostModel::default().hours(executions, inferences),
                    races,
                    harmful_races: harmful,
                    sched_dep_blocks: blocks,
                    bugs,
                }
            })
            .collect()
    })
}

/// A shard checkpoint sharing the fleet-wide label, seed, and bitmap
/// capacity (the invariants real shards hold by construction).
fn arb_shard_checkpoint() -> impl Strategy<Value = CampaignCheckpoint> {
    (
        (arb_race_keys(), arb_race_keys()),
        proptest::collection::vec(0usize..BLOCKS, 0..24),
        proptest::collection::vec(0u16..8, 0..4),
        arb_history(),
        proptest::collection::vec((0usize..16, 0usize..16), 0..4),
        ((0usize..40, 0u64..1000, 0u64..1000), proptest::collection::vec(0u64..10, 6..7)),
    )
        .prop_map(
            |(
                (races, harmful),
                bits,
                bugs,
                history,
                quarantine,
                ((position, execs, infs), rec),
            )| {
                let mut blocks = BitSet::new(BLOCKS);
                for b in bits {
                    blocks.insert(b);
                }
                let mut bugs: Vec<BugId> = bugs.into_iter().map(BugId).collect();
                bugs.dedup();
                let mut quarantine = quarantine;
                quarantine.sort();
                quarantine.dedup();
                CampaignCheckpoint {
                    label: "PCT".into(),
                    seed: 0xF1EE7,
                    position,
                    executions: execs,
                    inferences: infs,
                    race_keys: races,
                    harmful_keys: harmful,
                    blocks,
                    bugs_found: bugs,
                    history,
                    quarantine,
                    strategy: None,
                    recovery: RecoveryLog {
                        hung_attempts: rec[0],
                        retries: rec[1],
                        wasted_executions: rec[2],
                        quarantined: rec[3],
                        skipped_quarantined: rec[4],
                        checkpoints_written: rec[5],
                    },
                }
            },
        )
}

fn arb_shards() -> impl Strategy<Value = Vec<CampaignCheckpoint>> {
    proptest::collection::vec(arb_shard_checkpoint(), 1..6)
}

fn finalize_bytes(m: &ShardMerge) -> Vec<u8> {
    encode_checkpoint(&m.finalize(&CostModel::default()).unwrap()).unwrap()
}

fn sample_fleet(shards: Vec<CampaignCheckpoint>) -> FleetCheckpoint {
    FleetCheckpoint {
        label: "PCT".into(),
        seed: 0xF1EE7,
        workers: shards.len(),
        stream_len: 99,
        shards: shards
            .into_iter()
            .enumerate()
            .map(|(index, ck)| ShardState {
                index,
                start: 0,
                end: ck.position,
                status: ShardStatus::Done,
                generation: 0,
                stalled_generations: 0,
                checkpoint: Some(ck),
            })
            .collect(),
        steals: 1,
        reexecutions: 2,
        lost_workers: 3,
    }
}

proptest! {
    /// Insertion order never changes the merged bytes or the report.
    #[test]
    fn merge_is_commutative(shards in arb_shards(), order_seed in any::<u64>()) {
        let mut fwd = ShardMerge::new();
        for (i, ck) in shards.iter().enumerate() {
            fwd.add(i, ck.clone());
        }
        // A cheap deterministic shuffle of the insertion order.
        let mut order: Vec<usize> = (0..shards.len()).collect();
        for i in (1..order.len()).rev() {
            let j = (order_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(i as u32)
                % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut perm = ShardMerge::new();
        for &i in &order {
            perm.add(i, shards[i].clone());
        }
        prop_assert_eq!(finalize_bytes(&fwd), finalize_bytes(&perm));
        let ra = report_from_campaign_checkpoint(
            &fwd.finalize(&CostModel::default()).unwrap(),
        );
        let rb = report_from_campaign_checkpoint(
            &perm.finalize(&CostModel::default()).unwrap(),
        );
        prop_assert_eq!(ra.to_canonical_json(), rb.to_canonical_json());
    }

    /// Any grouping of unions finalizes identically: (A ∪ B) ∪ C == A ∪ (B ∪ C),
    /// with the split points chosen arbitrarily.
    #[test]
    fn merge_is_associative(shards in arb_shards(), cut_a in 0usize..6, cut_b in 0usize..6) {
        let n = shards.len();
        let (x, y) = (cut_a.min(n), cut_b.min(n));
        let (lo, hi) = (x.min(y), x.max(y));
        let group = |range: std::ops::Range<usize>| {
            let mut m = ShardMerge::new();
            for i in range {
                m.add(i, shards[i].clone());
            }
            m
        };
        let (a, b, c) = (group(0..lo), group(lo..hi), group(hi..n));
        let left = a.clone().union(b.clone()).union(c.clone());
        let right = a.union(b.union(c));
        prop_assert_eq!(left.len(), n);
        prop_assert_eq!(finalize_bytes(&left), finalize_bytes(&right));
    }

    /// Every single-byte corruption of an SCFC envelope is detected.
    #[test]
    fn scfc_detects_any_byte_flip(
        shards in arb_shards(),
        at in any::<u64>(),
        xor in 0u64..255,
    ) {
        let fc = sample_fleet(shards);
        let bytes = encode_fleet_checkpoint(&fc).unwrap();
        let i = (at % bytes.len() as u64) as usize;
        let mut bad = bytes.clone();
        bad[i] ^= (xor + 1) as u8;
        prop_assert!(
            decode_fleet_checkpoint(Path::new("p"), &bad).is_err(),
            "flip at byte {} of {} went undetected", i, bytes.len()
        );
        // The pristine bytes still decode to the same value.
        prop_assert_eq!(decode_fleet_checkpoint(Path::new("p"), &bytes).unwrap(), fc);
    }

    /// Every proper truncation of an SCFC envelope is detected.
    #[test]
    fn scfc_detects_any_truncation(steals in any::<u64>(), at in any::<u64>()) {
        let fc = FleetCheckpoint {
            label: "MLPCT-S1".into(),
            seed: 42,
            workers: 4,
            stream_len: 1000,
            shards: vec![],
            steals,
            reexecutions: steals / 2,
            lost_workers: 1,
        };
        let bytes = encode_fleet_checkpoint(&fc).unwrap();
        let cut = (at % bytes.len() as u64) as usize;
        prop_assert!(
            decode_fleet_checkpoint(Path::new("p"), &bytes[..cut]).is_err(),
            "truncation to {} of {} bytes went undetected", cut, bytes.len()
        );
    }
}
