//! Fault-injection integration suite for the campaign supervisor.
//!
//! Proves the robustness acceptance criteria end to end:
//!
//! * an **empty fault plan** makes the supervised path bit-identical to the
//!   unsupervised `run_campaign_budgeted`,
//! * **injected hangs** are retried with fresh seeds and, when persistent,
//!   quarantined — the campaign always completes,
//! * **injected predictor failures** degrade to the baseline with counters,
//!   never abort,
//! * **checkpoint corruption** is detected and falls back to the previous
//!   good snapshot,
//! * a campaign **killed mid-run and resumed** from its checkpoint finishes
//!   with a byte-identical final state.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_cfg::KernelCfg;
use snowcat_core::{
    run_campaign_budgeted, BaselineService, CostModel, ExploreConfig, Explorer, Pic,
    PredictorService, S1NewBitmap, SnowcatError, StrategyKind,
};
use snowcat_corpus::{random_cti_pairs, StiFuzzer, StiProfile};
use snowcat_harness::{
    load_checkpoint_with_fallback, prev_path, run_supervised_campaign, FaultPlan, FaultyPredictor,
    ResilientPredictor, SupervisorConfig,
};
use snowcat_kernel::{generate, GenConfig, Kernel};
use snowcat_nn::{Checkpoint, PicConfig, PicModel};
use std::path::PathBuf;

fn setup(stream_len: usize) -> (Kernel, KernelCfg, Vec<StiProfile>, Vec<(usize, usize)>) {
    let k = generate(&GenConfig::default());
    let cfg = KernelCfg::build(&k);
    let mut fz = StiFuzzer::new(&k, 1);
    fz.seed_each_syscall();
    let corpus = fz.into_corpus();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let stream = random_cti_pairs(&mut rng, corpus.len(), stream_len);
    (k, cfg, corpus, stream)
}

fn tmp_ckpt(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snowcat-fault-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("campaign.ckpt")
}

#[test]
fn empty_plan_is_bit_identical_to_unsupervised_pct() {
    let (k, _, corpus, stream) = setup(6);
    let ecfg = ExploreConfig::default().with_exec_budget(6);
    let cost = CostModel::default();
    let plain = run_campaign_budgeted(&k, &corpus, &stream, Explorer::Pct, &ecfg, &cost, None);
    let sup = SupervisorConfig::new();
    let supervised =
        run_supervised_campaign(&k, &corpus, &stream, Explorer::Pct, &ecfg, &cost, &sup, None)
            .unwrap();
    assert_eq!(supervised.result.history, plain.history);
    assert_eq!(supervised.result.bugs_found, plain.bugs_found);
    assert_eq!(supervised.result.label, plain.label);
    assert!(supervised.quarantined.is_empty());
    assert_eq!(supervised.recovery.hung_attempts, 0);
    assert_eq!(supervised.recovery.retries, 0);
    assert!(supervised.predictor_stats.is_none());
}

#[test]
fn empty_plan_is_bit_identical_to_unsupervised_mlpct() {
    let (k, cfg_k, corpus, stream) = setup(5);
    let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
    let ck = Checkpoint::new(&model, 0.5, "t");
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_inference_cap(40);
    let cost = CostModel::default();

    let pic = Pic::new(&ck, &k, &cfg_k);
    let plain = run_campaign_budgeted(
        &k,
        &corpus,
        &stream,
        Explorer::mlpct(&pic, StrategyKind::S1.build()),
        &ecfg,
        &cost,
        None,
    );
    let pic2 = Pic::new(&ck, &k, &cfg_k);
    let sup = SupervisorConfig::new();
    let supervised = run_supervised_campaign(
        &k,
        &corpus,
        &stream,
        Explorer::mlpct(&pic2, StrategyKind::S1.build()),
        &ecfg,
        &cost,
        &sup,
        None,
    )
    .unwrap();
    assert_eq!(supervised.result.history, plain.history);
    assert_eq!(supervised.result.bugs_found, plain.bugs_found);
    let stats = supervised.predictor_stats.expect("MLPCT reports predictor stats");
    assert_eq!(stats.degraded_batches(), 0);
    assert_eq!(stats.fallback_predictions(), 0);
}

#[test]
fn persistent_hangs_are_quarantined_and_campaign_completes() {
    let (k, _, corpus, stream) = setup(6);
    let ecfg = ExploreConfig::default().with_exec_budget(4);
    let cost = CostModel::default();
    // Position 2 hangs through the initial attempt AND both retries.
    let mut sup = SupervisorConfig::new();
    sup.fault_plan = FaultPlan::parse("hang@2x3").unwrap();
    assert_eq!(sup.max_retries, 2);
    let supervised =
        run_supervised_campaign(&k, &corpus, &stream, Explorer::Pct, &ecfg, &cost, &sup, None)
            .unwrap();
    assert_eq!(supervised.quarantined, vec![stream[2]], "the hung pair is quarantined");
    assert_eq!(supervised.recovery.quarantined, 1);
    assert_eq!(supervised.recovery.hung_attempts, 3);
    assert_eq!(supervised.recovery.retries, 2);
    assert!(supervised.recovery.wasted_executions > 0);
    // The quarantined position contributes no history point; everything
    // else does.
    assert_eq!(supervised.result.history.len(), stream.len() - 1);
    // Positional seeding: all *other* CTIs match the unsupervised run
    // exactly (quarantine never shifts later seeds).
    let plain = run_campaign_budgeted(&k, &corpus, &stream, Explorer::Pct, &ecfg, &cost, None);
    for h in &supervised.result.history {
        let reference = plain.history[h.ctis - 1];
        assert_eq!(h.ctis, reference.ctis);
    }
}

#[test]
fn transient_hangs_recover_via_retry_with_fresh_seed() {
    let (k, _, corpus, stream) = setup(6);
    let ecfg = ExploreConfig::default().with_exec_budget(4);
    let cost = CostModel::default();
    // Position 1 hangs once, then the retry (fresh seed, full fuel) works.
    let mut sup = SupervisorConfig::new();
    sup.fault_plan = FaultPlan::parse("hang@1").unwrap();
    let supervised =
        run_supervised_campaign(&k, &corpus, &stream, Explorer::Pct, &ecfg, &cost, &sup, None)
            .unwrap();
    assert!(supervised.quarantined.is_empty(), "one hang then recovery: no quarantine");
    assert_eq!(supervised.recovery.hung_attempts, 1);
    assert_eq!(supervised.recovery.retries, 1);
    assert_eq!(supervised.result.history.len(), stream.len(), "every CTI produced a point");
    // Hung-attempt executions are wasted, not accumulated.
    assert_eq!(supervised.recovery.wasted_executions, ecfg.exec_budget as u64);
}

#[test]
fn predictor_faults_degrade_gracefully_with_counters() {
    let (k, cfg_k, corpus, stream) = setup(6);
    let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
    let ck = Checkpoint::new(&model, 0.5, "t");
    let pic = Pic::new(&ck, &k, &cfg_k);
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_inference_cap(40);
    let cost = CostModel::default();

    // Every 2nd predictor batch panics; the resilient wrapper must absorb
    // every failure and serve those batches from the baseline.
    let plan = FaultPlan::parse("pred@2").unwrap();
    let faulty =
        FaultyPredictor::new(BaselineService::fair_coin(7), plan.predictor_period.unwrap());
    let resilient = ResilientPredictor::new(faulty, BaselineService::all_pos());
    let explorer = Explorer::MlPct {
        service: PredictorService::with(&pic, &resilient),
        strategy: Box::new(S1NewBitmap::new()),
    };
    let sup = SupervisorConfig::new();
    let supervised =
        run_supervised_campaign(&k, &corpus, &stream, explorer, &ecfg, &cost, &sup, None)
            .expect("campaign must complete despite predictor faults");
    assert_eq!(supervised.result.history.len(), stream.len(), "no CTI was aborted");
    let stats = supervised.predictor_stats.expect("stats flow through the chain");
    assert!(stats.degraded_batches() > 0, "injected faults must show up in the counters");
    assert!(stats.fallback_predictions() > 0);
    assert!(resilient.degraded_batches() > 0);
    assert!(!resilient.is_degraded(), "per-batch panics do not degrade permanently");
}

#[test]
fn corrupted_checkpoint_write_falls_back_to_previous_good_snapshot() {
    let (k, _, corpus, stream) = setup(6);
    let ecfg = ExploreConfig::default().with_exec_budget(4);
    let cost = CostModel::default();
    let path = tmp_ckpt("corrupt-write");
    let mut sup = SupervisorConfig::new();
    sup.checkpoint_path = Some(path.clone());
    sup.checkpoint_every = 2;
    // Writes land at positions 2, 4, 6 plus the final write; corrupt the
    // last (4th) one so `.prev` (position 6) is the newest good snapshot.
    sup.fault_plan = FaultPlan::parse("ckpt@4:flip").unwrap();
    run_supervised_campaign(&k, &corpus, &stream, Explorer::Pct, &ecfg, &cost, &sup, None).unwrap();
    let (ck, fell_back) = load_checkpoint_with_fallback(&path).unwrap();
    assert!(fell_back, "the corrupted current snapshot must be rejected");
    assert_eq!(ck.position, 6, "fallback is the previous good write");
    assert!(prev_path(&path).exists());

    // Resuming from the fallback runs the tail again and converges on the
    // uninterrupted result.
    let resumed = run_supervised_campaign(
        &k,
        &corpus,
        &stream,
        Explorer::Pct,
        &ecfg,
        &cost,
        &SupervisorConfig::new(),
        Some(ck),
    )
    .unwrap();
    let plain = run_campaign_budgeted(&k, &corpus, &stream, Explorer::Pct, &ecfg, &cost, None);
    assert_eq!(resumed.result.history, plain.history);
}

#[test]
fn stop_and_resume_is_bit_identical_to_uninterrupted_run() {
    let (k, _, corpus, stream) = setup(8);
    let ecfg = ExploreConfig::default().with_exec_budget(5);
    let cost = CostModel::default();
    let path = tmp_ckpt("stop-resume");

    let plain = run_campaign_budgeted(&k, &corpus, &stream, Explorer::Pct, &ecfg, &cost, None);

    // First run: process 3 CTIs, checkpoint, stop (in-process kill).
    let mut first = SupervisorConfig::new();
    first.checkpoint_path = Some(path.clone());
    first.checkpoint_every = 100; // only the stop_after / final writes fire
    first.stop_after = Some(3);
    let partial =
        run_supervised_campaign(&k, &corpus, &stream, Explorer::Pct, &ecfg, &cost, &first, None)
            .unwrap();
    assert_eq!(partial.result.history.len(), 3);

    // Second run: resume from the checkpoint and finish.
    let (ck, fell_back) = load_checkpoint_with_fallback(&path).unwrap();
    assert!(!fell_back);
    assert_eq!(ck.position, 3);
    let resumed = run_supervised_campaign(
        &k,
        &corpus,
        &stream,
        Explorer::Pct,
        &ecfg,
        &cost,
        &SupervisorConfig::new(),
        Some(ck),
    )
    .unwrap();
    assert_eq!(resumed.resumed_from, Some(3));
    assert_eq!(resumed.result.history, plain.history, "kill+resume is bit-identical");
    assert_eq!(resumed.result.bugs_found, plain.bugs_found);
}

#[test]
fn mlpct_stop_and_resume_restores_strategy_memory() {
    let (k, cfg_k, corpus, stream) = setup(6);
    let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
    let ck = Checkpoint::new(&model, 0.5, "t");
    let ecfg = ExploreConfig::default().with_exec_budget(4).with_inference_cap(40);
    let cost = CostModel::default();
    let path = tmp_ckpt("mlpct-resume");

    let pic = Pic::new(&ck, &k, &cfg_k);
    let plain = run_campaign_budgeted(
        &k,
        &corpus,
        &stream,
        Explorer::mlpct(&pic, StrategyKind::S1.build()),
        &ecfg,
        &cost,
        None,
    );

    let mut first = SupervisorConfig::new();
    first.checkpoint_path = Some(path.clone());
    first.stop_after = Some(2);
    let pic2 = Pic::new(&ck, &k, &cfg_k);
    run_supervised_campaign(
        &k,
        &corpus,
        &stream,
        Explorer::mlpct(&pic2, StrategyKind::S1.build()),
        &ecfg,
        &cost,
        &first,
        None,
    )
    .unwrap();

    let (snap, _) = load_checkpoint_with_fallback(&path).unwrap();
    assert!(snap.strategy.is_some(), "MLPCT checkpoints carry the strategy snapshot");
    let pic3 = Pic::new(&ck, &k, &cfg_k);
    let resumed = run_supervised_campaign(
        &k,
        &corpus,
        &stream,
        Explorer::mlpct(&pic3, StrategyKind::S1.build()),
        &ecfg,
        &cost,
        &SupervisorConfig::new(),
        Some(snap),
    )
    .unwrap();
    assert_eq!(
        resumed.result.history, plain.history,
        "resumed MLPCT (restored strategy memory) matches the uninterrupted run"
    );
}

#[test]
fn resume_with_mismatched_explorer_or_seed_is_a_config_error() {
    let (k, _, corpus, stream) = setup(4);
    let ecfg = ExploreConfig::default().with_exec_budget(4);
    let cost = CostModel::default();
    let path = tmp_ckpt("mismatch");
    let mut sup = SupervisorConfig::new();
    sup.checkpoint_path = Some(path.clone());
    run_supervised_campaign(&k, &corpus, &stream, Explorer::Pct, &ecfg, &cost, &sup, None).unwrap();
    let (ck, _) = load_checkpoint_with_fallback(&path).unwrap();

    // Wrong base seed.
    let wrong_seed = ecfg.with_seed(ecfg.seed ^ 1);
    let err = run_supervised_campaign(
        &k,
        &corpus,
        &stream,
        Explorer::Pct,
        &wrong_seed,
        &cost,
        &SupervisorConfig::new(),
        Some(ck),
    )
    .unwrap_err();
    assert!(matches!(err, SnowcatError::Config(_)), "seed mismatch is a config error: {err}");
    assert_eq!(err.exit_code(), 2);
}
