//! Process transport for the fleet: a [`FleetWorker`] that runs each shard
//! lease in a `snowcat fleet-worker` subprocess.
//!
//! Process isolation is the robustness tentpole the thread fleet cannot
//! provide: a worker that segfaults, OOMs, or wedges in native code kills
//! *its process*, not the coordinator. The parent side ([`ProcessWorker`])
//! spawns one subprocess per shard lease, performs a handshake with a
//! spawn timeout (retrying with exponential backoff plus deterministic
//! jitter), ships the [`WireAssignment`] over stdin, and replays `Beat`
//! frames onto the coordinator-side [`LeaseSignal`] so the existing
//! monitor/steal/quarantine machinery works unchanged. The child side
//! ([`serve_worker`]) rebuilds the assignment around a local lease, pumps
//! heartbeats to stdout, and self-reaps when the pipe breaks — a
//! SIGKILLed coordinator leaves no orphans because every child's next
//! heartbeat write fails with `EPIPE` and exits the process.
//!
//! Every child is additionally held by a kill-on-drop [`ChildGuard`], so
//! a *normally* exiting coordinator (including panics unwinding through
//! `run_fleet`) reaps its children synchronously.

use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use parking_lot::Mutex;
use snowcat_core::SnowcatError;
use snowcat_events::FleetEvent;

use crate::fleet::{FleetConfig, FleetWorker, LeaseSignal, ShardAssignment};
use crate::supervisor::SupervisedResult;
use crate::transport::{read_frame, write_frame, WireAssignment, WireMsg};

/// How a `snowcat fleet-worker` subprocess is launched. The args must
/// rebuild the exact same kernel/corpus/stream as the coordinator — the
/// handshake cross-checks label, seed, and stream length and refuses a
/// mismatched worker rather than letting it corrupt shard checkpoints.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// Executable to spawn (normally `std::env::current_exe()`).
    pub program: PathBuf,
    /// Full argument list, starting with the `fleet-worker` subcommand.
    pub args: Vec<String>,
}

/// Kill-on-drop guard: a child that is still running when the guard drops
/// (error return, panic unwind, coordinator shutdown) is killed and
/// reaped so no `fleet-worker` process outlives its coordinator.
struct ChildGuard {
    child: Option<Child>,
}

impl ChildGuard {
    fn new(child: Child) -> Self {
        Self { child: Some(child) }
    }

    fn pid(&self) -> u32 {
        self.child.as_ref().map(|c| c.id()).unwrap_or(0)
    }

    /// Collect the child's exit status: wait briefly for a voluntary exit,
    /// then kill. Always reaps (no zombies).
    fn reap(&mut self) -> Option<ExitStatus> {
        let mut child = self.child.take()?;
        for _ in 0..40 {
            match child.try_wait() {
                Ok(Some(status)) => return Some(status),
                Ok(None) => std::thread::sleep(Duration::from_millis(25)),
                Err(_) => break,
            }
        }
        let _ = child.kill();
        child.wait().ok()
    }

    /// Kill immediately and reap.
    fn kill(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Deterministic backoff with jitter for respawn attempt `attempt` of
/// worker `slot`: exponential in the attempt number, capped, plus a
/// slot/attempt-keyed jitter so a fleet of workers respawning after a
/// common-cause failure does not thunder back in lockstep.
pub fn respawn_backoff(base_ms: u64, slot: usize, attempt: u64) -> u64 {
    let base = base_ms.max(1);
    let exp = base.saturating_mul(1u64 << attempt.min(6)).min(5_000);
    let hash = (slot as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(attempt)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        >> 33;
    exp + hash % (exp / 4 + 1)
}

/// The subprocess [`FleetWorker`]: one `snowcat fleet-worker` child per
/// shard lease. Respawn-per-lease keeps the wire protocol stateless — a
/// dead worker is a clean EOF, and the coordinator's ordinary
/// steal-from-checkpoint path handles everything else.
pub struct ProcessWorker<'a> {
    /// How to launch a worker subprocess.
    pub command: WorkerCommand,
    /// Fleet knobs (spawn timeout, respawn backoff, event sink).
    pub cfg: &'a FleetConfig,
    /// Explorer label the fleet was launched for (handshake check).
    pub label: String,
    /// Base campaign seed (handshake check).
    pub seed: u64,
    /// CT-candidate stream length (handshake check).
    pub stream_len: usize,
}

enum Incoming {
    Msg(WireMsg),
    /// Reader thread terminated: clean EOF (`None`) or stream error.
    Gone(Option<std::io::Error>),
}

impl ProcessWorker<'_> {
    fn sink(&self) -> Option<&snowcat_events::EventSink> {
        self.cfg.events.as_ref()
    }

    fn spawn_child(&self) -> std::io::Result<(ChildGuard, ChildStdin, mpsc::Receiver<Incoming>)> {
        let mut child = Command::new(&self.command.program)
            .args(&self.command.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("stdin piped");
        let mut stdout = child.stdout.take().expect("stdout piped");
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || loop {
            match read_frame(&mut stdout) {
                Ok(Some(msg)) => {
                    if tx.send(Incoming::Msg(msg)).is_err() {
                        return; // Parent lost interest; child will be reaped.
                    }
                }
                Ok(None) => {
                    let _ = tx.send(Incoming::Gone(None));
                    return;
                }
                Err(e) => {
                    let _ = tx.send(Incoming::Gone(Some(e)));
                    return;
                }
            }
        });
        Ok((ChildGuard::new(child), stdin, rx))
    }

    /// Spawn a child and complete the handshake, retrying with backoff.
    /// Returns the ready child or the last failure after the attempt
    /// budget (`max_steals + 1` tries) is exhausted.
    fn spawn_ready(
        &self,
        asg: &ShardAssignment,
    ) -> Result<(ChildGuard, ChildStdin, mpsc::Receiver<Incoming>), SnowcatError> {
        let timeout = Duration::from_millis(self.cfg.spawn_timeout_ms.max(1));
        let attempts = self.cfg.max_steals + 1;
        let mut last_failure = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                let backoff_ms = respawn_backoff(self.cfg.respawn_backoff_ms, asg.worker, attempt);
                if let Some(sink) = self.sink() {
                    sink.fleet(FleetEvent::WorkerRespawned {
                        worker: asg.worker as u64,
                        attempt,
                        backoff_ms,
                    });
                }
                std::thread::sleep(Duration::from_millis(backoff_ms));
            }
            if asg.lease.is_revoked() {
                return Err(SnowcatError::LeaseExpired {
                    shard: asg.shard,
                    worker: asg.worker,
                    deadline_ms: self.cfg.lease_ms,
                });
            }
            let failure = match self.spawn_child() {
                Err(e) => format!("spawn failed: {e}"),
                Ok((mut guard, stdin, rx)) => {
                    if let Some(sink) = self.sink() {
                        sink.fleet(FleetEvent::WorkerSpawned {
                            worker: asg.worker as u64,
                            pid: guard.pid() as u64,
                            attempt,
                        });
                    }
                    match rx.recv_timeout(timeout) {
                        Ok(Incoming::Msg(WireMsg::Ready { label, seed, stream_len, pid: _ })) => {
                            if label != self.label
                                || seed != self.seed
                                || stream_len != self.stream_len
                            {
                                // An identity mismatch is a configuration
                                // bug, not a flaky worker: respawning the
                                // same command cannot fix it.
                                return Err(SnowcatError::Config(format!(
                                    "fleet-worker handshake mismatch: worker rebuilt \
                                     ('{label}', seed {seed:#x}, {stream_len} CTIs), \
                                     coordinator expects ('{}', seed {:#x}, {} CTIs)",
                                    self.label, self.seed, self.stream_len
                                )));
                            }
                            return Ok((guard, stdin, rx));
                        }
                        Ok(Incoming::Msg(other)) => {
                            format!("handshake expected Ready, got {other:?}")
                        }
                        Ok(Incoming::Gone(err)) => {
                            let status = guard.reap();
                            format!(
                                "worker exited during handshake ({}){}",
                                status.map(|s| s.to_string()).unwrap_or_else(|| "unknown".into()),
                                err.map(|e| format!(": {e}")).unwrap_or_default()
                            )
                        }
                        Err(_) => {
                            format!("handshake timed out after {}ms", self.cfg.spawn_timeout_ms)
                        }
                    }
                }
            };
            if let Some(sink) = self.sink() {
                sink.fleet(FleetEvent::WorkerHandshakeFailed {
                    worker: asg.worker as u64,
                    attempt,
                    detail: failure.clone(),
                });
            }
            last_failure = failure;
        }
        Err(SnowcatError::WorkerLost {
            worker: asg.worker,
            shard: asg.shard,
            detail: format!("no worker after {attempts} spawn attempt(s): {last_failure}"),
        })
    }
}

impl FleetWorker for ProcessWorker<'_> {
    fn run_shard(&self, asg: &ShardAssignment) -> Result<SupervisedResult, SnowcatError> {
        let (mut guard, mut stdin, rx) = self.spawn_ready(asg)?;
        let run = WireMsg::Run(Box::new(WireAssignment::from_assignment(asg)));
        if let Err(e) = write_frame(&mut stdin, &run) {
            let status = guard.reap();
            return Err(SnowcatError::WorkerLost {
                worker: asg.worker,
                shard: asg.shard,
                detail: format!(
                    "failed to deliver assignment ({e}); worker exited ({})",
                    status.map(|s| s.to_string()).unwrap_or_else(|| "unknown".into())
                ),
            });
        }
        // Relay loop: replay cumulative heartbeats onto the coordinator's
        // lease, watch for revocation, and wait for Done/Failed/EOF.
        let mut beats_relayed = 0u64;
        loop {
            if asg.lease.is_revoked() {
                // The monitor already re-queued the shard; all that is
                // left is making sure the deposed worker stops running.
                guard.kill();
                return Err(SnowcatError::LeaseExpired {
                    shard: asg.shard,
                    worker: asg.worker,
                    deadline_ms: self.cfg.lease_ms,
                });
            }
            match rx.recv_timeout(Duration::from_millis(10)) {
                Ok(Incoming::Msg(WireMsg::Beat { beats })) => {
                    while beats_relayed < beats {
                        asg.lease.beat();
                        beats_relayed += 1;
                    }
                }
                Ok(Incoming::Msg(WireMsg::Done(result))) => {
                    guard.reap();
                    return Ok(*result);
                }
                Ok(Incoming::Msg(WireMsg::Failed { detail })) => {
                    let status = guard.reap();
                    return Err(SnowcatError::WorkerLost {
                        worker: asg.worker,
                        shard: asg.shard,
                        detail: format!(
                            "worker reported failure: {detail} (exit {})",
                            status.map(|s| s.to_string()).unwrap_or_else(|| "unknown".into())
                        ),
                    });
                }
                Ok(Incoming::Msg(other)) => {
                    guard.kill();
                    return Err(SnowcatError::WorkerLost {
                        worker: asg.worker,
                        shard: asg.shard,
                        detail: format!("protocol violation: unexpected {other:?}"),
                    });
                }
                Ok(Incoming::Gone(err)) => {
                    // The pipe died: SIGKILL, segfault, OOM kill, or stream
                    // corruption. Classify by heartbeat position so the
                    // operator can tell a poison shard (dies before any
                    // progress, every generation) from a flaky worker.
                    let status = guard.reap();
                    let class = if beats_relayed == 0 {
                        "no progress made — possible poison shard"
                    } else {
                        "progress persisted — likely flaky worker"
                    };
                    return Err(SnowcatError::WorkerLost {
                        worker: asg.worker,
                        shard: asg.shard,
                        detail: format!(
                            "worker process died (exit {}{}) after {beats_relayed} heartbeat(s); {class}",
                            status.map(|s| s.to_string()).unwrap_or_else(|| "unknown".into()),
                            err.map(|e| format!("; stream: {e}")).unwrap_or_default()
                        ),
                    });
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    let status = guard.reap();
                    return Err(SnowcatError::WorkerLost {
                        worker: asg.worker,
                        shard: asg.shard,
                        detail: format!(
                            "worker stream closed without Done (exit {})",
                            status.map(|s| s.to_string()).unwrap_or_else(|| "unknown".into())
                        ),
                    });
                }
            }
        }
    }
}

/// Child-side serve loop for `snowcat fleet-worker`: handshake on stdout,
/// one `Run` from stdin, heartbeats pumped while the shard executes via
/// `worker` (normally a [`ThreadWorker`](crate::ThreadWorker) over the
/// locally rebuilt kernel/corpus/stream), then a final `Done`/`Failed`.
///
/// Heartbeat writes double as an orphan tripwire: Rust ignores `SIGPIPE`,
/// so after the coordinator dies (even by SIGKILL) the next `Beat` write
/// fails with a broken pipe and the pump exits the process — no
/// `fleet-worker` survives its coordinator for more than one pump tick.
pub fn serve_worker(
    worker: &dyn FleetWorker,
    label: &str,
    seed: u64,
    stream_len: usize,
    lease_ms: u64,
) -> Result<(), SnowcatError> {
    let io_err = |detail: String| SnowcatError::Config(format!("fleet-worker wire: {detail}"));
    let stdout = std::sync::Arc::new(Mutex::new(std::io::stdout()));
    {
        let mut out = stdout.lock();
        write_frame(
            &mut *out,
            &WireMsg::Ready { label: label.to_owned(), seed, stream_len, pid: std::process::id() },
        )
        .map_err(|e| io_err(format!("handshake write failed: {e}")))?;
    }
    let mut stdin = std::io::stdin();
    let wire = match read_frame(&mut stdin) {
        Ok(Some(WireMsg::Run(wire))) => *wire,
        // Coordinator closed our stdin without an assignment (it found no
        // pending shard, or died between spawn and Run): a clean no-op.
        Ok(None) => return Ok(()),
        Ok(Some(other)) => return Err(io_err(format!("expected Run, got {other:?}"))),
        Err(e) => return Err(io_err(format!("failed to read assignment: {e}"))),
    };
    let lease = LeaseSignal::new();
    let asg = wire.into_assignment(lease.clone());
    let done = std::sync::Arc::new(AtomicBool::new(false));
    let pump = {
        let stdout = std::sync::Arc::clone(&stdout);
        let lease = lease.clone();
        let done = std::sync::Arc::clone(&done);
        let tick = Duration::from_millis((lease_ms / 8).clamp(2, 50));
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                std::thread::sleep(tick);
                let mut out = stdout.lock();
                if write_frame(&mut *out, &WireMsg::Beat { beats: lease.beats() }).is_err() {
                    // Coordinator is gone; do not outlive it.
                    drop(out);
                    std::process::exit(1);
                }
            }
        })
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker.run_shard(&asg)))
        .unwrap_or_else(|_| {
            Err(SnowcatError::WorkerLost {
                worker: asg.worker,
                shard: asg.shard,
                detail: "fleet-worker panicked mid-shard".into(),
            })
        });
    done.store(true, Ordering::Relaxed);
    let _ = pump.join();
    let mut out = stdout.lock();
    match result {
        Ok(res) => {
            // Flush one final cumulative beat so the parent's relay sees
            // every position before Done, then hand the result over.
            let _ = write_frame(&mut *out, &WireMsg::Beat { beats: lease.beats() });
            write_frame(&mut *out, &WireMsg::Done(Box::new(res)))
                .map_err(|e| io_err(format!("failed to report completion: {e}")))?;
            Ok(())
        }
        Err(e) => {
            let _ = write_frame(&mut *out, &WireMsg::Failed { detail: e.to_string() });
            drop(out);
            // Propagate so the process exits with the error's class code.
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let b0 = respawn_backoff(100, 0, 1);
        let b1 = respawn_backoff(100, 0, 2);
        let b2 = respawn_backoff(100, 0, 3);
        assert!(b0 < b1 && b1 < b2, "backoff must grow: {b0} {b1} {b2}");
        // Deterministic: same (slot, attempt) → same delay.
        assert_eq!(b0, respawn_backoff(100, 0, 1));
        // Jittered: different slots spread out.
        assert_ne!(respawn_backoff(100, 0, 1), respawn_backoff(100, 1, 1));
        // Capped: huge attempts don't sleep forever (5s cap + 25% jitter).
        assert!(respawn_backoff(100, 3, 60) <= 6_250);
        // Zero base is clamped, not a hang-free busy loop.
        assert!(respawn_backoff(0, 0, 1) >= 1);
    }

    #[test]
    fn child_guard_kills_on_drop() {
        let child = Command::new("sleep")
            .arg("30")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn sleep");
        let pid = child.id();
        drop(ChildGuard::new(child));
        // The process must be gone (kill+wait are synchronous in drop).
        let alive = std::path::Path::new(&format!("/proc/{pid}")).exists();
        assert!(!alive, "child {pid} must not outlive its guard");
    }

    #[test]
    fn child_guard_reap_collects_voluntary_exit() {
        let child = Command::new("true").spawn().expect("spawn true");
        let mut guard = ChildGuard::new(child);
        let status = guard.reap().expect("status");
        assert!(status.success());
    }
}
