//! The fresh-CT feed: a bounded ring of freshly executed CT pairs.
//!
//! Online refresh (the `snowcat-serve` fine-tune loop) needs to know which
//! CT pairs the campaign actually executed, *while* the campaign is still
//! running — those are the examples whose coverage labels reflect the
//! current corpus drift. The supervisor can't depend on the serving crate
//! (the dependency points the other way), so the seam is this small typed
//! handle: the supervisor pushes each accepted `(corpus index, corpus
//! index)` pair, the refresher drains them in batches and builds labeled
//! examples on its own thread.
//!
//! Pushing never blocks and never fails: when the ring is full the oldest
//! pair is dropped (fresh examples are strictly more valuable than stale
//! ones for refresh, the opposite of the event sink's drop-newest policy).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Shared bounded ring of executed CT pairs. Cloning shares the ring.
#[derive(Clone)]
pub struct CtFeed {
    inner: Arc<Mutex<FeedState>>,
}

struct FeedState {
    cap: usize,
    pairs: VecDeque<(usize, usize)>,
    pushed: u64,
    dropped: u64,
}

impl CtFeed {
    /// A feed holding at most `cap` pending pairs (min 1).
    pub fn bounded(cap: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(FeedState {
                cap: cap.max(1),
                pairs: VecDeque::new(),
                pushed: 0,
                dropped: 0,
            })),
        }
    }

    /// Record an executed pair; drops the *oldest* pending pair on overflow.
    pub fn push(&self, pair: (usize, usize)) {
        let mut st = self.inner.lock();
        st.pushed += 1;
        if st.pairs.len() == st.cap {
            st.pairs.pop_front();
            st.dropped += 1;
        }
        st.pairs.push_back(pair);
    }

    /// Take every pending pair, oldest first.
    pub fn drain(&self) -> Vec<(usize, usize)> {
        self.inner.lock().pairs.drain(..).collect()
    }

    /// Pairs currently pending.
    pub fn len(&self) -> usize {
        self.inner.lock().pairs.len()
    }

    /// Whether no pairs are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total pairs ever pushed.
    pub fn pushed(&self) -> u64 {
        self.inner.lock().pushed
    }

    /// Pairs dropped to respect the bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }
}

impl std::fmt::Debug for CtFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.lock();
        f.debug_struct("CtFeed")
            .field("cap", &st.cap)
            .field("pending", &st.pairs.len())
            .field("pushed", &st.pushed)
            .field("dropped", &st.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drain_preserves_order() {
        let feed = CtFeed::bounded(8);
        feed.push((1, 2));
        feed.push((3, 4));
        assert_eq!(feed.len(), 2);
        assert_eq!(feed.drain(), vec![(1, 2), (3, 4)]);
        assert!(feed.is_empty());
        assert_eq!(feed.pushed(), 2);
        assert_eq!(feed.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest() {
        let feed = CtFeed::bounded(2);
        feed.push((0, 0));
        feed.push((1, 1));
        feed.push((2, 2));
        assert_eq!(feed.drain(), vec![(1, 1), (2, 2)], "oldest pair evicted first");
        assert_eq!(feed.dropped(), 1);
    }

    #[test]
    fn clones_share_the_ring() {
        let feed = CtFeed::bounded(4);
        let writer = feed.clone();
        writer.push((7, 9));
        assert_eq!(feed.drain(), vec![(7, 9)]);
    }
}
