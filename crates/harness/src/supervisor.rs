//! The campaign supervisor: a fault-tolerant drop-in for
//! `snowcat_core::run_campaign_budgeted`.
//!
//! The supervised loop replicates the unsupervised one exactly — same
//! positional per-CTI seed derivation, same time-budget check, same
//! accumulation order — so with an empty [`FaultPlan`] and the default fuel
//! budget the results are bit-identical. On top of that it adds the four
//! robustness pillars:
//!
//! 1. **watchdog execution** — every attempt runs under a fuel budget; an
//!    attempt whose executions *all* hang is retried with a different seed
//!    (bounded), and CT pairs that hang through every retry are quarantined
//!    (skipped at later stream positions, reported in the result),
//! 2. **checkpoint/resume** — periodic checksummed snapshots via
//!    [`crate::checkpoint`]; a killed campaign resumes at the exact stream
//!    position with identical final state,
//! 3. **graceful predictor degradation** — explorers can route inference
//!    through [`crate::resilient::ResilientPredictor`]; the supervisor
//!    reports the chain's degradation counters in the result,
//! 4. **fault injection** — a [`FaultPlan`] forces hangs at chosen
//!    positions and corrupts chosen checkpoint writes, deterministically.
//!
//! Quarantine is keyed by CT *pair* (not stream position) and seeds are
//! derived by *position*, so skipping a quarantined pair never shifts the
//! seeds of later CTIs.

use crate::checkpoint::{save_checkpoint_atomic, CampaignCheckpoint};
use crate::fault::{corrupt, FaultPlan};
use serde::{Deserialize, Serialize};
use snowcat_core::{
    explore_mlpct, explore_pct, CampaignResult, CostModel, ExploreConfig, Explorer, HistoryPoint,
    PredictorStats, SnowcatError,
};
use snowcat_corpus::StiProfile;
use snowcat_events::{CampaignEvent, EventSink};
use snowcat_kernel::{BugId, Kernel};
use snowcat_race::RaceSet;
use snowcat_vm::BitSet;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Per-CTI seed derivation — identical to `run_campaign_budgeted`.
const SEED_GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
/// Retry salt: decorrelates retry seeds from the positional stream.
const RETRY_SALT: u64 = 0xD1B5_4A32_D192_ED03;
/// Starvation fuel used for injected hang faults.
const INJECTED_HANG_FUEL: u64 = 1;

/// Supervisor knobs. `Default` is maximally transparent: no checkpointing,
/// no fault plan, fuel from the exploration config, 2 retries.
#[derive(Debug, Clone, Default)]
pub struct SupervisorConfig {
    /// Fuel (VM step) budget per execution; `None` inherits
    /// [`ExploreConfig::fuel_budget`].
    pub fuel_budget: Option<u64>,
    /// Retries (with a different seed) after a fully-hung attempt before
    /// the CT pair is quarantined.
    pub max_retries: u32,
    /// Where to write checkpoints (`None` disables checkpointing).
    pub checkpoint_path: Option<PathBuf>,
    /// Write a checkpoint every N processed stream positions (min 1).
    pub checkpoint_every: usize,
    /// Simulated-time budget in hours, as in `run_campaign_budgeted`.
    pub max_hours: Option<f64>,
    /// Stop after processing this many stream positions *this run* (a
    /// checkpoint is written first if checkpointing is on) — the in-process
    /// equivalent of a mid-campaign kill, used by resume tests.
    pub stop_after: Option<usize>,
    /// Sleep this long after each stream position — widens the kill window
    /// for out-of-process kill-and-resume tests.
    pub stall_ms: u64,
    /// Deterministic faults to inject.
    pub fault_plan: FaultPlan,
    /// Structured-event sink (`None` disables instrumentation entirely;
    /// emission is non-blocking and never fails the campaign).
    pub events: Option<EventSink>,
    /// Fresh-CT feed for online refresh: every accepted execution's CT pair
    /// is pushed here (`None` disables the feed). Pushing never blocks.
    pub fresh_cts: Option<crate::feed::CtFeed>,
    /// Global-position offset for per-CTI seed derivation: local position
    /// `ci` derives its seed as if it were whole-stream position
    /// `ci + position_offset`. Fleet shards pass their start offset so a
    /// sharded run reproduces the whole-stream seeds exactly; 0 (the
    /// default) is the whole-stream identity.
    pub position_offset: usize,
    /// Extra salt XORed into every derived per-CTI seed. Zero (the
    /// default) is transparent; the fleet coordinator salts only
    /// repeat-offender shards that made no progress across a steal
    /// generation, trading bit-identity for liveness on those shards.
    pub seed_salt: u64,
    /// Fleet lease handle: beaten once per processed stream position and
    /// polled for revocation, so a worker whose lease expired abandons its
    /// shard instead of racing the thief (`None` outside fleet runs).
    pub lease: Option<crate::fleet::LeaseSignal>,
}

impl SupervisorConfig {
    /// Transparent supervision with 2 retries and no checkpointing.
    pub fn new() -> Self {
        Self { max_retries: 2, checkpoint_every: 25, ..Default::default() }
    }
}

/// Counters describing what the supervisor had to recover from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryLog {
    /// Attempts whose executions all hung.
    pub hung_attempts: u64,
    /// Retries issued after hung attempts.
    pub retries: u64,
    /// Executions spent on rejected (hung) attempts — not counted in the
    /// campaign's execution totals.
    pub wasted_executions: u64,
    /// CT pairs quarantined after exhausting retries.
    pub quarantined: u64,
    /// Stream positions skipped because their pair was already quarantined.
    pub skipped_quarantined: u64,
    /// Checkpoints written.
    pub checkpoints_written: u64,
}

/// What a supervised campaign produced: the plain [`CampaignResult`] plus
/// robustness metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SupervisedResult {
    /// The campaign result, shaped exactly like the unsupervised one.
    pub result: CampaignResult,
    /// Quarantined CT pairs (corpus index pairs), sorted.
    pub quarantined: Vec<(usize, usize)>,
    /// Recovery counters.
    pub recovery: RecoveryLog,
    /// Stream position this run resumed from (None for a fresh run).
    pub resumed_from: Option<usize>,
    /// Predictor-chain counters (None for PCT), including degradation.
    pub predictor_stats: Option<PredictorStats>,
}

/// Mutable campaign accumulators, extracted so checkpointing and resuming
/// are symmetric.
struct SupState {
    races: RaceSet,
    harmful: RaceSet,
    blocks: BitSet,
    bugs_found: Vec<BugId>,
    executions: u64,
    inferences: u64,
    history: Vec<HistoryPoint>,
    quarantine: BTreeSet<(usize, usize)>,
    recovery: RecoveryLog,
}

impl SupState {
    fn fresh(num_blocks: usize) -> Self {
        Self {
            races: RaceSet::new(),
            harmful: RaceSet::new(),
            blocks: BitSet::new(num_blocks),
            bugs_found: Vec::new(),
            executions: 0,
            inferences: 0,
            history: Vec::new(),
            quarantine: BTreeSet::new(),
            recovery: RecoveryLog::default(),
        }
    }

    fn from_checkpoint(ck: &CampaignCheckpoint) -> Self {
        let mut races = RaceSet::new();
        for &k in &ck.race_keys {
            races.insert(k);
        }
        let mut harmful = RaceSet::new();
        for &k in &ck.harmful_keys {
            harmful.insert(k);
        }
        Self {
            races,
            harmful,
            blocks: ck.blocks.clone(),
            bugs_found: ck.bugs_found.clone(),
            executions: ck.executions,
            inferences: ck.inferences,
            history: ck.history.clone(),
            quarantine: ck.quarantine.iter().copied().collect(),
            recovery: ck.recovery,
        }
    }

    fn to_checkpoint(
        &self,
        label: &str,
        seed: u64,
        position: usize,
        strategy: Option<snowcat_core::StrategySnapshot>,
    ) -> CampaignCheckpoint {
        let mut race_keys: Vec<_> = self.races.iter().copied().collect();
        race_keys.sort_unstable();
        let mut harmful_keys: Vec<_> = self.harmful.iter().copied().collect();
        harmful_keys.sort_unstable();
        CampaignCheckpoint {
            label: label.to_owned(),
            seed,
            position,
            executions: self.executions,
            inferences: self.inferences,
            race_keys,
            harmful_keys,
            blocks: self.blocks.clone(),
            bugs_found: self.bugs_found.clone(),
            history: self.history.clone(),
            quarantine: self.quarantine.iter().copied().collect(),
            strategy,
            recovery: self.recovery,
        }
    }
}

/// Run a supervised campaign. With `resume`, validation requires the
/// checkpoint's label and seed to match the explorer and config it was
/// written under — resuming an S1 campaign with an S2 explorer, or with a
/// different base seed, is a configuration error, not silent divergence.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised_campaign(
    kernel: &Kernel,
    corpus: &[StiProfile],
    stream: &[(usize, usize)],
    mut explorer: Explorer<'_, '_>,
    explore_cfg: &ExploreConfig,
    cost: &CostModel,
    sup: &SupervisorConfig,
    resume: Option<CampaignCheckpoint>,
) -> Result<SupervisedResult, SnowcatError> {
    let label = explorer.label();
    let effective_fuel = sup.fuel_budget.unwrap_or(explore_cfg.fuel_budget);
    let checkpoint_every = sup.checkpoint_every.max(1);

    let sink = sup.events.as_ref();
    let (mut state, start, resumed_from) = match resume {
        None => (SupState::fresh(kernel.num_blocks()), 0, None),
        Some(ck) => {
            if ck.label != label {
                return Err(SnowcatError::Config(format!(
                    "checkpoint was written by explorer '{}', not '{label}'",
                    ck.label
                )));
            }
            if ck.seed != explore_cfg.seed {
                return Err(SnowcatError::Config(format!(
                    "checkpoint base seed {:#x} does not match configured seed {:#x}",
                    ck.seed, explore_cfg.seed
                )));
            }
            if ck.position > stream.len() {
                return Err(SnowcatError::Config(format!(
                    "checkpoint position {} is beyond the stream ({} CTIs)",
                    ck.position,
                    stream.len()
                )));
            }
            if let Explorer::MlPct { strategy, .. } = &mut explorer {
                match &ck.strategy {
                    Some(snap) if strategy.restore(snap) => {}
                    Some(_) => {
                        return Err(SnowcatError::Config(
                            "checkpoint strategy snapshot does not match the explorer's \
                             strategy kind"
                                .into(),
                        ))
                    }
                    None => {
                        return Err(SnowcatError::Config(
                            "checkpoint has no strategy snapshot but the explorer is MLPCT".into(),
                        ))
                    }
                }
            }
            let pos = ck.position;
            (SupState::from_checkpoint(&ck), pos, Some(pos))
        }
    };

    if let Some(s) = sink {
        s.campaign(CampaignEvent::Started {
            label: label.clone(),
            seed: explore_cfg.seed,
            ctis: stream.len() as u64,
            resumed_from: resumed_from.map(|p| p as u64),
        });
    }
    let mut last_predictor_emit: Option<PredictorStats> = None;
    let mut processed_this_run = 0usize;
    let mut next_position = start;
    #[allow(clippy::needless_range_loop)] // resume starts mid-stream; the index IS the seed input
    for ci in start..stream.len() {
        if let Some(lease) = &sup.lease {
            // A revoked lease means the coordinator already declared this
            // worker dead and re-queued the shard: stop immediately and let
            // the partial result be discarded rather than racing the thief.
            if lease.is_revoked() {
                break;
            }
            lease.beat();
        }
        if let Some(h) = sup.max_hours {
            if cost.hours(state.executions, state.inferences) >= h {
                break;
            }
        }
        if let Some(n) = sup.stop_after {
            if processed_this_run >= n {
                break;
            }
        }
        let (ia, ib) = stream[ci];
        if state.quarantine.contains(&(ia, ib)) {
            state.recovery.skipped_quarantined += 1;
            next_position = ci + 1;
            processed_this_run += 1;
            continue;
        }

        let planned_hangs = sup.fault_plan.hang_attempts_at(ci);
        if planned_hangs > 0 {
            if let Some(s) = sink {
                s.campaign(CampaignEvent::FaultInjected {
                    entry: format!("hang@{ci}x{planned_hangs}"),
                    position: ci as u64,
                });
            }
        }
        let mut accepted = None;
        for attempt in 0..=sup.max_retries {
            let salt = if attempt == 0 { 0 } else { u64::from(attempt).wrapping_mul(RETRY_SALT) };
            let fuel = if attempt < planned_hangs { INJECTED_HANG_FUEL } else { effective_fuel };
            let global_ci = (ci + sup.position_offset) as u64;
            let cfg = (*explore_cfg)
                .with_seed(
                    explore_cfg.seed ^ global_ci.wrapping_mul(SEED_GOLDEN) ^ salt ^ sup.seed_salt,
                )
                .with_fuel_budget(fuel);
            // Hung attempts are discarded wholesale, so the strategy's
            // cumulative memory must be rolled back with them.
            let pre = match &explorer {
                Explorer::MlPct { strategy, .. } => Some(strategy.snapshot()),
                _ => None,
            };
            let a = &corpus[ia];
            let b = &corpus[ib];
            let t0 = sink.map(|_| std::time::Instant::now());
            let outcome = match &mut explorer {
                Explorer::Pct => explore_pct(kernel, a, b, &cfg),
                Explorer::MlPct { service, strategy } => {
                    explore_mlpct(kernel, service, strategy.as_mut(), a, b, &cfg)
                }
            };
            let latency_us = t0.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0);
            let fully_hung = outcome.executions > 0 && outcome.hangs == outcome.executions;
            if !fully_hung {
                accepted = Some((outcome, attempt, latency_us));
                break;
            }
            state.recovery.hung_attempts += 1;
            state.recovery.wasted_executions += outcome.executions;
            if let Some(s) = sink {
                s.campaign(CampaignEvent::HangDetected {
                    position: ci as u64,
                    attempt: u64::from(attempt),
                    injected: attempt < planned_hangs,
                });
            }
            if let (Explorer::MlPct { strategy, .. }, Some(snap)) = (&mut explorer, &pre) {
                strategy.restore(snap);
            }
            if attempt < sup.max_retries {
                state.recovery.retries += 1;
            }
        }

        match accepted {
            Some((outcome, attempt, latency_us)) => {
                if let Some(feed) = &sup.fresh_cts {
                    feed.push((ia, ib));
                }
                let pre_races = state.races.len();
                let pre_blocks = state.blocks.count();
                state.executions += outcome.executions;
                state.inferences += outcome.inferences;
                for r in &outcome.races {
                    state.races.insert(r.key);
                    if !r.benign {
                        state.harmful.insert(r.key);
                    }
                }
                state.blocks.union_with(&outcome.sched_dep_blocks);
                for bug in outcome.bugs {
                    if !state.bugs_found.contains(&bug) {
                        state.bugs_found.push(bug);
                    }
                }
                state.history.push(HistoryPoint {
                    ctis: ci + 1,
                    executions: state.executions,
                    inferences: state.inferences,
                    hours: cost.hours(state.executions, state.inferences),
                    races: state.races.len(),
                    harmful_races: state.harmful.len(),
                    sched_dep_blocks: state.blocks.count(),
                    bugs: state.bugs_found.len(),
                });
                if let Some(s) = sink {
                    s.campaign(CampaignEvent::ExecutionOutcome {
                        position: ci as u64,
                        ct_a: ia as u64,
                        ct_b: ib as u64,
                        attempt: u64::from(attempt),
                        executions: outcome.executions,
                        new_races: (state.races.len() - pre_races) as u64,
                        new_blocks: (state.blocks.count() - pre_blocks) as u64,
                        latency_us,
                    });
                    if let Explorer::MlPct { service, .. } = &explorer {
                        let ps = service.stats();
                        if last_predictor_emit != Some(ps) {
                            s.campaign(CampaignEvent::PredictorBatch {
                                batches: ps.batches(),
                                inferences: ps.inferences(),
                                cache_hits: ps.cache_hits(),
                                cache_misses: ps.cache_misses(),
                                cache_evictions: ps.cache_evictions(),
                                degraded_batches: ps.degraded_batches(),
                                fallback_predictions: ps.fallback_predictions(),
                            });
                            last_predictor_emit = Some(ps);
                        }
                    }
                }
            }
            None => {
                state.quarantine.insert((ia, ib));
                state.recovery.quarantined += 1;
                if let Some(s) = sink {
                    s.campaign(CampaignEvent::Quarantined {
                        position: ci as u64,
                        ct_a: ia as u64,
                        ct_b: ib as u64,
                        attempts: u64::from(sup.max_retries) + 1,
                    });
                }
            }
        }

        next_position = ci + 1;
        processed_this_run += 1;

        if let Some(path) = &sup.checkpoint_path {
            if processed_this_run.is_multiple_of(checkpoint_every)
                || sup.stop_after == Some(processed_this_run)
            {
                write_checkpoint(
                    path,
                    &state,
                    &label,
                    explore_cfg.seed,
                    next_position,
                    &explorer,
                    sup,
                )?;
                state.recovery.checkpoints_written += 1;
            }
        }
        if sup.stall_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(sup.stall_ms));
        }
    }

    // Final checkpoint so a completed campaign can still be re-resumed
    // (a resume at position == stream.len() is a no-op run).
    if let Some(path) = &sup.checkpoint_path {
        write_checkpoint(path, &state, &label, explore_cfg.seed, next_position, &explorer, sup)?;
        state.recovery.checkpoints_written += 1;
    }

    let predictor_stats = match &explorer {
        Explorer::MlPct { service, .. } => Some(service.stats()),
        _ => None,
    };
    if let Some(s) = sink {
        let last = state.history.last().copied().unwrap_or(HistoryPoint {
            ctis: 0,
            executions: 0,
            inferences: 0,
            hours: 0.0,
            races: 0,
            harmful_races: 0,
            sched_dep_blocks: 0,
            bugs: 0,
        });
        s.campaign(CampaignEvent::Finished {
            label: label.clone(),
            executions: last.executions,
            inferences: last.inferences,
            races: last.races as u64,
            harmful_races: last.harmful_races as u64,
            blocks: last.sched_dep_blocks as u64,
            bugs: last.bugs as u64,
            quarantined: state.quarantine.len() as u64,
            sim_hours: last.hours,
        });
    }
    Ok(SupervisedResult {
        result: CampaignResult { label, history: state.history, bugs_found: state.bugs_found },
        quarantined: state.quarantine.into_iter().collect(),
        recovery: state.recovery,
        resumed_from,
        predictor_stats,
    })
}

#[allow(clippy::too_many_arguments)]
fn write_checkpoint(
    path: &std::path::Path,
    state: &SupState,
    label: &str,
    seed: u64,
    position: usize,
    explorer: &Explorer<'_, '_>,
    sup: &SupervisorConfig,
) -> Result<(), SnowcatError> {
    // NOTE: `state.recovery` is copied into the checkpoint *before* the
    // written-counter increment below, which is intentional: on resume the
    // counter continues from the snapshots that preceded this write.
    let strategy = match explorer {
        Explorer::MlPct { strategy, .. } => Some(strategy.snapshot()),
        _ => None,
    };
    let ck = state.to_checkpoint(label, seed, position, strategy);
    let ordinal = state.recovery.checkpoints_written + 1;
    let fault_kind = sup.fault_plan.checkpoint_fault(ordinal);
    let raw = match fault_kind {
        Some(kind) => Some(corrupt(&crate::checkpoint::encode_checkpoint(&ck)?, kind)),
        None => None,
    };
    let rotated = path.exists();
    save_checkpoint_atomic(path, &ck, raw)?;
    if let Some(s) = &sup.events {
        if let Some(kind) = fault_kind {
            s.campaign(CampaignEvent::FaultInjected {
                entry: format!("ckpt@{ordinal}:{kind:?}").to_lowercase(),
                position: position as u64,
            });
        }
        s.campaign(CampaignEvent::CheckpointWritten {
            path: path.display().to_string(),
            position: position as u64,
            ordinal,
            rotated,
        });
    }
    Ok(())
}
