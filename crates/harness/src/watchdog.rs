//! Watchdog execution: fuel-bounded runs with hang/crash classification.
//!
//! SKI's real deployment survives wedged guests by bounding every execution
//! and classifying how it ended; this module is the reproduction's
//! equivalent. Every run gets a *fuel* (VM step) budget; a run that exhausts
//! it is classified [`ExecOutcome::Hung`], a run that aborts on a
//! cross-thread deadlock is [`ExecOutcome::Crashed`], and everything else is
//! [`ExecOutcome::Completed`]. The supervisor retries hung schedules with a
//! different seed and quarantines CTs that hang repeatedly.

use snowcat_kernel::Kernel;
use snowcat_vm::{run_ct, Cti, ExecResult, ScheduleHints, VmConfig};

/// How a watchdog-supervised execution ended. Each variant carries the full
/// [`ExecResult`] — even hung and crashed runs have (partial) coverage and
/// access streams worth inspecting.
#[derive(Debug, Clone)]
pub enum ExecOutcome {
    /// All threads ran to completion within the fuel budget.
    Completed(ExecResult),
    /// The fuel budget was exhausted before completion (a wedged guest).
    Hung(ExecResult),
    /// The run aborted on a cross-thread deadlock.
    Crashed(ExecResult),
}

impl ExecOutcome {
    /// Classify a raw execution result by its exit reason.
    pub fn classify(r: ExecResult) -> Self {
        if r.hung() {
            ExecOutcome::Hung(r)
        } else if r.crashed() {
            ExecOutcome::Crashed(r)
        } else {
            ExecOutcome::Completed(r)
        }
    }

    /// The underlying execution result, whatever the classification.
    pub fn result(&self) -> &ExecResult {
        match self {
            ExecOutcome::Completed(r) | ExecOutcome::Hung(r) | ExecOutcome::Crashed(r) => r,
        }
    }

    /// True for [`ExecOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, ExecOutcome::Completed(_))
    }

    /// True for [`ExecOutcome::Hung`].
    pub fn is_hung(&self) -> bool {
        matches!(self, ExecOutcome::Hung(_))
    }

    /// True for [`ExecOutcome::Crashed`].
    pub fn is_crashed(&self) -> bool {
        matches!(self, ExecOutcome::Crashed(_))
    }
}

/// Execute one CT under a fuel budget and classify the outcome. The VM is
/// deterministic, so the classification is reproducible for a given
/// (kernel, CTI, hints, fuel) tuple.
pub fn run_ct_watchdog(kernel: &Kernel, cti: &Cti, hints: ScheduleHints, fuel: u64) -> ExecOutcome {
    ExecOutcome::classify(run_ct(kernel, cti, hints, VmConfig::with_fuel(fuel)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_kernel::{
        Block, BlockId, FuncId, Function, Kernel, Subsystem, SubsystemId, SyscallId, SyscallSpec,
        Terminator, ThreadId,
    };
    use snowcat_vm::{Sti, SyscallInvocation};

    /// A hand-built kernel whose only syscall spins forever: one block that
    /// jumps to itself. Generated kernels are loop-free, so this is the
    /// planted pathological input the watchdog must catch.
    fn looping_kernel() -> Kernel {
        Kernel {
            version: "loop-test".into(),
            blocks: vec![Block {
                func: FuncId(0),
                instrs: vec![],
                term: Terminator::Jump(BlockId(0)),
            }],
            funcs: vec![Function {
                name: "spin_forever".into(),
                subsystem: SubsystemId(0),
                entry: BlockId(0),
                blocks: vec![BlockId(0)],
            }],
            subsystems: vec![Subsystem { name: "test".into(), locks: vec![], regions: vec![] }],
            regions: vec![],
            syscalls: vec![SyscallSpec {
                name: "sys_spin".into(),
                func: FuncId(0),
                subsystem: SubsystemId(0),
                arg_max: vec![],
            }],
            bugs: vec![],
            mem_words: 1,
            num_locks: 0,
            init_mem: vec![0],
        }
    }

    fn spin_cti() -> Cti {
        let sti = Sti::new(vec![SyscallInvocation { syscall: SyscallId(0), args: [0; 3] }]);
        Cti::new(sti.clone(), sti)
    }

    #[test]
    fn infinite_loop_is_classified_hung_within_fuel_budget() {
        let k = looping_kernel();
        let hints = ScheduleHints { first: ThreadId(0), switches: vec![] };
        // A small budget keeps the test fast; the classification must be
        // Hung, and the run must consume no more than the budget.
        let fuel = 500;
        let out = run_ct_watchdog(&k, &spin_cti(), hints, fuel);
        assert!(out.is_hung(), "infinite loop must exhaust fuel, got {:?}", out.result().exit);
        assert!(out.result().steps <= fuel, "watchdog must stop at the fuel budget");
    }

    #[test]
    fn classification_is_deterministic() {
        let k = looping_kernel();
        let hints = ScheduleHints { first: ThreadId(0), switches: vec![] };
        let a = run_ct_watchdog(&k, &spin_cti(), hints.clone(), 200);
        let b = run_ct_watchdog(&k, &spin_cti(), hints, 200);
        assert!(a.is_hung() && b.is_hung());
        assert_eq!(a.result().steps, b.result().steps);
    }

    #[test]
    fn generated_kernels_complete_under_default_fuel() {
        use snowcat_kernel::{generate, GenConfig};
        let k = generate(&GenConfig::default());
        let sti = Sti::new(vec![SyscallInvocation { syscall: SyscallId(0), args: [0; 3] }]);
        let hints = ScheduleHints { first: ThreadId(0), switches: vec![] };
        let out = run_ct_watchdog(&k, &Cti::new(sti.clone(), sti), hints, 1 << 20);
        assert!(
            out.is_completed() || out.is_crashed(),
            "loop-free kernels never hang under the default budget"
        );
    }
}
