//! Fault-tolerant campaign supervision for the Snowcat reproduction.
//!
//! Long concurrency-testing campaigns die for reasons that have nothing to
//! do with the kernel under test: a schedule wedges the guest, the learned
//! predictor OOMs or stalls, a worker thread panics, the host reboots. The
//! paper's artifact survives these by supervising the loop; this crate is
//! that layer for the reproduction, built from four pieces:
//!
//! * [`watchdog`] — fuel-bounded execution with hang/crash classification,
//! * [`checkpoint`] — checksummed, atomically-rotated campaign snapshots
//!   with `.prev` fallback,
//! * [`resilient`] — a predictor wrapper that degrades to a cheap baseline
//!   instead of aborting,
//! * [`fault`] — deterministic fault injection to prove the recovery paths,
//! * [`supervisor`] — the loop tying them together: retry hung schedules
//!   with fresh seeds, quarantine repeat offenders, checkpoint periodically,
//!   resume exactly,
//! * [`trainer`] — the same discipline for training: epoch-granular
//!   bit-exact checkpoints (STCP), anomaly guards with rollback and salted
//!   retries, and shard-quarantining data loading,
//! * [`fleet`] — a fault-tolerant campaign fleet: sharded workers behind
//!   one [`fleet::FleetWorker`] seam, lease-based work stealing with
//!   heartbeat deadlines, and crash-consistent SCFC fleet checkpoints
//!   whose shard merges are order-independent,
//! * [`transport`] + [`process_worker`] — the process transport for that
//!   seam: `snowcat fleet-worker` subprocesses speaking a length-prefixed
//!   CRC-framed stdin/stdout protocol, supervised with spawn timeouts,
//!   respawn backoff, a crash-loop breaker, kill-on-drop orphan reaping,
//!   and graceful degradation below a `--min-workers` floor.
//!
//! The supervised loop is bit-identical to the plain
//! [`snowcat_core::run_campaign_budgeted`] when no faults are injected and
//! no fuel override is set — robustness costs nothing on the happy path.
//! Likewise, [`trainer::robust_train`] with an empty fault plan is
//! bit-identical to [`snowcat_nn::train`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod fault;
pub mod feed;
pub mod fleet;
pub mod process_worker;
pub mod reporting;
pub mod resilient;
pub mod supervisor;
pub mod trainer;
pub mod transport;
pub mod watchdog;

pub use checkpoint::{
    decode_checkpoint, encode_checkpoint, load_checkpoint_with_fallback, load_with_fallback,
    prev_path, save_bytes_atomic, save_checkpoint_atomic, CampaignCheckpoint, CKPT_MAGIC,
    CKPT_VERSION,
};
pub use fault::{corrupt, CheckpointFault, CorruptionKind, FaultPlan, FaultyPredictor, HangFault};
pub use feed::CtFeed;
pub use fleet::{
    clear_fleet_dir, decode_fleet_checkpoint, encode_fleet_checkpoint,
    load_fleet_checkpoint_with_fallback, partition_stream, run_fleet, save_fleet_checkpoint_atomic,
    shard_ckpt_path, FleetCheckpoint, FleetConfig, FleetWorker, LeaseSignal, ShardAssignment,
    ShardMerge, ShardState, ShardStatus, ThreadWorker, WorkerFault, FLEET_CKPT_FILE, FLEET_MAGIC,
    FLEET_VERSION,
};
pub use process_worker::{respawn_backoff, serve_worker, ProcessWorker, WorkerCommand};
pub use reporting::{
    predictor_counters, report_from_campaign_checkpoint, report_from_fleet_checkpoint,
    report_from_supervised, report_from_train, report_from_train_checkpoint,
};
pub use resilient::ResilientPredictor;
pub use supervisor::{run_supervised_campaign, RecoveryLog, SupervisedResult, SupervisorConfig};
pub use trainer::{
    decode_train_checkpoint, encode_train_checkpoint, load_shards_quarantining,
    load_shards_quarantining_instrumented, load_train_checkpoint_with_fallback, loss_diverged,
    params_crc32, report_from_checkpoint, robust_train, save_train_checkpoint_atomic, AnomalyEvent,
    QuarantineReport, RobustTrainConfig, ShardIssue, TrainCheckpoint, TrainEpochFault,
    TrainFaultKind, TrainFaultPlan, TrainRunReport, TRAIN_CKPT_MAGIC, TRAIN_CKPT_VERSION,
};
pub use transport::{
    read_frame, write_frame, WireAssignment, WireMsg, MAX_FRAME_LEN, WIRE_MAGIC, WIRE_VERSION,
};
pub use watchdog::{run_ct_watchdog, ExecOutcome};
