//! Fault-tolerant campaign supervision for the Snowcat reproduction.
//!
//! Long concurrency-testing campaigns die for reasons that have nothing to
//! do with the kernel under test: a schedule wedges the guest, the learned
//! predictor OOMs or stalls, a worker thread panics, the host reboots. The
//! paper's artifact survives these by supervising the loop; this crate is
//! that layer for the reproduction, built from four pieces:
//!
//! * [`watchdog`] — fuel-bounded execution with hang/crash classification,
//! * [`checkpoint`] — checksummed, atomically-rotated campaign snapshots
//!   with `.prev` fallback,
//! * [`resilient`] — a predictor wrapper that degrades to a cheap baseline
//!   instead of aborting,
//! * [`fault`] — deterministic fault injection to prove the recovery paths,
//! * [`supervisor`] — the loop tying them together: retry hung schedules
//!   with fresh seeds, quarantine repeat offenders, checkpoint periodically,
//!   resume exactly.
//!
//! The supervised loop is bit-identical to the plain
//! [`snowcat_core::run_campaign_budgeted`] when no faults are injected and
//! no fuel override is set — robustness costs nothing on the happy path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod fault;
pub mod resilient;
pub mod supervisor;
pub mod watchdog;

pub use checkpoint::{
    decode_checkpoint, encode_checkpoint, load_checkpoint_with_fallback, prev_path,
    save_checkpoint_atomic, CampaignCheckpoint, CKPT_MAGIC, CKPT_VERSION,
};
pub use fault::{corrupt, CheckpointFault, CorruptionKind, FaultPlan, FaultyPredictor, HangFault};
pub use resilient::ResilientPredictor;
pub use supervisor::{run_supervised_campaign, RecoveryLog, SupervisedResult, SupervisorConfig};
pub use watchdog::{run_ct_watchdog, ExecOutcome};
