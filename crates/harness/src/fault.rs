//! Deterministic fault injection for recovery-path testing.
//!
//! A [`FaultPlan`] describes, reproducibly, which faults to inject where:
//! executor hangs at chosen stream positions, predictor failures at a fixed
//! batch cadence, checkpoint corruption at chosen write ordinals, and worker
//! panics for parallel campaign runs. Plans parse from a compact spec string
//! so the CLI can take them on the command line (`--fault-plan
//! "hang@3x2,pred@5,ckpt@2:flip"`), and an empty plan injects nothing — the
//! supervised path must then be bit-identical to the unsupervised one.
//!
//! Fleet runs extend the grammar with per-worker faults interpreted by the
//! [`crate::fleet`] coordinator: `kill-worker@K` (worker K dies after its
//! first shard checkpoint), `stall-worker@K` (worker K goes silent until
//! its lease is revoked), and `corrupt-worker-ckpt@K` (worker K corrupts
//! its first shard-checkpoint write, then dies).

use snowcat_core::{CoveragePredictor, PredictedCoverage, PredictorStats, SnowcatError};
use snowcat_graph::CtGraph;
use std::sync::atomic::{AtomicU64, Ordering};

/// How a checkpoint write is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Flip one byte in the middle of the written file.
    Flip,
    /// Truncate the file to half its length.
    Truncate,
}

/// Force the first `attempts` exploration attempts at stream position
/// `position` to run with a starvation fuel budget, so they classify hung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HangFault {
    /// Stream position (CTI index) the fault applies to.
    pub position: usize,
    /// How many consecutive attempts at that position hang.
    pub attempts: u32,
}

/// Corrupt the `ordinal`-th checkpoint write (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointFault {
    /// Which checkpoint write to corrupt (1 = first write).
    pub ordinal: u64,
    /// How to corrupt it.
    pub kind: CorruptionKind,
}

/// A reproducible fault-injection plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Executor-hang faults by stream position.
    pub hangs: Vec<HangFault>,
    /// Panic every Nth predictor batch (None = no predictor faults).
    pub predictor_period: Option<u64>,
    /// Checkpoint-corruption faults by write ordinal.
    pub checkpoints: Vec<CheckpointFault>,
    /// Campaign indices whose parallel worker panics (used with
    /// `ExplorerSpec::Faulty` by callers of `run_campaigns_parallel`).
    pub worker_panics: Vec<usize>,
    /// Fleet worker slots that die right after their first shard checkpoint.
    pub kill_workers: Vec<usize>,
    /// Fleet worker slots that go silent (stop heartbeating) after their
    /// first shard checkpoint and only exit once their lease is revoked.
    pub stall_workers: Vec<usize>,
    /// Fleet worker slots whose first shard-checkpoint write is corrupted
    /// on disk before the worker dies.
    pub corrupt_worker_ckpts: Vec<usize>,
    /// Fleet shards that kill *every* worker leasing them before any
    /// progress is made — a reproducible crash loop the coordinator must
    /// break by quarantining the shard within `max_steals` generations.
    pub poison_shards: Vec<usize>,
}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.hangs.is_empty()
            && self.predictor_period.is_none()
            && self.checkpoints.is_empty()
            && self.worker_panics.is_empty()
            && self.kill_workers.is_empty()
            && self.stall_workers.is_empty()
            && self.corrupt_worker_ckpts.is_empty()
            && self.poison_shards.is_empty()
    }

    /// How many attempts at stream position `position` should hang.
    pub fn hang_attempts_at(&self, position: usize) -> u32 {
        self.hangs.iter().filter(|h| h.position == position).map(|h| h.attempts).sum()
    }

    /// The corruption to apply to the `ordinal`-th checkpoint write, if any.
    pub fn checkpoint_fault(&self, ordinal: u64) -> Option<CorruptionKind> {
        self.checkpoints.iter().find(|c| c.ordinal == ordinal).map(|c| c.kind)
    }

    /// Parse a comma-separated spec string. Grammar (whitespace-free):
    ///
    /// * `hang@I` / `hang@IxN` — hang the first 1 (resp. N) attempts at
    ///   stream position I,
    /// * `pred@N` — panic every Nth predictor batch (N ≥ 1),
    /// * `ckpt@K:flip` / `ckpt@K:trunc` — corrupt the Kth checkpoint write,
    /// * `panic@I` — panic the parallel campaign worker at spec index I,
    /// * `kill-worker@K` — kill fleet worker K after its first shard
    ///   checkpoint,
    /// * `stall-worker@K` — fleet worker K stops heartbeating after its
    ///   first shard checkpoint (a straggler: its lease must expire),
    /// * `corrupt-worker-ckpt@K` — fleet worker K corrupts its first shard
    ///   checkpoint write, then dies,
    /// * `poison-shard@S` — every worker leasing fleet shard S dies before
    ///   making progress (a crash loop the coordinator must quarantine).
    ///
    /// The empty string parses to the empty plan. Unknown directives and
    /// malformed tokens are rejected with [`SnowcatError::FaultPlan`];
    /// positions are range-checked separately by [`FaultPlan::validate`]
    /// once the run's stream length and worker count are known.
    pub fn parse(spec: &str) -> Result<Self, SnowcatError> {
        let bad = |token: &str, detail: String| SnowcatError::FaultPlan {
            token: token.to_owned(),
            detail,
        };
        let mut plan = FaultPlan::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, rest) =
                token.split_once('@').ok_or_else(|| bad(token, "missing '@'".into()))?;
            match kind {
                "hang" => {
                    let (pos, attempts) = match rest.split_once('x') {
                        Some((p, n)) => (
                            p.parse::<usize>().map_err(|_| bad(token, bad_num(p)))?,
                            n.parse::<u32>().map_err(|_| bad(token, bad_num(n)))?,
                        ),
                        None => (rest.parse::<usize>().map_err(|_| bad(token, bad_num(rest)))?, 1),
                    };
                    if attempts == 0 {
                        return Err(bad(token, "hang count must be ≥ 1".into()));
                    }
                    plan.hangs.push(HangFault { position: pos, attempts });
                }
                "pred" => {
                    let n = rest.parse::<u64>().map_err(|_| bad(token, bad_num(rest)))?;
                    if n == 0 {
                        return Err(bad(token, "predictor period must be ≥ 1".into()));
                    }
                    if plan.predictor_period.is_some() {
                        return Err(bad(token, "duplicate pred@ fault".into()));
                    }
                    plan.predictor_period = Some(n);
                }
                "ckpt" => {
                    let (ord, how) = rest
                        .split_once(':')
                        .ok_or_else(|| bad(token, "expected ckpt@K:flip|trunc".into()))?;
                    let ordinal = ord.parse::<u64>().map_err(|_| bad(token, bad_num(ord)))?;
                    if ordinal == 0 {
                        return Err(bad(token, "checkpoint ordinal is 1-based".into()));
                    }
                    let kind = match how {
                        "flip" => CorruptionKind::Flip,
                        "trunc" => CorruptionKind::Truncate,
                        other => return Err(bad(token, format!("unknown corruption '{other}'"))),
                    };
                    plan.checkpoints.push(CheckpointFault { ordinal, kind });
                }
                "panic" => {
                    let i = rest.parse::<usize>().map_err(|_| bad(token, bad_num(rest)))?;
                    plan.worker_panics.push(i);
                }
                "kill-worker" => {
                    let i = rest.parse::<usize>().map_err(|_| bad(token, bad_num(rest)))?;
                    plan.kill_workers.push(i);
                }
                "stall-worker" => {
                    let i = rest.parse::<usize>().map_err(|_| bad(token, bad_num(rest)))?;
                    plan.stall_workers.push(i);
                }
                "corrupt-worker-ckpt" => {
                    let i = rest.parse::<usize>().map_err(|_| bad(token, bad_num(rest)))?;
                    plan.corrupt_worker_ckpts.push(i);
                }
                "poison-shard" => {
                    let i = rest.parse::<usize>().map_err(|_| bad(token, bad_num(rest)))?;
                    plan.poison_shards.push(i);
                }
                other => return Err(bad(token, format!("unknown fault kind '{other}'"))),
            }
        }
        Ok(plan)
    }

    /// Range-check the plan against a concrete run: hang positions must lie
    /// inside the `stream_len`-position stream, and worker-slot / shard
    /// directives must name a slot (resp. shard) below `workers`. A
    /// directive outside the run would previously be *silently ignored* —
    /// the fault never fired and the recovery path it was meant to prove
    /// went unexercised — so out-of-range entries are now a typed
    /// [`SnowcatError::FaultPlan`]. Campaign callers (no fleet) pass
    /// `workers = 0` to skip the fleet checks only when no fleet directive
    /// is present; a fleet directive with `workers = 0` is itself an error.
    pub fn validate(&self, stream_len: usize, workers: usize) -> Result<(), SnowcatError> {
        let bad = |token: String, detail: String| SnowcatError::FaultPlan { token, detail };
        for h in &self.hangs {
            if h.position >= stream_len {
                return Err(bad(
                    format!("hang@{}", h.position),
                    format!("position {} is outside the {stream_len}-CTI stream", h.position),
                ));
            }
        }
        let slot_sets: [(&str, &[usize]); 4] = [
            ("kill-worker", &self.kill_workers),
            ("stall-worker", &self.stall_workers),
            ("corrupt-worker-ckpt", &self.corrupt_worker_ckpts),
            ("poison-shard", &self.poison_shards),
        ];
        for (name, slots) in slot_sets {
            for &slot in slots {
                if slot >= workers {
                    let what = if name == "poison-shard" { "shard" } else { "worker slot" };
                    return Err(bad(
                        format!("{name}@{slot}"),
                        format!(
                            "{what} {slot} does not exist in a {workers}-worker fleet \
                             (the fault would be silently ignored)"
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

fn bad_num(field: &str) -> String {
    format!("'{field}' is not a valid number")
}

/// Corrupt a serialized blob per `kind` (pure function, for checkpoint
/// fault injection and tests).
pub fn corrupt(bytes: &[u8], kind: CorruptionKind) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match kind {
        CorruptionKind::Flip => {
            if !out.is_empty() {
                let mid = out.len() / 2;
                out[mid] ^= 0x20;
            }
            out
        }
        CorruptionKind::Truncate => {
            out.truncate(out.len() / 2);
            out
        }
    }
}

/// A predictor wrapper that panics on a fixed batch cadence — the injected
/// "predictor failure" the [`crate::resilient::ResilientPredictor`] must
/// contain. Deterministic: the Nth, 2Nth, … batches fail.
pub struct FaultyPredictor<P> {
    inner: P,
    period: u64,
    batch_no: AtomicU64,
}

impl<P: CoveragePredictor> FaultyPredictor<P> {
    /// Wrap `inner`, panicking on every `period`-th batch (period ≥ 1;
    /// a period of 1 fails every batch).
    pub fn new(inner: P, period: u64) -> Self {
        Self { inner, period: period.max(1), batch_no: AtomicU64::new(0) }
    }
}

impl<P: CoveragePredictor> CoveragePredictor for FaultyPredictor<P> {
    fn predict_batch(&self, graphs: &[CtGraph]) -> Vec<PredictedCoverage> {
        let n = self.batch_no.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.period) {
            panic!("injected predictor fault (batch {n})");
        }
        self.inner.predict_batch(graphs)
    }

    fn stats(&self) -> PredictorStats {
        self.inner.stats()
    }

    fn fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }

    fn name(&self) -> String {
        format!("faulty/{}({})", self.period, self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn full_grammar_parses() {
        let plan = FaultPlan::parse(
            "hang@3x2,hang@7,pred@5,ckpt@2:flip,ckpt@4:trunc,panic@1,\
             kill-worker@1,stall-worker@2,corrupt-worker-ckpt@0,poison-shard@3",
        )
        .unwrap();
        assert_eq!(plan.hang_attempts_at(3), 2);
        assert_eq!(plan.hang_attempts_at(7), 1);
        assert_eq!(plan.hang_attempts_at(0), 0);
        assert_eq!(plan.predictor_period, Some(5));
        assert_eq!(plan.checkpoint_fault(2), Some(CorruptionKind::Flip));
        assert_eq!(plan.checkpoint_fault(4), Some(CorruptionKind::Truncate));
        assert_eq!(plan.checkpoint_fault(1), None);
        assert_eq!(plan.worker_panics, vec![1]);
        assert_eq!(plan.kill_workers, vec![1]);
        assert_eq!(plan.stall_workers, vec![2]);
        assert_eq!(plan.corrupt_worker_ckpts, vec![0]);
        assert_eq!(plan.poison_shards, vec![3]);
        assert!(!plan.is_empty());
    }

    #[test]
    fn malformed_specs_are_rejected_with_named_error() {
        // (spec, offending token, detail fragment)
        let table: &[(&str, &str, &str)] = &[
            ("hang", "hang", "missing '@'"),
            ("hang@", "hang@", "not a valid number"),
            ("hang@x", "hang@x", "not a valid number"),
            ("hang@1x0", "hang@1x0", "hang count must be ≥ 1"),
            ("pred@0", "pred@0", "predictor period must be ≥ 1"),
            ("pred@x", "pred@x", "not a valid number"),
            ("ckpt@1", "ckpt@1", "expected ckpt@K:flip|trunc"),
            ("ckpt@0:flip", "ckpt@0:flip", "checkpoint ordinal is 1-based"),
            ("ckpt@1:melt", "ckpt@1:melt", "unknown corruption 'melt'"),
            ("wobble@3", "wobble@3", "unknown fault kind 'wobble'"),
            ("pred@2,pred@3", "pred@3", "duplicate pred@ fault"),
            ("kill-worker@", "kill-worker@", "not a valid number"),
            ("stall-worker@x", "stall-worker@x", "not a valid number"),
            ("corrupt-worker-ckpt@-1", "corrupt-worker-ckpt@-1", "not a valid number"),
            ("poison-shard@", "poison-shard@", "not a valid number"),
            ("poison-worker@1", "poison-worker@1", "unknown fault kind 'poison-worker'"),
        ];
        for &(spec, token, fragment) in table {
            match FaultPlan::parse(spec) {
                Err(SnowcatError::FaultPlan { token: t, detail }) => {
                    assert_eq!(t, token, "wrong token for '{spec}'");
                    assert!(
                        detail.contains(fragment),
                        "'{spec}': detail '{detail}' should contain '{fragment}'"
                    );
                }
                other => panic!("'{spec}' should fail with FaultPlan, got {other:?}"),
            }
        }
    }

    #[test]
    fn validate_rejects_out_of_range_positions() {
        // (spec, stream_len, workers, offending token, detail fragment)
        let table: &[(&str, usize, usize, &str, &str)] = &[
            ("hang@16", 16, 2, "hang@16", "outside the 16-CTI stream"),
            ("hang@99x3", 16, 2, "hang@99", "outside the 16-CTI stream"),
            ("kill-worker@2", 16, 2, "kill-worker@2", "worker slot 2 does not exist"),
            ("stall-worker@5", 16, 2, "stall-worker@5", "worker slot 5 does not exist"),
            (
                "corrupt-worker-ckpt@3",
                16,
                3,
                "corrupt-worker-ckpt@3",
                "worker slot 3 does not exist",
            ),
            ("poison-shard@4", 16, 4, "poison-shard@4", "shard 4 does not exist"),
            // A fleet directive in a no-fleet context (workers = 0) is an error.
            ("kill-worker@0", 16, 0, "kill-worker@0", "worker slot 0 does not exist"),
        ];
        for &(spec, stream_len, workers, token, fragment) in table {
            let plan = FaultPlan::parse(spec).unwrap();
            match plan.validate(stream_len, workers) {
                Err(SnowcatError::FaultPlan { token: t, detail }) => {
                    assert_eq!(t, token, "wrong token for '{spec}'");
                    assert!(
                        detail.contains(fragment),
                        "'{spec}': detail '{detail}' should contain '{fragment}'"
                    );
                }
                other => panic!("'{spec}' should fail validate, got {other:?}"),
            }
        }
        // In-range plans pass.
        let plan = FaultPlan::parse("hang@15,kill-worker@1,poison-shard@0").unwrap();
        plan.validate(16, 2).unwrap();
        // Empty plans validate in any context.
        FaultPlan::default().validate(0, 0).unwrap();
    }

    #[test]
    fn corruption_changes_bytes() {
        let original = vec![7u8; 64];
        let flipped = corrupt(&original, CorruptionKind::Flip);
        assert_eq!(flipped.len(), original.len());
        assert_ne!(flipped, original);
        let torn = corrupt(&original, CorruptionKind::Truncate);
        assert_eq!(torn.len(), 32);
    }
}
