//! Deterministic fault injection for recovery-path testing.
//!
//! A [`FaultPlan`] describes, reproducibly, which faults to inject where:
//! executor hangs at chosen stream positions, predictor failures at a fixed
//! batch cadence, checkpoint corruption at chosen write ordinals, and worker
//! panics for parallel campaign runs. Plans parse from a compact spec string
//! so the CLI can take them on the command line (`--fault-plan
//! "hang@3x2,pred@5,ckpt@2:flip"`), and an empty plan injects nothing — the
//! supervised path must then be bit-identical to the unsupervised one.
//!
//! Fleet runs extend the grammar with per-worker faults interpreted by the
//! [`crate::fleet`] coordinator: `kill-worker@K` (worker K dies after its
//! first shard checkpoint), `stall-worker@K` (worker K goes silent until
//! its lease is revoked), and `corrupt-worker-ckpt@K` (worker K corrupts
//! its first shard-checkpoint write, then dies).

use snowcat_core::{CoveragePredictor, PredictedCoverage, PredictorStats};
use snowcat_graph::CtGraph;
use std::sync::atomic::{AtomicU64, Ordering};

/// How a checkpoint write is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Flip one byte in the middle of the written file.
    Flip,
    /// Truncate the file to half its length.
    Truncate,
}

/// Force the first `attempts` exploration attempts at stream position
/// `position` to run with a starvation fuel budget, so they classify hung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HangFault {
    /// Stream position (CTI index) the fault applies to.
    pub position: usize,
    /// How many consecutive attempts at that position hang.
    pub attempts: u32,
}

/// Corrupt the `ordinal`-th checkpoint write (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointFault {
    /// Which checkpoint write to corrupt (1 = first write).
    pub ordinal: u64,
    /// How to corrupt it.
    pub kind: CorruptionKind,
}

/// A reproducible fault-injection plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Executor-hang faults by stream position.
    pub hangs: Vec<HangFault>,
    /// Panic every Nth predictor batch (None = no predictor faults).
    pub predictor_period: Option<u64>,
    /// Checkpoint-corruption faults by write ordinal.
    pub checkpoints: Vec<CheckpointFault>,
    /// Campaign indices whose parallel worker panics (used with
    /// `ExplorerSpec::Faulty` by callers of `run_campaigns_parallel`).
    pub worker_panics: Vec<usize>,
    /// Fleet worker slots that die right after their first shard checkpoint.
    pub kill_workers: Vec<usize>,
    /// Fleet worker slots that go silent (stop heartbeating) after their
    /// first shard checkpoint and only exit once their lease is revoked.
    pub stall_workers: Vec<usize>,
    /// Fleet worker slots whose first shard-checkpoint write is corrupted
    /// on disk before the worker dies.
    pub corrupt_worker_ckpts: Vec<usize>,
}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.hangs.is_empty()
            && self.predictor_period.is_none()
            && self.checkpoints.is_empty()
            && self.worker_panics.is_empty()
            && self.kill_workers.is_empty()
            && self.stall_workers.is_empty()
            && self.corrupt_worker_ckpts.is_empty()
    }

    /// How many attempts at stream position `position` should hang.
    pub fn hang_attempts_at(&self, position: usize) -> u32 {
        self.hangs.iter().filter(|h| h.position == position).map(|h| h.attempts).sum()
    }

    /// The corruption to apply to the `ordinal`-th checkpoint write, if any.
    pub fn checkpoint_fault(&self, ordinal: u64) -> Option<CorruptionKind> {
        self.checkpoints.iter().find(|c| c.ordinal == ordinal).map(|c| c.kind)
    }

    /// Parse a comma-separated spec string. Grammar (whitespace-free):
    ///
    /// * `hang@I` / `hang@IxN` — hang the first 1 (resp. N) attempts at
    ///   stream position I,
    /// * `pred@N` — panic every Nth predictor batch (N ≥ 1),
    /// * `ckpt@K:flip` / `ckpt@K:trunc` — corrupt the Kth checkpoint write,
    /// * `panic@I` — panic the parallel campaign worker at spec index I,
    /// * `kill-worker@K` — kill fleet worker K after its first shard
    ///   checkpoint,
    /// * `stall-worker@K` — fleet worker K stops heartbeating after its
    ///   first shard checkpoint (a straggler: its lease must expire),
    /// * `corrupt-worker-ckpt@K` — fleet worker K corrupts its first shard
    ///   checkpoint write, then dies.
    ///
    /// The empty string parses to the empty plan.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, rest) = token
                .split_once('@')
                .ok_or_else(|| format!("fault token '{token}' is missing '@'"))?;
            match kind {
                "hang" => {
                    let (pos, attempts) = match rest.split_once('x') {
                        Some((p, n)) => (
                            p.parse::<usize>().map_err(|_| bad_num(token, p))?,
                            n.parse::<u32>().map_err(|_| bad_num(token, n))?,
                        ),
                        None => (rest.parse::<usize>().map_err(|_| bad_num(token, rest))?, 1),
                    };
                    if attempts == 0 {
                        return Err(format!("'{token}': hang count must be ≥ 1"));
                    }
                    plan.hangs.push(HangFault { position: pos, attempts });
                }
                "pred" => {
                    let n = rest.parse::<u64>().map_err(|_| bad_num(token, rest))?;
                    if n == 0 {
                        return Err(format!("'{token}': predictor period must be ≥ 1"));
                    }
                    if plan.predictor_period.is_some() {
                        return Err("duplicate pred@ fault".into());
                    }
                    plan.predictor_period = Some(n);
                }
                "ckpt" => {
                    let (ord, how) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("'{token}': expected ckpt@K:flip|trunc"))?;
                    let ordinal = ord.parse::<u64>().map_err(|_| bad_num(token, ord))?;
                    if ordinal == 0 {
                        return Err(format!("'{token}': checkpoint ordinal is 1-based"));
                    }
                    let kind = match how {
                        "flip" => CorruptionKind::Flip,
                        "trunc" => CorruptionKind::Truncate,
                        other => return Err(format!("'{token}': unknown corruption '{other}'")),
                    };
                    plan.checkpoints.push(CheckpointFault { ordinal, kind });
                }
                "panic" => {
                    let i = rest.parse::<usize>().map_err(|_| bad_num(token, rest))?;
                    plan.worker_panics.push(i);
                }
                "kill-worker" => {
                    let i = rest.parse::<usize>().map_err(|_| bad_num(token, rest))?;
                    plan.kill_workers.push(i);
                }
                "stall-worker" => {
                    let i = rest.parse::<usize>().map_err(|_| bad_num(token, rest))?;
                    plan.stall_workers.push(i);
                }
                "corrupt-worker-ckpt" => {
                    let i = rest.parse::<usize>().map_err(|_| bad_num(token, rest))?;
                    plan.corrupt_worker_ckpts.push(i);
                }
                other => return Err(format!("unknown fault kind '{other}' in '{token}'")),
            }
        }
        Ok(plan)
    }
}

fn bad_num(token: &str, field: &str) -> String {
    format!("'{token}': '{field}' is not a valid number")
}

/// Corrupt a serialized blob per `kind` (pure function, for checkpoint
/// fault injection and tests).
pub fn corrupt(bytes: &[u8], kind: CorruptionKind) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match kind {
        CorruptionKind::Flip => {
            if !out.is_empty() {
                let mid = out.len() / 2;
                out[mid] ^= 0x20;
            }
            out
        }
        CorruptionKind::Truncate => {
            out.truncate(out.len() / 2);
            out
        }
    }
}

/// A predictor wrapper that panics on a fixed batch cadence — the injected
/// "predictor failure" the [`crate::resilient::ResilientPredictor`] must
/// contain. Deterministic: the Nth, 2Nth, … batches fail.
pub struct FaultyPredictor<P> {
    inner: P,
    period: u64,
    batch_no: AtomicU64,
}

impl<P: CoveragePredictor> FaultyPredictor<P> {
    /// Wrap `inner`, panicking on every `period`-th batch (period ≥ 1;
    /// a period of 1 fails every batch).
    pub fn new(inner: P, period: u64) -> Self {
        Self { inner, period: period.max(1), batch_no: AtomicU64::new(0) }
    }
}

impl<P: CoveragePredictor> CoveragePredictor for FaultyPredictor<P> {
    fn predict_batch(&self, graphs: &[CtGraph]) -> Vec<PredictedCoverage> {
        let n = self.batch_no.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.period) {
            panic!("injected predictor fault (batch {n})");
        }
        self.inner.predict_batch(graphs)
    }

    fn stats(&self) -> PredictorStats {
        self.inner.stats()
    }

    fn fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }

    fn name(&self) -> String {
        format!("faulty/{}({})", self.period, self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn full_grammar_parses() {
        let plan = FaultPlan::parse(
            "hang@3x2,hang@7,pred@5,ckpt@2:flip,ckpt@4:trunc,panic@1,\
             kill-worker@1,stall-worker@2,corrupt-worker-ckpt@0",
        )
        .unwrap();
        assert_eq!(plan.hang_attempts_at(3), 2);
        assert_eq!(plan.hang_attempts_at(7), 1);
        assert_eq!(plan.hang_attempts_at(0), 0);
        assert_eq!(plan.predictor_period, Some(5));
        assert_eq!(plan.checkpoint_fault(2), Some(CorruptionKind::Flip));
        assert_eq!(plan.checkpoint_fault(4), Some(CorruptionKind::Truncate));
        assert_eq!(plan.checkpoint_fault(1), None);
        assert_eq!(plan.worker_panics, vec![1]);
        assert_eq!(plan.kill_workers, vec![1]);
        assert_eq!(plan.stall_workers, vec![2]);
        assert_eq!(plan.corrupt_worker_ckpts, vec![0]);
        assert!(!plan.is_empty());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "hang",
            "hang@",
            "hang@x",
            "hang@1x0",
            "pred@0",
            "pred@x",
            "ckpt@1",
            "ckpt@0:flip",
            "ckpt@1:melt",
            "wobble@3",
            "pred@2,pred@3",
            "kill-worker@",
            "stall-worker@x",
            "corrupt-worker-ckpt@-1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn corruption_changes_bytes() {
        let original = vec![7u8; 64];
        let flipped = corrupt(&original, CorruptionKind::Flip);
        assert_eq!(flipped.len(), original.len());
        assert_ne!(flipped, original);
        let torn = corrupt(&original, CorruptionKind::Truncate);
        assert_eq!(torn.len(), 32);
    }
}
