//! Checksummed campaign checkpoints (SCCP format) with atomic rotation.
//!
//! A checkpoint captures everything the supervisor needs to resume a killed
//! campaign at the exact CTI position it stopped: accumulated coverage,
//! race sets, history, quarantine, the selection strategy's memory, and the
//! base seed (per-CTI seeds are derived positionally, so "RNG state" is the
//! base seed plus the resume position).
//!
//! On-disk framing reuses the corpus crate's checksummed envelope
//! (`magic | version | length | crc32 | payload`, payload = JSON), so a
//! truncated or bit-flipped snapshot is *detected*, not deserialized into
//! garbage. Writes are atomic (tmp + rename) and rotate the previous
//! snapshot to `<path>.prev`; loads fall back to `.prev` when the current
//! file is corrupt, and only fail when neither is usable.

use crate::supervisor::RecoveryLog;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use snowcat_core::{HistoryPoint, SnowcatError, StrategySnapshot};
use snowcat_corpus::{frame_checksummed, unframe_checksummed};
use snowcat_kernel::BugId;
use snowcat_race::RaceKey;
use snowcat_vm::BitSet;
use std::path::{Path, PathBuf};

/// Magic of the Snowcat Campaign CheckPoint envelope.
pub const CKPT_MAGIC: &[u8; 4] = b"SCCP";
/// Current (and minimum readable) envelope version.
pub const CKPT_VERSION: u16 = 1;

/// Full campaign state at a stream position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// Explorer label — resumes must match the original explorer.
    pub label: String,
    /// Base exploration seed — per-CTI seeds derive from it positionally.
    pub seed: u64,
    /// Next stream position to process.
    pub position: usize,
    /// Dynamic executions accumulated (accepted attempts only).
    pub executions: u64,
    /// Inferences accumulated (accepted attempts only).
    pub inferences: u64,
    /// Unique potential race keys, sorted.
    pub race_keys: Vec<RaceKey>,
    /// Unique harmful race keys, sorted.
    pub harmful_keys: Vec<RaceKey>,
    /// Schedule-dependent block coverage bitmap.
    pub blocks: BitSet,
    /// Bugs exposed, in discovery order.
    pub bugs_found: Vec<BugId>,
    /// History points recorded so far.
    pub history: Vec<HistoryPoint>,
    /// Quarantined CT pairs (corpus index pairs), sorted.
    pub quarantine: Vec<(usize, usize)>,
    /// Selection-strategy memory (None for PCT).
    pub strategy: Option<StrategySnapshot>,
    /// Recovery counters accumulated so far.
    pub recovery: RecoveryLog,
}

/// Serialize a checkpoint into its checksummed envelope.
pub fn encode_checkpoint(ck: &CampaignCheckpoint) -> Result<Vec<u8>, SnowcatError> {
    let payload = serde_json::to_string(ck).map_err(|e| SnowcatError::Parse {
        path: PathBuf::new(),
        message: format!("checkpoint serialization failed: {e}"),
    })?;
    Ok(frame_checksummed(CKPT_MAGIC, CKPT_VERSION, payload.as_bytes()).to_vec())
}

/// Decode a checkpoint, verifying magic, version, length and checksum.
pub fn decode_checkpoint(path: &Path, bytes: &[u8]) -> Result<CampaignCheckpoint, SnowcatError> {
    let corrupt =
        |detail: String| SnowcatError::CheckpointCorrupt { path: path.to_owned(), detail };
    let (_, payload) =
        unframe_checksummed(CKPT_MAGIC, CKPT_VERSION, CKPT_VERSION, Bytes::from(bytes.to_vec()))
            .map_err(|e| corrupt(e.to_string()))?;
    let text = std::str::from_utf8(payload.as_slice())
        .map_err(|e| corrupt(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| corrupt(format!("payload is not a checkpoint: {e}")))
}

/// The rotation target for the previous good snapshot.
pub fn prev_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".prev");
    PathBuf::from(os)
}

/// Atomically write snapshot bytes: write to `<path>.tmp`, rotate any
/// existing `<path>` to `<path>.prev`, then rename the tmp file into place.
/// A SIGKILL at any point leaves either the old snapshot, the old snapshot
/// plus a stray tmp file, or the new snapshot — never a torn `<path>`.
/// Shared by the campaign (SCCP) and training (STCP) checkpoint writers.
pub fn save_bytes_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnowcatError> {
    let io_err = |p: &Path, source: std::io::Error| SnowcatError::Io { path: p.to_owned(), source };
    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        PathBuf::from(os)
    };
    std::fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, e))?;
    if path.exists() {
        std::fs::rename(path, prev_path(path)).map_err(|e| io_err(path, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(&tmp, e))
}

/// An integrity-checking checkpoint decoder, as accepted by
/// [`load_with_fallback`]: turns a file's raw bytes into a `T` or a typed
/// corruption error naming the path.
pub type CheckpointDecoder<'a, T> = &'a dyn Fn(&Path, &[u8]) -> Result<T, SnowcatError>;

/// Load-and-decode with `.prev` fallback: try `path`, then `<path>.prev`,
/// using the caller's decoder for integrity checking. Returns the decoded
/// value and whether the fallback was used; errors with
/// [`SnowcatError::CheckpointCorrupt`] naming both files when neither is
/// usable.
pub fn load_with_fallback<T>(
    path: &Path,
    decode: CheckpointDecoder<'_, T>,
) -> Result<(T, bool), SnowcatError> {
    let try_load = |p: &Path| -> Result<T, SnowcatError> {
        let bytes =
            std::fs::read(p).map_err(|source| SnowcatError::Io { path: p.to_owned(), source })?;
        decode(p, &bytes)
    };
    match try_load(path) {
        Ok(ck) => Ok((ck, false)),
        Err(first) => {
            let prev = prev_path(path);
            match try_load(&prev) {
                Ok(ck) => Ok((ck, true)),
                Err(_) => {
                    // Avoid double-prefixing when the first failure is
                    // already a CheckpointCorrupt naming this path.
                    let detail = match &first {
                        SnowcatError::CheckpointCorrupt { detail, .. } => detail.clone(),
                        other => other.to_string(),
                    };
                    Err(SnowcatError::CheckpointCorrupt {
                        path: path.to_owned(),
                        detail: format!("{detail}; fallback {} also unusable", prev.display()),
                    })
                }
            }
        }
    }
}

/// Atomically write a campaign checkpoint (see [`save_bytes_atomic`]).
///
/// `raw_override` lets fault injection substitute corrupted bytes while
/// keeping the write path identical.
pub fn save_checkpoint_atomic(
    path: &Path,
    ck: &CampaignCheckpoint,
    raw_override: Option<Vec<u8>>,
) -> Result<(), SnowcatError> {
    let bytes = match raw_override {
        Some(raw) => raw,
        None => encode_checkpoint(ck)?,
    };
    save_bytes_atomic(path, &bytes)
}

/// Load a campaign checkpoint, falling back to `<path>.prev` when `<path>`
/// is missing or fails its integrity checks. Returns the checkpoint and
/// whether the fallback was used. Errors with
/// [`SnowcatError::CheckpointCorrupt`] when no usable snapshot exists.
pub fn load_checkpoint_with_fallback(
    path: &Path,
) -> Result<(CampaignCheckpoint, bool), SnowcatError> {
    load_with_fallback(path, &|p, bytes| decode_checkpoint(p, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{corrupt, CorruptionKind};

    fn sample(position: usize) -> CampaignCheckpoint {
        let mut blocks = BitSet::new(64);
        blocks.insert(3);
        blocks.insert(17);
        CampaignCheckpoint {
            label: "PCT".into(),
            seed: 0xE791,
            position,
            executions: 40,
            inferences: 0,
            race_keys: vec![],
            harmful_keys: vec![],
            blocks,
            bugs_found: vec![BugId(2)],
            history: vec![],
            quarantine: vec![(1, 4)],
            strategy: Some(StrategySnapshot::S2 { seen: vec![3, 17] }),
            recovery: RecoveryLog { hung_attempts: 1, ..Default::default() },
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("snowcat-ckpt-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrips_through_envelope() {
        let ck = sample(5);
        let bytes = encode_checkpoint(&ck).unwrap();
        let back = decode_checkpoint(Path::new("x"), &bytes).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn corruption_is_detected_not_deserialized() {
        let bytes = encode_checkpoint(&sample(5)).unwrap();
        for kind in [CorruptionKind::Flip, CorruptionKind::Truncate] {
            let bad = corrupt(&bytes, kind);
            let err = decode_checkpoint(Path::new("x"), &bad).unwrap_err();
            assert!(
                matches!(err, SnowcatError::CheckpointCorrupt { .. }),
                "expected CheckpointCorrupt, got {err:?}"
            );
        }
    }

    #[test]
    fn rotation_keeps_previous_good_snapshot() {
        let dir = tmp_dir("rotate");
        let path = dir.join("campaign.ckpt");
        save_checkpoint_atomic(&path, &sample(1), None).unwrap();
        save_checkpoint_atomic(&path, &sample(2), None).unwrap();
        let (ck, fell_back) = load_checkpoint_with_fallback(&path).unwrap();
        assert_eq!(ck.position, 2);
        assert!(!fell_back);
        let (prev, _) = load_checkpoint_with_fallback(&prev_path(&path)).unwrap();
        assert_eq!(prev.position, 1);
    }

    #[test]
    fn corrupt_current_falls_back_to_previous() {
        let dir = tmp_dir("fallback");
        let path = dir.join("campaign.ckpt");
        save_checkpoint_atomic(&path, &sample(1), None).unwrap();
        // Second write is corrupted on disk (injected I/O corruption).
        let raw = corrupt(&encode_checkpoint(&sample(2)).unwrap(), CorruptionKind::Flip);
        save_checkpoint_atomic(&path, &sample(2), Some(raw)).unwrap();
        let (ck, fell_back) = load_checkpoint_with_fallback(&path).unwrap();
        assert!(fell_back, "corrupt current snapshot must fall back to .prev");
        assert_eq!(ck.position, 1);
    }

    #[test]
    fn both_corrupt_is_a_typed_error() {
        let dir = tmp_dir("dead");
        let path = dir.join("campaign.ckpt");
        std::fs::write(&path, b"garbage").unwrap();
        std::fs::write(prev_path(&path), b"more garbage").unwrap();
        let err = load_checkpoint_with_fallback(&path).unwrap_err();
        assert!(matches!(err, SnowcatError::CheckpointCorrupt { .. }));
        assert!(err.to_string().contains("campaign.ckpt"), "error names the file: {err}");
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn missing_file_is_an_io_error_when_no_fallback() {
        let dir = tmp_dir("missing");
        let err = load_checkpoint_with_fallback(&dir.join("nope.ckpt")).unwrap_err();
        // Neither file exists: surfaced as CheckpointCorrupt naming both.
        assert!(matches!(err, SnowcatError::CheckpointCorrupt { .. }));
    }
}
