//! Wire protocol for the process fleet transport.
//!
//! The coordinator and a `snowcat fleet-worker` subprocess speak
//! length-prefixed, CRC-framed JSON over the child's stdin/stdout. The
//! framing reuses the SCCP/SCFC layout from `snowcat_corpus::binfmt`
//! (`magic | u16 version | u64 payload-len | u32 crc32 | payload`) so a
//! corrupted or truncated pipe read fails loudly instead of silently
//! desynchronising the stream — a worker whose stdout is garbled is
//! indistinguishable from a dead worker, and is treated as one.
//!
//! The conversation is strictly half-duplex from the coordinator's view:
//!
//! ```text
//! child  -> Ready  { label, seed, stream_len, pid }      (handshake)
//! parent -> Run    ( WireAssignment )                    (one shard lease)
//! child  -> Beat   { beats }                             (repeated)
//! child  -> Done   ( SupervisedResult )  |  Failed { detail }
//! ```
//!
//! One subprocess serves exactly one shard lease: respawning per lease
//! keeps the protocol trivially restartable and makes worker death (the
//! whole point of process isolation) a clean EOF rather than a stateful
//! recovery problem. Heartbeats carry the *cumulative* beat count so the
//! parent can replay missed increments onto the coordinator-side
//! [`LeaseSignal`](crate::LeaseSignal) after a slow pipe flush.

use std::io::{Read, Write};
use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use snowcat_core::SnowcatError;
use snowcat_corpus::binfmt::crc32;

use crate::checkpoint::CampaignCheckpoint;
use crate::fleet::{ShardAssignment, WorkerFault};
use crate::supervisor::SupervisedResult;

/// Frame magic: **S**nowcat **C**oordinator **W**ire **P**rotocol.
pub const WIRE_MAGIC: [u8; 4] = *b"SCWP";
/// Wire protocol version; bumped on any incompatible message change.
pub const WIRE_VERSION: u16 = 1;
/// Upper bound on a single frame payload (a `Done` carrying a full shard
/// history stays far below this; anything larger is stream corruption).
pub const MAX_FRAME_LEN: u64 = 64 * 1024 * 1024;

/// Fixed frame header size: magic(4) + version(2) + len(8) + crc32(4).
const HEADER_LEN: usize = 18;

/// A [`ShardAssignment`](crate::ShardAssignment) minus the in-process
/// [`LeaseSignal`](crate::LeaseSignal) — the lease crosses the process
/// boundary as `Beat` frames instead of shared atomics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireAssignment {
    /// Shard index.
    pub shard: usize,
    /// Worker slot holding the lease.
    pub worker: usize,
    /// First global stream position (inclusive).
    pub start: usize,
    /// One past the last global stream position.
    pub end: usize,
    /// Lease generation (0 = first lease, +1 per steal).
    pub generation: u64,
    /// Seed salt (non-zero only after no-progress generations).
    pub seed_salt: u64,
    /// Where the worker must write its per-shard SCCP checkpoint
    /// (a `String`, not a `PathBuf`, because the wire is JSON and fleet
    /// directories are CLI-provided UTF-8 paths).
    pub checkpoint_path: String,
    /// Checkpoint to resume from (validated by the coordinator).
    pub resume: Option<CampaignCheckpoint>,
    /// Injected fault armed for this worker, if any.
    pub fault: Option<WorkerFault>,
}

impl WireAssignment {
    /// Strip the lease off a coordinator-side assignment.
    pub fn from_assignment(asg: &ShardAssignment) -> Self {
        Self {
            shard: asg.shard,
            worker: asg.worker,
            start: asg.start,
            end: asg.end,
            generation: asg.generation,
            seed_salt: asg.seed_salt,
            checkpoint_path: asg.checkpoint_path.display().to_string(),
            resume: asg.resume.clone(),
            fault: asg.fault,
        }
    }

    /// Rebuild a worker-side assignment around a local lease signal.
    pub fn into_assignment(self, lease: crate::fleet::LeaseSignal) -> ShardAssignment {
        ShardAssignment {
            shard: self.shard,
            worker: self.worker,
            start: self.start,
            end: self.end,
            generation: self.generation,
            seed_salt: self.seed_salt,
            checkpoint_path: PathBuf::from(self.checkpoint_path),
            resume: self.resume,
            lease,
            fault: self.fault,
        }
    }
}

/// Every message that crosses the coordinator/worker pipe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireMsg {
    /// Worker handshake: identifies the run it was launched for. The
    /// coordinator rejects a worker whose identity does not match its own
    /// (a stale binary or wrong-flag respawn must not corrupt shards).
    Ready {
        /// Explorer label the worker will produce.
        label: String,
        /// Base campaign seed.
        seed: u64,
        /// Length of the CT-candidate stream the worker rebuilt.
        stream_len: usize,
        /// Worker process id, for diagnostics and orphan accounting.
        pid: u32,
    },
    /// Coordinator → worker: run this shard lease. Boxed: the embedded
    /// resume checkpoint dwarfs every other variant.
    Run(Box<WireAssignment>),
    /// Worker → coordinator: cumulative heartbeat count for this lease.
    Beat {
        /// Total beats so far (cumulative, not a delta).
        beats: u64,
    },
    /// Worker → coordinator: shard ran to completion; the final SCCP is on
    /// disk at the assignment's checkpoint path.
    Done(Box<SupervisedResult>),
    /// Worker → coordinator: shard failed with a campaign-level error.
    Failed {
        /// Rendered error (exit code class is carried by the process exit).
        detail: String,
    },
}

/// Write one framed message. Flushes, so a heartbeat is visible to the
/// peer as soon as the call returns.
pub fn write_frame(w: &mut impl Write, msg: &WireMsg) -> std::io::Result<()> {
    let payload = serde_json::to_string(msg)
        .map_err(|e| corrupt(format!("unencodable frame: {e}")))?
        .into_bytes();
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&WIRE_MAGIC);
    header[4..6].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    header[6..14].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    header[14..18].copy_from_slice(&crc32(&payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&payload)?;
    w.flush()
}

fn corrupt(detail: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, detail.into())
}

/// Read one framed message. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed its end); any mid-frame EOF, bad magic,
/// version skew, oversized length, CRC mismatch, or undecodable payload is
/// an [`std::io::ErrorKind::InvalidData`] error — the stream cannot be
/// resynchronised and the peer must be treated as dead.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<WireMsg>> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(corrupt("EOF inside a frame header")),
            n => filled += n,
        }
    }
    if header[..4] != WIRE_MAGIC {
        return Err(corrupt(format!("bad frame magic {:02x?}", &header[..4])));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != WIRE_VERSION {
        return Err(corrupt(format!("wire version {version}, expected {WIRE_VERSION}")));
    }
    let len = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(corrupt(format!("frame length {len} exceeds {MAX_FRAME_LEN}")));
    }
    let want_crc = u32::from_le_bytes(header[14..18].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            corrupt("EOF inside a frame payload")
        } else {
            e
        }
    })?;
    let got_crc = crc32(&payload);
    if got_crc != want_crc {
        return Err(corrupt(format!("frame CRC mismatch: {got_crc:#010x} != {want_crc:#010x}")));
    }
    let text = std::str::from_utf8(&payload)
        .map_err(|e| corrupt(format!("frame payload is not UTF-8: {e}")))?;
    let msg = serde_json::from_str(text)
        .map_err(|e| corrupt(format!("undecodable frame payload: {e}")))?;
    Ok(Some(msg))
}

/// Map a wire IO failure onto the fleet's worker-death error.
pub fn wire_error(worker: usize, shard: usize, detail: impl Into<String>) -> SnowcatError {
    SnowcatError::WorkerLost { worker, shard, detail: detail.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_msgs() -> Vec<WireMsg> {
        vec![
            WireMsg::Ready { label: "pct".into(), seed: 0x5EED, stream_len: 64, pid: 4321 },
            WireMsg::Run(Box::new(WireAssignment {
                shard: 2,
                worker: 1,
                start: 32,
                end: 48,
                generation: 1,
                seed_salt: 7,
                checkpoint_path: "/tmp/fleet/shard-2.ckpt".into(),
                resume: None,
                fault: Some(WorkerFault::Stall),
            })),
            WireMsg::Beat { beats: 17 },
            WireMsg::Failed { detail: "campaign hung at position 3".into() },
        ]
    }

    #[test]
    fn frames_roundtrip_in_sequence() {
        let msgs = sample_msgs();
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for want in &msgs {
            let got = read_frame(&mut cur).unwrap().expect("frame present");
            // WireMsg carries SupervisedResult (no PartialEq); compare the
            // canonical JSON encodings instead.
            assert_eq!(serde_json::to_string(&got).unwrap(), serde_json::to_string(want).unwrap());
        }
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF after last frame");
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut cur = Cursor::new(Vec::new());
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn payload_corruption_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireMsg::Beat { beats: 99 }).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40; // flip a payload bit
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC mismatch"), "{err}");
    }

    #[test]
    fn header_corruption_is_detected() {
        let mut good = Vec::new();
        write_frame(&mut good, &WireMsg::Beat { beats: 1 }).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        let err = read_frame(&mut Cursor::new(bad_magic)).unwrap_err();
        assert!(err.to_string().contains("bad frame magic"), "{err}");

        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        let err = read_frame(&mut Cursor::new(bad_version)).unwrap_err();
        assert!(err.to_string().contains("wire version"), "{err}");

        let mut bad_len = good;
        bad_len[6..14].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let err = read_frame(&mut Cursor::new(bad_len)).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn truncated_frames_are_mid_frame_eof_not_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireMsg::Beat { beats: 5 }).unwrap();
        // Truncate inside the header.
        let err = read_frame(&mut Cursor::new(buf[..7].to_vec())).unwrap_err();
        assert!(err.to_string().contains("EOF inside a frame header"), "{err}");
        // Truncate inside the payload.
        let err = read_frame(&mut Cursor::new(buf[..HEADER_LEN + 2].to_vec())).unwrap_err();
        assert!(err.to_string().contains("EOF inside a frame payload"), "{err}");
    }

    #[test]
    fn assignment_conversion_preserves_fields() {
        let wire = WireAssignment {
            shard: 3,
            worker: 0,
            start: 10,
            end: 20,
            generation: 2,
            seed_salt: 0xAB,
            checkpoint_path: "shard-3.ckpt".into(),
            resume: None,
            fault: None,
        };
        let lease = crate::fleet::LeaseSignal::new();
        let asg = wire.clone().into_assignment(lease);
        assert_eq!(WireAssignment::from_assignment(&asg), wire);
    }
}
