//! Fault-tolerant campaign fleet: sharded workers, lease-based work
//! stealing, and crash-consistent SCFC fleet checkpoints.
//!
//! The coordinator deterministically partitions the CT-candidate stream
//! into contiguous shards (one per worker at creation) and hands each
//! shard to a [`FleetWorker`] under a *lease*: the worker heartbeats once
//! per processed stream position, and a lease whose heartbeat goes silent
//! past the deadline is revoked — the worker is declared dead, the shard
//! re-queued, and the next idle worker *steals* it, resuming from the
//! shard's last SCCP checkpoint. Because per-CTI seeds derive from
//! *global* stream positions (the shard passes its start offset to the
//! supervisor), re-execution from a checkpoint is bit-transparent: a fleet
//! that lost workers produces the same merged report as one that did not.
//! Only a shard that made *no* forward progress across a steal generation
//! is retried with salted seeds (mirroring the supervisor's hang-retry
//! policy), and after `max_steals` consecutive no-progress generations the
//! shard is quarantined rather than starving the fleet.
//!
//! Per-worker SCCP checkpoints roll up into a CRC-framed **SCFC** fleet
//! checkpoint written atomically (tmp + rename, `.prev` rotation) on every
//! shard state transition. Killing the coordinator or any worker and
//! re-running with resume yields a byte-identical merged report: resume
//! prefers the freshest usable per-shard SCCP on disk and falls back to
//! the copy embedded in the SCFC. Shard merges are commutative and
//! associative ([`ShardMerge`] keys by shard index), so the merged output
//! is independent of shard completion order.

use crate::checkpoint::{
    load_checkpoint_with_fallback, load_with_fallback, prev_path, save_bytes_atomic,
    CampaignCheckpoint,
};
use crate::fault::{CheckpointFault, CorruptionKind, FaultPlan};
use crate::supervisor::{run_supervised_campaign, RecoveryLog, SupervisedResult, SupervisorConfig};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use snowcat_core::{CostModel, ExploreConfig, Explorer, HistoryPoint, SnowcatError};
use snowcat_corpus::{frame_checksummed, unframe_checksummed, StiProfile};
use snowcat_events::{EventSink, FleetEvent};
use snowcat_kernel::Kernel;
use snowcat_race::RaceKey;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Magic of the Snowcat Campaign Fleet Checkpoint envelope.
pub const FLEET_MAGIC: &[u8; 4] = b"SCFC";
/// Current (and minimum readable) SCFC envelope version.
pub const FLEET_VERSION: u16 = 1;
/// File name of the fleet checkpoint inside the fleet directory.
pub const FLEET_CKPT_FILE: &str = "fleet.scfc";

/// Salt applied to a shard's seeds only after a *no-progress* steal
/// generation — the fleet-level analogue of the supervisor's retry salt.
const STEAL_SALT: u64 = 0xC2B2_AE3D_27D4_EB4F;

// ---------------------------------------------------------------------------
// Lease signal
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct LeaseInner {
    beats: AtomicU64,
    revoked: AtomicBool,
}

/// Shared heartbeat/revocation channel between the coordinator and one
/// lease holder. The holder beats once per processed stream position; the
/// coordinator revokes the lease when the beat counter goes silent past
/// the deadline, and the holder polls [`LeaseSignal::is_revoked`] to
/// abandon the shard instead of racing the thief.
#[derive(Clone, Debug, Default)]
pub struct LeaseSignal {
    inner: Arc<LeaseInner>,
}

impl LeaseSignal {
    /// A fresh, unrevoked signal with zero beats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record forward progress (one stream position processed).
    pub fn beat(&self) {
        self.inner.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Heartbeats recorded so far.
    pub fn beats(&self) -> u64 {
        self.inner.beats.load(Ordering::Relaxed)
    }

    /// Revoke the lease: the holder must abandon the shard.
    pub fn revoke(&self) {
        self.inner.revoked.store(true, Ordering::Relaxed);
    }

    /// Whether the coordinator revoked this lease.
    pub fn is_revoked(&self) -> bool {
        self.inner.revoked.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// SCFC checkpoint format
// ---------------------------------------------------------------------------

/// Lifecycle of one shard inside the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardStatus {
    /// Not yet leased (or re-queued after a lost lease).
    Pending,
    /// Currently leased to a worker.
    InProgress,
    /// Ran to the end of its range.
    Done,
    /// Gave up after `max_steals` consecutive no-progress generations.
    Quarantined,
}

/// One shard's durable state inside the SCFC checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardState {
    /// Shard index (also the merge key — merges sort by it).
    pub index: usize,
    /// First global stream position of the shard (inclusive).
    pub start: usize,
    /// One past the last global stream position of the shard.
    pub end: usize,
    /// Lifecycle status.
    pub status: ShardStatus,
    /// Lease generation: 0 for the first lease, +1 per steal.
    pub generation: u64,
    /// Consecutive steal generations that made no forward progress.
    pub stalled_generations: u64,
    /// Last rolled-up SCCP snapshot of the shard (fallback when the
    /// per-shard checkpoint file on disk is missing or corrupt).
    pub checkpoint: Option<CampaignCheckpoint>,
}

impl ShardState {
    /// Number of stream positions in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for a zero-length shard (more workers than stream positions).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True once the shard needs no further work.
    pub fn is_terminal(&self) -> bool {
        matches!(self.status, ShardStatus::Done | ShardStatus::Quarantined)
    }
}

/// The crash-consistent fleet checkpoint (SCFC): shard table plus fleet
/// counters, written atomically on every shard state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCheckpoint {
    /// Explorer label — resumes must match.
    pub label: String,
    /// Base exploration seed — resumes must match.
    pub seed: u64,
    /// Worker count the fleet was created with (informational; a resume
    /// may use a different count, the shard layout is already fixed).
    pub workers: usize,
    /// Whole-stream length the shards partition.
    pub stream_len: usize,
    /// Per-shard durable state.
    pub shards: Vec<ShardState>,
    /// Shards re-leased after a lost lease (generation > 0 grants).
    pub steals: u64,
    /// Stream positions re-executed because they were processed after the
    /// lost worker's last persisted checkpoint.
    pub reexecutions: u64,
    /// Workers declared dead (missed deadline, error, or panic).
    pub lost_workers: u64,
}

impl FleetCheckpoint {
    /// True once every shard is Done or Quarantined.
    pub fn is_complete(&self) -> bool {
        self.shards.iter().all(ShardState::is_terminal)
    }

    /// Indices of quarantined shards, in order.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter(|s| s.status == ShardStatus::Quarantined)
            .map(|s| s.index)
            .collect()
    }
}

/// Serialize a fleet checkpoint into its checksummed SCFC envelope.
pub fn encode_fleet_checkpoint(fc: &FleetCheckpoint) -> Result<Vec<u8>, SnowcatError> {
    let payload = serde_json::to_string(fc).map_err(|e| SnowcatError::Parse {
        path: PathBuf::new(),
        message: format!("fleet checkpoint serialization failed: {e}"),
    })?;
    Ok(frame_checksummed(FLEET_MAGIC, FLEET_VERSION, payload.as_bytes()).to_vec())
}

/// Decode a fleet checkpoint, verifying magic, version, length, checksum.
pub fn decode_fleet_checkpoint(path: &Path, bytes: &[u8]) -> Result<FleetCheckpoint, SnowcatError> {
    let corrupt =
        |detail: String| SnowcatError::CheckpointCorrupt { path: path.to_owned(), detail };
    let (_, payload) =
        unframe_checksummed(FLEET_MAGIC, FLEET_VERSION, FLEET_VERSION, Bytes::from(bytes.to_vec()))
            .map_err(|e| corrupt(e.to_string()))?;
    let text = std::str::from_utf8(payload.as_slice())
        .map_err(|e| corrupt(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| corrupt(format!("payload is not a fleet checkpoint: {e}")))
}

/// Atomically write a fleet checkpoint with `.prev` rotation.
pub fn save_fleet_checkpoint_atomic(path: &Path, fc: &FleetCheckpoint) -> Result<(), SnowcatError> {
    save_bytes_atomic(path, &encode_fleet_checkpoint(fc)?)
}

/// Load a fleet checkpoint, falling back to `<path>.prev` when the current
/// file is missing or corrupt. Returns the checkpoint and whether the
/// fallback was used.
pub fn load_fleet_checkpoint_with_fallback(
    path: &Path,
) -> Result<(FleetCheckpoint, bool), SnowcatError> {
    load_with_fallback(path, &|p, bytes| decode_fleet_checkpoint(p, bytes))
}

// ---------------------------------------------------------------------------
// Partitioning and merging
// ---------------------------------------------------------------------------

/// Deterministically partition `len` stream positions into `shards`
/// contiguous balanced ranges. One shard covering the whole stream when
/// `shards == 1`, so an unfaulted single-worker fleet is the identity.
pub fn partition_stream(len: usize, shards: usize) -> Vec<(usize, usize)> {
    let n = shards.max(1);
    (0..n).map(|i| (i * len / n, (i + 1) * len / n)).collect()
}

/// Order-independent shard-merge accumulator: a commutative, associative
/// monoid over shard checkpoints keyed by shard index. [`ShardMerge::finalize`]
/// folds in index order, so *any* merge tree over *any* arrival order
/// yields byte-identical merged output.
#[derive(Debug, Clone, Default)]
pub struct ShardMerge {
    shards: BTreeMap<usize, CampaignCheckpoint>,
}

impl ShardMerge {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) the checkpoint for shard `index`.
    pub fn add(&mut self, index: usize, ck: CampaignCheckpoint) {
        self.shards.insert(index, ck);
    }

    /// Union two accumulators (right side wins on duplicate indices).
    pub fn union(mut self, other: ShardMerge) -> ShardMerge {
        self.shards.extend(other.shards);
        self
    }

    /// Number of shards accumulated.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when nothing was accumulated.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Fold the accumulated shards (in index order) into a synthetic
    /// whole-campaign checkpoint: race/harmful keys are set unions,
    /// coverage bitmaps are ORed, counters are summed, bugs are deduped in
    /// shard-index discovery order, quarantine is the sorted union, and
    /// simulated hours are recomputed from the summed counts so merging is
    /// exact (not a float sum of per-shard hours). Errors when empty or
    /// when shards disagree on label, seed, or coverage-bitmap capacity.
    pub fn finalize(&self, cost: &CostModel) -> Result<CampaignCheckpoint, SnowcatError> {
        let mut it = self.shards.values();
        let first =
            it.next().ok_or_else(|| SnowcatError::Config("cannot merge zero shards".into()))?;
        let mut races: BTreeSet<RaceKey> = BTreeSet::new();
        let mut harmful: BTreeSet<RaceKey> = BTreeSet::new();
        let mut blocks = first.blocks.clone();
        let mut bugs = Vec::new();
        let mut quarantine: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut recovery = RecoveryLog::default();
        let (mut position, mut ctis) = (0usize, 0usize);
        let (mut executions, mut inferences) = (0u64, 0u64);
        for ck in self.shards.values() {
            if ck.label != first.label || ck.seed != first.seed {
                return Err(SnowcatError::Config(format!(
                    "shard checkpoints disagree: ('{}', {:#x}) vs ('{}', {:#x})",
                    first.label, first.seed, ck.label, ck.seed
                )));
            }
            if ck.blocks.capacity() != blocks.capacity() {
                return Err(SnowcatError::Config(
                    "shard checkpoints disagree on coverage-bitmap capacity".into(),
                ));
            }
            races.extend(ck.race_keys.iter().copied());
            harmful.extend(ck.harmful_keys.iter().copied());
            blocks.union_with(&ck.blocks);
            for bug in &ck.bugs_found {
                if !bugs.contains(bug) {
                    bugs.push(*bug);
                }
            }
            quarantine.extend(ck.quarantine.iter().copied());
            recovery.hung_attempts += ck.recovery.hung_attempts;
            recovery.retries += ck.recovery.retries;
            recovery.wasted_executions += ck.recovery.wasted_executions;
            recovery.quarantined += ck.recovery.quarantined;
            recovery.skipped_quarantined += ck.recovery.skipped_quarantined;
            recovery.checkpoints_written += ck.recovery.checkpoints_written;
            position += ck.position;
            ctis += ck.history.last().map(|h| h.ctis).unwrap_or(0);
            executions += ck.executions;
            inferences += ck.inferences;
        }
        let history = if self.shards.values().all(|ck| ck.history.is_empty()) {
            Vec::new()
        } else {
            vec![HistoryPoint {
                ctis,
                executions,
                inferences,
                hours: cost.hours(executions, inferences),
                races: races.len(),
                harmful_races: harmful.len(),
                sched_dep_blocks: blocks.count(),
                bugs: bugs.len(),
            }]
        };
        Ok(CampaignCheckpoint {
            label: first.label.clone(),
            seed: first.seed,
            position,
            executions,
            inferences,
            race_keys: races.into_iter().collect(),
            harmful_keys: harmful.into_iter().collect(),
            blocks,
            bugs_found: bugs,
            history,
            quarantine: quarantine.into_iter().collect(),
            strategy: None,
            recovery,
        })
    }
}

// ---------------------------------------------------------------------------
// Worker seam
// ---------------------------------------------------------------------------

/// Per-worker fault the coordinator arms from the [`FaultPlan`]; consumed
/// on the worker's first lease. Serde because the process transport ships
/// armed faults to the subprocess inside the wire assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerFault {
    /// Die (return an error) right after the first shard checkpoint.
    Kill,
    /// Go silent after the first shard checkpoint: stop heartbeating and
    /// park until the lease is revoked, then die.
    Stall,
    /// Corrupt the first shard-checkpoint write on disk, then die.
    CorruptCkpt,
}

/// Everything a worker needs to run one shard lease.
#[derive(Debug, Clone)]
pub struct ShardAssignment {
    /// Shard index.
    pub shard: usize,
    /// Worker slot holding the lease.
    pub worker: usize,
    /// First global stream position (inclusive).
    pub start: usize,
    /// One past the last global stream position.
    pub end: usize,
    /// Lease generation (0 = first lease, +1 per steal).
    pub generation: u64,
    /// Seed salt (non-zero only after no-progress generations).
    pub seed_salt: u64,
    /// Where the worker must write its per-shard SCCP checkpoint.
    pub checkpoint_path: PathBuf,
    /// Checkpoint to resume from (validated by the coordinator).
    pub resume: Option<CampaignCheckpoint>,
    /// Heartbeat/revocation channel for this lease.
    pub lease: LeaseSignal,
    /// Injected fault armed for this worker, if any.
    pub fault: Option<WorkerFault>,
}

/// The worker seam: runs one shard lease to completion (or death). The
/// implementation must write SCCP checkpoints to
/// [`ShardAssignment::checkpoint_path`] — the coordinator merges from
/// those files, never from in-memory results, so a killed coordinator can
/// always resume from disk. In-process threads implement this today; a
/// subprocess transport implements the same trait tomorrow.
pub trait FleetWorker: Sync {
    /// Run the assigned shard. `Ok` marks the shard done (its final
    /// checkpoint is re-read from disk); `Err` declares this worker dead
    /// and re-queues the shard.
    fn run_shard(&self, asg: &ShardAssignment) -> Result<SupervisedResult, SnowcatError>;
}

/// The in-process [`FleetWorker`]: each shard lease runs
/// [`run_supervised_campaign`] over the shard's sub-stream on the calling
/// thread, with per-CTI seeds derived from global positions via
/// `position_offset`.
pub struct ThreadWorker<'a> {
    /// Kernel under test.
    pub kernel: &'a Kernel,
    /// Syscall-test-input corpus.
    pub corpus: &'a [StiProfile],
    /// The whole CT-candidate stream (shards index into it).
    pub stream: &'a [(usize, usize)],
    /// Exploration config (base seed, budgets).
    pub explore_cfg: &'a ExploreConfig,
    /// Simulated-time cost model.
    pub cost: &'a CostModel,
    /// Fleet knobs (checkpoint cadence, stall, fault plan).
    pub cfg: &'a FleetConfig,
    /// Explorer factory, called once per lease with the worker slot.
    /// Workers sharing one inference server return explorers wrapping
    /// per-worker handles here.
    pub make_explorer: &'a (dyn Fn(usize) -> Explorer<'a, 'a> + Sync),
}

impl FleetWorker for ThreadWorker<'_> {
    fn run_shard(&self, asg: &ShardAssignment) -> Result<SupervisedResult, SnowcatError> {
        if self.cfg.fault_plan.poison_shards.contains(&asg.shard) {
            // Poison shard: every holder dies before any progress, every
            // generation — a reproducible crash loop only the
            // coordinator's quarantine breaker can end.
            return Err(SnowcatError::WorkerLost {
                worker: asg.worker,
                shard: asg.shard,
                detail: "injected poison shard".into(),
            });
        }
        let sub = &self.stream[asg.start..asg.end];
        // Campaign-level hang faults are specified at *global* stream
        // positions; shift the ones inside this shard to local positions.
        let mut plan = FaultPlan::default();
        for h in &self.cfg.fault_plan.hangs {
            if (asg.start..asg.end).contains(&h.position) {
                plan.hangs.push(crate::fault::HangFault {
                    position: h.position - asg.start,
                    attempts: h.attempts,
                });
            }
        }
        if asg.fault == Some(WorkerFault::CorruptCkpt) {
            plan.checkpoints.push(CheckpointFault { ordinal: 1, kind: CorruptionKind::Flip });
        }
        let mut sup = SupervisorConfig::new();
        sup.checkpoint_path = Some(asg.checkpoint_path.clone());
        sup.checkpoint_every = self.cfg.checkpoint_every.max(1);
        sup.stall_ms = self.cfg.stall_ms;
        sup.fault_plan = plan;
        sup.position_offset = asg.start;
        sup.seed_salt = asg.seed_salt;
        sup.lease = Some(asg.lease.clone());
        // A faulted worker processes one checkpoint interval so its death
        // leaves a persisted prefix for the thief to resume from.
        sup.stop_after = asg.fault.map(|_| sup.checkpoint_every);
        let result = run_supervised_campaign(
            self.kernel,
            self.corpus,
            sub,
            (self.make_explorer)(asg.worker),
            self.explore_cfg,
            self.cost,
            &sup,
            asg.resume.clone(),
        )?;
        match asg.fault {
            Some(WorkerFault::Kill) | Some(WorkerFault::CorruptCkpt) => {
                Err(SnowcatError::WorkerLost {
                    worker: asg.worker,
                    shard: asg.shard,
                    detail: "injected worker kill".into(),
                })
            }
            Some(WorkerFault::Stall) => {
                // Straggler: stop heartbeating and park until revoked.
                while !asg.lease.is_revoked() {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(SnowcatError::LeaseExpired {
                    shard: asg.shard,
                    worker: asg.worker,
                    deadline_ms: self.cfg.lease_ms,
                })
            }
            None => Ok(result),
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Fleet knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker count (≥ 1). Also the shard count at fleet creation.
    pub workers: usize,
    /// Fleet directory: per-shard SCCP files plus the SCFC checkpoint.
    pub dir: PathBuf,
    /// Heartbeat deadline: a lease silent this long is revoked.
    pub lease_ms: u64,
    /// Consecutive no-progress generations before a shard is quarantined.
    pub max_steals: u64,
    /// Per-shard checkpoint cadence (stream positions).
    pub checkpoint_every: usize,
    /// Per-position sleep inside workers (widens kill windows in tests).
    pub stall_ms: u64,
    /// Deterministic fault plan (fleet entries + campaign hangs).
    pub fault_plan: FaultPlan,
    /// Structured-event sink (fleet events only; workers run unsinked so
    /// the stream stays one coherent coordinator timeline).
    pub events: Option<EventSink>,
    /// Degradation floor: when live worker slots drop below this, the
    /// fleet checkpoints, emits [`FleetEvent::FleetDegraded`], and exits
    /// resumable instead of limping on (or spinning at zero workers).
    pub min_workers: usize,
    /// Process transport: how long a spawned worker has to complete its
    /// handshake before the attempt counts as failed.
    pub spawn_timeout_ms: u64,
    /// Process transport: base delay for exponential respawn backoff.
    pub respawn_backoff_ms: u64,
    /// Respawn a worker slot after its lease dies instead of retiring it.
    /// Thread transport defaults to `false` (a dead thread slot stays
    /// dead, PR 9 behaviour); the process transport sets `true` — slots
    /// survive worker-process death, and a crash-loop breaker retires a
    /// slot only after `max_steals + 1` consecutive failures.
    pub respawn: bool,
}

impl FleetConfig {
    /// Defaults: 2s lease deadline, 3 steals before quarantine,
    /// checkpoint every 25 positions, no faults, 1-worker degradation
    /// floor, 10s spawn timeout, 100ms respawn backoff base, no respawn.
    pub fn new(workers: usize, dir: impl Into<PathBuf>) -> Self {
        Self {
            workers: workers.max(1),
            dir: dir.into(),
            lease_ms: 2_000,
            max_steals: 3,
            checkpoint_every: 25,
            stall_ms: 0,
            fault_plan: FaultPlan::default(),
            events: None,
            min_workers: 1,
            spawn_timeout_ms: 10_000,
            respawn_backoff_ms: 100,
            respawn: false,
        }
    }
}

/// Per-shard SCCP file path inside the fleet directory.
pub fn shard_ckpt_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.ckpt"))
}

struct LeaseRecord {
    worker: usize,
    signal: LeaseSignal,
    beats_seen: u64,
    last_change: Instant,
    resume_position: usize,
}

/// Monotonic lease-deadline check: a lease is expired when `now` is at
/// least `deadline` past the last observed beat-count change.
///
/// All lease arithmetic uses [`Instant`] exclusively — never a
/// wall-clock time source — so clock jumps (NTP steps, manual
/// `date -s`, suspend/resume clock corrections) can neither expire a
/// healthy lease nor extend a dead one. `saturating_duration_since`
/// additionally tolerates the monitor observing an `Instant` taken
/// "before" `last_change` on platforms with per-CPU monotonic skew:
/// saturation reads as elapsed-zero, which never falsely expires.
fn lease_expired(last_change: Instant, now: Instant, deadline: Duration) -> bool {
    now.saturating_duration_since(last_change) >= deadline
}

struct Coord {
    shards: Vec<ShardState>,
    leases: Vec<Option<LeaseRecord>>,
    last_holder: Vec<Option<usize>>,
    armed: Vec<Option<WorkerFault>>,
    steals: u64,
    reexecutions: u64,
    lost_workers: u64,
    live_workers: usize,
    ckpt_ordinal: u64,
    failed: bool,
    /// Live-worker count at the moment the fleet degraded below the
    /// `min_workers` floor (`None` while healthy). Captured here, not at
    /// fleet teardown — by then every slot has drained to zero.
    degraded: Option<usize>,
}

impl Coord {
    fn all_terminal(&self) -> bool {
        self.shards.iter().all(ShardState::is_terminal)
    }
}

struct FleetCtx<'a> {
    cfg: &'a FleetConfig,
    label: &'a str,
    seed: u64,
    stream_len: usize,
    scfc_path: PathBuf,
    coord: Mutex<Coord>,
}

enum LeaseDecision {
    Work(Box<ShardAssignment>),
    Wait,
    Stop,
}

impl FleetCtx<'_> {
    fn sink(&self) -> Option<&EventSink> {
        self.cfg.events.as_ref()
    }

    /// Freshest usable resume candidate for a shard: the on-disk SCCP (with
    /// `.prev` fallback) or the copy embedded in the SCFC, whichever has
    /// the greater position. Candidates that fail validation (wrong label,
    /// seed, or an out-of-range position) are discarded, not errors — a
    /// corrupt or foreign file just means re-execution from further back.
    fn resolve_resume(&self, shard: &ShardState) -> Option<CampaignCheckpoint> {
        let valid = |ck: &CampaignCheckpoint| {
            ck.label == self.label && ck.seed == self.seed && ck.position <= shard.len()
        };
        let disk = load_checkpoint_with_fallback(&shard_ckpt_path(&self.cfg.dir, shard.index))
            .ok()
            .map(|(ck, _)| ck)
            .filter(valid);
        let embedded = shard.checkpoint.clone().filter(valid);
        match (disk, embedded) {
            (Some(d), Some(e)) => Some(if d.position >= e.position { d } else { e }),
            (d, e) => d.or(e),
        }
    }

    /// Roll the per-shard checkpoints up into the SCFC and write it
    /// atomically. Failures are swallowed (a missed rollup only loses
    /// counter freshness; the per-shard files still carry all progress).
    fn rollup(&self, c: &mut Coord) {
        let fc = FleetCheckpoint {
            label: self.label.to_owned(),
            seed: self.seed,
            workers: self.cfg.workers,
            stream_len: self.stream_len,
            shards: c.shards.clone(),
            steals: c.steals,
            reexecutions: c.reexecutions,
            lost_workers: c.lost_workers,
        };
        let rotated = self.scfc_path.exists();
        if save_fleet_checkpoint_atomic(&self.scfc_path, &fc).is_ok() {
            c.ckpt_ordinal += 1;
            if let Some(s) = self.sink() {
                s.fleet(FleetEvent::CheckpointWritten {
                    path: self.scfc_path.display().to_string(),
                    done_shards: c.shards.iter().filter(|s| s.is_terminal()).count() as u64,
                    ordinal: c.ckpt_ordinal,
                    rotated,
                });
            }
        }
    }

    /// Revoke a lease and re-queue (or quarantine) its shard. Caller must
    /// have verified the lease exists.
    fn requeue(&self, c: &mut Coord, shard: usize) {
        let rec = c.leases[shard].take().expect("requeue without a lease");
        rec.signal.revoke();
        c.last_holder[shard] = Some(rec.worker);
        let best = self.resolve_resume(&c.shards[shard]);
        let persisted_now = best.as_ref().map(|ck| ck.position).unwrap_or(0);
        let persisted = persisted_now.saturating_sub(rec.resume_position) as u64;
        c.reexecutions += rec.signal.beats().saturating_sub(persisted);
        let s = &mut c.shards[shard];
        s.checkpoint = best;
        if persisted == 0 {
            s.stalled_generations += 1;
        } else {
            s.stalled_generations = 0;
        }
        if s.stalled_generations > self.cfg.max_steals {
            s.status = ShardStatus::Quarantined;
            let generations = s.generation + 1;
            if let Some(sink) = self.sink() {
                sink.fleet(FleetEvent::ShardQuarantined { shard: shard as u64, generations });
            }
        } else {
            s.status = ShardStatus::Pending;
            s.generation += 1;
        }
        self.rollup(c);
    }

    fn try_lease(&self, slot: usize) -> LeaseDecision {
        let mut c = self.coord.lock().expect("fleet coordinator poisoned");
        if c.failed || c.all_terminal() {
            return LeaseDecision::Stop;
        }
        let Some(shard) = c.shards.iter().position(|s| s.status == ShardStatus::Pending) else {
            return LeaseDecision::Wait;
        };
        let resume = self.resolve_resume(&c.shards[shard]);
        let resume_position = resume.as_ref().map(|ck| ck.position).unwrap_or(0);
        let fault = c.armed[slot].take();
        let signal = LeaseSignal::new();
        let s = &mut c.shards[shard];
        s.status = ShardStatus::InProgress;
        let (generation, stalled) = (s.generation, s.stalled_generations);
        let (start, end) = (s.start, s.end);
        c.leases[shard] = Some(LeaseRecord {
            worker: slot,
            signal: signal.clone(),
            beats_seen: 0,
            last_change: Instant::now(),
            resume_position,
        });
        if let Some(sink) = self.sink() {
            sink.fleet(FleetEvent::ShardLeased {
                shard: shard as u64,
                worker: slot as u64,
                generation,
                deadline_ms: self.cfg.lease_ms,
            });
        }
        if generation > 0 {
            c.steals += 1;
            let from = c.last_holder[shard].unwrap_or(slot);
            if let Some(sink) = self.sink() {
                sink.fleet(FleetEvent::ShardStolen {
                    shard: shard as u64,
                    from_worker: from as u64,
                    to_worker: slot as u64,
                    generation,
                    resume_position: resume_position as u64,
                });
            }
        }
        LeaseDecision::Work(Box::new(ShardAssignment {
            shard,
            worker: slot,
            start,
            end,
            generation,
            seed_salt: if stalled > 0 { stalled.wrapping_mul(STEAL_SALT) } else { 0 },
            checkpoint_path: shard_ckpt_path(&self.cfg.dir, shard),
            resume,
            lease: signal,
            fault,
        }))
    }

    /// True while `slot` still holds the active lease on `shard` at
    /// `generation` (the monitor may have revoked it concurrently).
    fn lease_active(c: &Coord, slot: usize, shard: usize, generation: u64) -> bool {
        c.shards[shard].status == ShardStatus::InProgress
            && c.shards[shard].generation == generation
            && c.leases[shard].as_ref().is_some_and(|l| l.worker == slot)
    }

    /// Mark a shard done. Returns false when the lease was already revoked
    /// (result discarded) or the worker left no usable checkpoint behind.
    fn finish_shard(&self, slot: usize, shard: usize, generation: u64) -> bool {
        let mut c = self.coord.lock().expect("fleet coordinator poisoned");
        if !Self::lease_active(&c, slot, shard, generation) {
            return false;
        }
        let Some(final_ck) = self.resolve_resume(&c.shards[shard]) else {
            // Completed without a persisted checkpoint: nothing to merge
            // from — treat as a lost worker so the shard is re-executed.
            if let Some(sink) = self.sink() {
                sink.fleet(FleetEvent::WorkerLost {
                    worker: slot as u64,
                    shard: shard as u64,
                    detail: "shard completed without a usable checkpoint".into(),
                });
            }
            c.lost_workers += 1;
            self.requeue(&mut c, shard);
            return false;
        };
        c.leases[shard] = None;
        c.last_holder[shard] = Some(slot);
        let s = &mut c.shards[shard];
        s.status = ShardStatus::Done;
        s.checkpoint = Some(final_ck);
        if let Some(sink) = self.sink() {
            let ck = c.shards[shard].checkpoint.as_ref().expect("just set");
            sink.fleet(FleetEvent::ShardCompleted {
                shard: shard as u64,
                worker: slot as u64,
                executions: ck.executions,
                races: ck.race_keys.len() as u64,
            });
        }
        self.rollup(&mut c);
        true
    }

    /// A worker died holding a lease (error or panic).
    fn lose_worker(&self, slot: usize, shard: usize, generation: u64, detail: &str) {
        let mut c = self.coord.lock().expect("fleet coordinator poisoned");
        if !Self::lease_active(&c, slot, shard, generation) {
            return; // The monitor already revoked and re-queued.
        }
        c.lost_workers += 1;
        if let Some(sink) = self.sink() {
            sink.fleet(FleetEvent::WorkerLost {
                worker: slot as u64,
                shard: shard as u64,
                detail: detail.to_owned(),
            });
        }
        self.requeue(&mut c, shard);
    }

    /// Retire a worker slot. Degradation is checked *here*, eagerly, not
    /// only on monitor ticks: two slots retiring back-to-back between
    /// ticks would otherwise drive `live_workers` straight to zero and
    /// misreport a degraded fleet as a totally failed one.
    fn worker_exit(&self) {
        let mut c = self.coord.lock().expect("fleet coordinator poisoned");
        c.live_workers -= 1;
        let live = c.live_workers;
        if !c.failed
            && c.degraded.is_none()
            && !c.all_terminal()
            && live < self.cfg.min_workers
            && live > 0
        {
            // Below the floor with work remaining: stop leasing, persist
            // everything, and exit resumable. `failed` halts the other
            // loops; `degraded` selects the FleetDegraded error over
            // FleetFailed. live == 0 keeps the PR 9 FleetFailed shape.
            c.degraded = Some(live);
            c.failed = true;
            if let Some(sink) = self.sink() {
                sink.fleet(FleetEvent::FleetDegraded {
                    live_workers: live as u64,
                    min_workers: self.cfg.min_workers as u64,
                });
            }
            self.rollup(&mut c);
        }
    }

    fn worker_loop(&self, slot: usize, worker: &dyn FleetWorker) {
        // Consecutive lease failures on this slot; reset on every success.
        // Only meaningful with `cfg.respawn` (process transport): the
        // crash-loop breaker retires the slot after `max_steals + 1`
        // consecutive deaths instead of respawning forever.
        let mut consecutive_failures = 0u64;
        loop {
            match self.try_lease(slot) {
                LeaseDecision::Stop => break,
                LeaseDecision::Wait => std::thread::sleep(Duration::from_millis(2)),
                LeaseDecision::Work(asg) => {
                    let (shard, generation) = (asg.shard, asg.generation);
                    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        worker.run_shard(&asg)
                    }))
                    .unwrap_or_else(|_| {
                        Err(SnowcatError::WorkerLost {
                            worker: slot,
                            shard,
                            detail: "worker panicked".into(),
                        })
                    });
                    match res {
                        Ok(_) => {
                            consecutive_failures = 0;
                            if !self.finish_shard(slot, shard, generation) {
                                // Lease revoked mid-run: declared dead.
                                break;
                            }
                        }
                        Err(e) => {
                            let detail = e.to_string();
                            self.lose_worker(slot, shard, generation, &detail);
                            if !self.cfg.respawn {
                                break; // Thread transport: slot dies with its worker.
                            }
                            {
                                // Poison shard vs flaky worker: if this
                                // death tipped the shard into quarantine,
                                // the shard was at fault — don't also
                                // charge the slot's crash-loop breaker.
                                let c = self.coord.lock().expect("fleet coordinator poisoned");
                                if c.shards[shard].status == ShardStatus::Quarantined {
                                    consecutive_failures = 0;
                                    continue;
                                }
                            }
                            consecutive_failures += 1;
                            if consecutive_failures > self.cfg.max_steals {
                                if let Some(sink) = self.sink() {
                                    sink.fleet(FleetEvent::WorkerCrashLoop {
                                        worker: slot as u64,
                                        deaths: consecutive_failures,
                                        detail,
                                    });
                                }
                                break;
                            }
                            let backoff_ms = crate::process_worker::respawn_backoff(
                                self.cfg.respawn_backoff_ms,
                                slot,
                                consecutive_failures,
                            );
                            if let Some(sink) = self.sink() {
                                sink.fleet(FleetEvent::WorkerRespawned {
                                    worker: slot as u64,
                                    attempt: consecutive_failures,
                                    backoff_ms,
                                });
                            }
                            std::thread::sleep(Duration::from_millis(backoff_ms));
                        }
                    }
                }
            }
        }
        self.worker_exit();
    }

    fn monitor_loop(&self) {
        let deadline = Duration::from_millis(self.cfg.lease_ms.max(1));
        let tick = Duration::from_millis((self.cfg.lease_ms / 4).clamp(2, 100));
        loop {
            std::thread::sleep(tick);
            let mut c = self.coord.lock().expect("fleet coordinator poisoned");
            if c.all_terminal() || c.failed {
                return;
            }
            if c.live_workers == 0 {
                c.failed = true;
                return;
            }
            let now = Instant::now();
            let mut expired = Vec::new();
            for (shard, lease) in c.leases.iter_mut().enumerate() {
                let Some(rec) = lease else { continue };
                let beats = rec.signal.beats();
                if beats != rec.beats_seen {
                    rec.beats_seen = beats;
                    rec.last_change = now;
                } else if lease_expired(rec.last_change, now, deadline) {
                    expired.push((shard, rec.worker));
                }
            }
            for (shard, worker) in expired {
                if let Some(sink) = self.sink() {
                    sink.fleet(FleetEvent::LeaseExpired {
                        shard: shard as u64,
                        worker: worker as u64,
                        deadline_ms: self.cfg.lease_ms,
                    });
                    sink.fleet(FleetEvent::WorkerLost {
                        worker: worker as u64,
                        shard: shard as u64,
                        detail: "missed heartbeat deadline".into(),
                    });
                }
                c.lost_workers += 1;
                self.requeue(&mut c, shard);
            }
        }
    }
}

/// Run a fleet of `cfg.workers` workers over a `stream_len`-position
/// candidate stream. `label` and `seed` must match what `worker` will
/// produce (they key checkpoint validation). With `resume`, the SCFC in
/// `cfg.dir` is loaded and only incomplete shards re-execute — from their
/// freshest usable per-shard checkpoint, so the final merged state is
/// byte-identical to an uninterrupted run. Returns the final fleet
/// checkpoint; [`SnowcatError::FleetFailed`] when every worker died with
/// shards left unfinished (the SCFC stays on disk for a later resume).
pub fn run_fleet(
    worker: &dyn FleetWorker,
    label: &str,
    seed: u64,
    stream_len: usize,
    cfg: &FleetConfig,
    resume: bool,
) -> Result<FleetCheckpoint, SnowcatError> {
    std::fs::create_dir_all(&cfg.dir)
        .map_err(|source| SnowcatError::Io { path: cfg.dir.clone(), source })?;
    let scfc_path = cfg.dir.join(FLEET_CKPT_FILE);
    let shards = if resume {
        let (fc, _) = load_fleet_checkpoint_with_fallback(&scfc_path)?;
        if fc.label != label {
            return Err(SnowcatError::Config(format!(
                "fleet checkpoint was written by explorer '{}', not '{label}'",
                fc.label
            )));
        }
        if fc.seed != seed {
            return Err(SnowcatError::Config(format!(
                "fleet checkpoint base seed {:#x} does not match configured seed {seed:#x}",
                fc.seed
            )));
        }
        if fc.stream_len != stream_len {
            return Err(SnowcatError::Config(format!(
                "fleet checkpoint covers a {}-CTI stream, not {stream_len}",
                fc.stream_len
            )));
        }
        let mut shards = fc.shards;
        for s in &mut shards {
            // The previous holder is gone; its progress is on disk.
            if s.status == ShardStatus::InProgress {
                s.status = ShardStatus::Pending;
            }
        }
        shards
    } else {
        partition_stream(stream_len, cfg.workers)
            .into_iter()
            .enumerate()
            .map(|(index, (start, end))| ShardState {
                index,
                start,
                end,
                status: ShardStatus::Pending,
                generation: 0,
                stalled_generations: 0,
                checkpoint: None,
            })
            .collect()
    };
    let n_shards = shards.len();
    if let Some(sink) = &cfg.events {
        sink.fleet(FleetEvent::Started {
            workers: cfg.workers as u64,
            shards: n_shards as u64,
            stream_len: stream_len as u64,
            resumed: resume,
        });
    }
    let armed = (0..cfg.workers)
        .map(|slot| {
            if cfg.fault_plan.corrupt_worker_ckpts.contains(&slot) {
                Some(WorkerFault::CorruptCkpt)
            } else if cfg.fault_plan.kill_workers.contains(&slot) {
                Some(WorkerFault::Kill)
            } else if cfg.fault_plan.stall_workers.contains(&slot) {
                Some(WorkerFault::Stall)
            } else {
                None
            }
        })
        .collect();
    let (steals, reexecutions, lost_workers) = if resume {
        // Counters continue across resumes; reload from the checkpoint.
        let (fc, _) = load_fleet_checkpoint_with_fallback(&scfc_path)?;
        (fc.steals, fc.reexecutions, fc.lost_workers)
    } else {
        (0, 0, 0)
    };
    let ctx = FleetCtx {
        cfg,
        label,
        seed,
        stream_len,
        scfc_path,
        coord: Mutex::new(Coord {
            leases: (0..n_shards).map(|_| None).collect(),
            last_holder: vec![None; n_shards],
            shards,
            armed,
            steals,
            reexecutions,
            lost_workers,
            live_workers: cfg.workers,
            ckpt_ordinal: 0,
            failed: false,
            degraded: None,
        }),
    };
    {
        // Initial rollup so the SCFC exists before any worker starts (a
        // coordinator killed immediately after this is already resumable).
        let mut c = ctx.coord.lock().expect("fleet coordinator poisoned");
        ctx.rollup(&mut c);
    }
    std::thread::scope(|s| {
        for slot in 0..cfg.workers {
            let ctx = &ctx;
            s.spawn(move || ctx.worker_loop(slot, worker));
        }
        ctx.monitor_loop();
    });
    let mut c = ctx.coord.lock().expect("fleet coordinator poisoned");
    ctx.rollup(&mut c);
    let fc = FleetCheckpoint {
        label: label.to_owned(),
        seed,
        workers: cfg.workers,
        stream_len,
        shards: c.shards.clone(),
        steals: c.steals,
        reexecutions: c.reexecutions,
        lost_workers: c.lost_workers,
    };
    let degraded = c.degraded;
    drop(c);
    if !fc.is_complete() {
        if let Some(live_workers) = degraded {
            // Graceful degradation: slots retired past the --min-workers
            // floor with work left. Progress is checkpointed; resume with
            // the same flags (or fresh workers) to finish.
            return Err(SnowcatError::FleetDegraded {
                live_workers,
                min_workers: cfg.min_workers,
                detail: format!("resume from {}", ctx.scfc_path.display()),
            });
        }
        let failed_shards: Vec<usize> =
            fc.shards.iter().filter(|s| !s.is_terminal()).map(|s| s.index).collect();
        return Err(SnowcatError::FleetFailed {
            failed_shards,
            shards: n_shards,
            detail: format!(
                "all {} worker(s) lost; resume from {}",
                cfg.workers,
                ctx.scfc_path.display()
            ),
        });
    }
    let (mut executions, mut races_set) = (0u64, BTreeSet::new());
    for s in &fc.shards {
        if let Some(ck) = &s.checkpoint {
            executions += ck.executions;
            races_set.extend(ck.race_keys.iter().copied());
        }
    }
    if let Some(sink) = &cfg.events {
        sink.fleet(FleetEvent::Finished {
            shards: n_shards as u64,
            steals: fc.steals,
            reexecutions: fc.reexecutions,
            lost_workers: fc.lost_workers,
            quarantined_shards: fc.quarantined_shards().len() as u64,
            executions,
            races: races_set.len() as u64,
        });
    }
    Ok(fc)
}

/// Remove stale per-shard checkpoint files (and `.prev`/`.tmp` leftovers)
/// from a fleet directory — used when starting a fresh (non-resume) fleet
/// over a directory that held an earlier run.
pub fn clear_fleet_dir(dir: &Path) -> Result<(), SnowcatError> {
    let io = |p: &Path, source: std::io::Error| SnowcatError::Io { path: p.to_owned(), source };
    if !dir.exists() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let stale = name.starts_with("shard-") && name.contains(".ckpt")
            || name.starts_with(FLEET_CKPT_FILE);
        if stale {
            std::fs::remove_file(entry.path()).map_err(|e| io(&entry.path(), e))?;
        }
    }
    let _ = prev_path(&dir.join(FLEET_CKPT_FILE)); // (path helper exercised for doc parity)
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::corrupt;
    use snowcat_vm::BitSet;

    #[test]
    fn lease_expiry_is_monotonic_and_saturating() {
        let deadline = Duration::from_millis(500);
        let t0 = Instant::now();
        // Fresh lease: not expired at (or just after) the last change.
        assert!(!lease_expired(t0, t0, deadline));
        // Exactly at the deadline: expired (>= semantics).
        assert!(lease_expired(t0, t0 + deadline, deadline));
        // Well past the deadline: expired.
        assert!(lease_expired(t0, t0 + deadline * 3, deadline));
        // One tick short: still alive.
        assert!(!lease_expired(t0, t0 + deadline - Duration::from_millis(1), deadline));
        // `now` observed *before* `last_change` (cross-CPU monotonic skew):
        // saturates to zero elapsed — never a false expiry.
        if let Some(earlier) = t0.checked_sub(Duration::from_secs(10)) {
            assert!(!lease_expired(t0, earlier, deadline));
        }
        // Zero deadline degenerates to always-expired, not a panic.
        assert!(lease_expired(t0, t0, Duration::ZERO));
    }

    fn shard_ck(label: &str, seed: u64, tag: u64) -> CampaignCheckpoint {
        let mut blocks = BitSet::new(64);
        blocks.insert((tag % 64) as usize);
        CampaignCheckpoint {
            label: label.into(),
            seed,
            position: 4,
            executions: 10 + tag,
            inferences: tag,
            race_keys: vec![],
            harmful_keys: vec![],
            blocks,
            bugs_found: vec![],
            history: vec![],
            quarantine: vec![],
            strategy: None,
            recovery: RecoveryLog::default(),
        }
    }

    #[test]
    fn partition_is_balanced_and_covers_the_stream() {
        for (len, n) in [(100, 4), (7, 3), (3, 8), (0, 2), (5, 1)] {
            let parts = partition_stream(len, n);
            assert_eq!(parts.len(), n);
            assert_eq!(parts[0].0, 0);
            assert_eq!(parts[n - 1].1, len);
            for w in parts.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            let sizes: Vec<usize> = parts.iter().map(|&(a, b)| b - a).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced: {sizes:?}");
        }
    }

    #[test]
    fn scfc_roundtrips_and_detects_corruption() {
        let fc = FleetCheckpoint {
            label: "PCT".into(),
            seed: 7,
            workers: 2,
            stream_len: 10,
            shards: vec![ShardState {
                index: 0,
                start: 0,
                end: 10,
                status: ShardStatus::Done,
                generation: 1,
                stalled_generations: 0,
                checkpoint: Some(shard_ck("PCT", 7, 1)),
            }],
            steals: 1,
            reexecutions: 3,
            lost_workers: 1,
        };
        let bytes = encode_fleet_checkpoint(&fc).unwrap();
        let back = decode_fleet_checkpoint(Path::new("x"), &bytes).unwrap();
        assert_eq!(back, fc);
        for kind in [CorruptionKind::Flip, CorruptionKind::Truncate] {
            let err = decode_fleet_checkpoint(Path::new("x"), &corrupt(&bytes, kind)).unwrap_err();
            assert!(matches!(err, SnowcatError::CheckpointCorrupt { .. }), "{err:?}");
        }
        // An SCCP envelope is not an SCFC envelope (magic check).
        let sccp = crate::checkpoint::encode_checkpoint(&shard_ck("PCT", 7, 1)).unwrap();
        assert!(decode_fleet_checkpoint(Path::new("x"), &sccp).is_err());
    }

    #[test]
    fn scfc_rotation_and_fallback() {
        let dir = std::env::temp_dir().join(format!("snowcat-scfc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(FLEET_CKPT_FILE);
        let mk = |steals| FleetCheckpoint {
            label: "PCT".into(),
            seed: 7,
            workers: 1,
            stream_len: 4,
            shards: vec![],
            steals,
            reexecutions: 0,
            lost_workers: 0,
        };
        save_fleet_checkpoint_atomic(&path, &mk(1)).unwrap();
        save_fleet_checkpoint_atomic(&path, &mk(2)).unwrap();
        let (fc, fell_back) = load_fleet_checkpoint_with_fallback(&path).unwrap();
        assert_eq!((fc.steals, fell_back), (2, false));
        // Corrupt the current file: the load falls back to .prev.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, corrupt(&bytes, CorruptionKind::Truncate)).unwrap();
        let (fc, fell_back) = load_fleet_checkpoint_with_fallback(&path).unwrap();
        assert_eq!((fc.steals, fell_back), (1, true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_is_order_independent_and_label_checked() {
        let cost = CostModel::default();
        let cks: Vec<_> = (0..4u64).map(|i| shard_ck("PCT", 9, i)).collect();
        let mut fwd = ShardMerge::new();
        for (i, ck) in cks.iter().enumerate() {
            fwd.add(i, ck.clone());
        }
        let mut rev = ShardMerge::new();
        for (i, ck) in cks.iter().enumerate().rev() {
            rev.add(i, ck.clone());
        }
        let a = fwd.finalize(&cost).unwrap();
        let b = rev.finalize(&cost).unwrap();
        assert_eq!(a, b);
        // Union (associativity building block) agrees with flat adds.
        let mut left = ShardMerge::new();
        left.add(0, cks[0].clone());
        left.add(1, cks[1].clone());
        let mut right = ShardMerge::new();
        right.add(2, cks[2].clone());
        right.add(3, cks[3].clone());
        assert_eq!(left.union(right).finalize(&cost).unwrap(), a);
        // Mismatched labels are a config error, not silent garbage.
        let mut bad = ShardMerge::new();
        bad.add(0, shard_ck("PCT", 9, 0));
        bad.add(1, shard_ck("MLPCT-S1", 9, 1));
        assert!(matches!(bad.finalize(&cost), Err(SnowcatError::Config(_))));
        assert!(ShardMerge::new().finalize(&cost).is_err());
    }
}
