//! Robust, resumable supervised training (STCP format).
//!
//! PR 4 made *campaign execution* fault-tolerant; this module extends the
//! same discipline to training, which is itself a long-running job (the
//! predictor is retrained per kernel version and refreshed during
//! campaigns). Three layers, mirroring the supervisor's design:
//!
//! * **epoch-granular checkpoints** — model weights, Adam moments, the RNG
//!   stream position, the *cumulative* shuffle permutation, anomaly-guard
//!   state and metric history, serialized bit-exactly (`snowcat_nn::binser`)
//!   inside the corpus crate's checksummed envelope and written atomically
//!   with `.prev` rotation. Resuming reproduces the uninterrupted run
//!   **bit-identically**, at any thread count;
//! * **anomaly guards** — per-step NaN/Inf sentinels on loss and gradient
//!   norm, an EWMA-based gradient-spike detector, and a post-epoch
//!   loss-divergence breaker. Each rolls the epoch back to its pre-epoch
//!   state and retries with a salted re-seed of the shuffle; bounded
//!   retries, then a typed [`SnowcatError::TrainingDiverged`];
//! * **shard-quarantining loading** — [`load_shards_quarantining`] decodes
//!   and validates each SCDS/JSON shard, sidelining corrupt or malformed
//!   ones into a [`QuarantineReport`] instead of aborting the run.
//!
//! A deterministic [`TrainFaultPlan`] (`nan@E`, `spike@E`, `panic@E`,
//! `shard@K:flip|trunc`, `kill@E`) drives the recovery paths end to end in
//! tests. An empty plan with no resume is bit-identical to the plain
//! [`snowcat_nn::train`] path — robustness costs nothing on the happy path.

use crate::checkpoint::{load_with_fallback, save_bytes_atomic};
use crate::fault::{corrupt, CorruptionKind};
use bytes::Bytes;
use rand::{seq::SliceRandom, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use snowcat_core::{decode_dataset_auto, SnowcatError};
use snowcat_corpus::{crc32, frame_checksummed, unframe_checksummed, validate_dataset, Dataset};
use snowcat_events::{EventSink, TrainEvent};
use snowcat_nn::binser::{
    put_adam, put_params, put_pic_config, take_adam, take_params, take_pic_config, Dec, Enc,
};
use snowcat_nn::{
    dataset_fingerprint, tune_threshold_f2_pooled, urb_average_precision, Adam, AdamConfig,
    AdamSnapshot, EpochError, EpochFault, EpochRunner, LabeledGraph, PicConfig, PicModel,
    PicParams, StepInfo, TrainConfig,
};
use std::path::{Path, PathBuf};

/// Magic of the Snowcat Training CheckPoint envelope.
pub const TRAIN_CKPT_MAGIC: &[u8; 4] = b"STCP";
/// Current (and minimum readable) envelope version. v2: the embedded
/// config/parameter layout gained the static-channel fields (see
/// `snowcat_nn::binser`); training checkpoints are short-lived working
/// state, so v1 files are rejected rather than migrated.
pub const TRAIN_CKPT_VERSION: u16 = 2;

/// Salt mixed into the RNG state on epoch retries (distinct from the
/// supervisor's hang-retry salt).
const RETRY_SALT: u64 = 0x7A19_EE0C_55AB_41D7;
/// EWMA smoothing factor for the gradient-norm baseline.
const EWMA_ALPHA: f32 = 0.2;
/// Steps of EWMA warm-up before the spike detector arms. A spike injected
/// before the baseline exists is undetectable by design.
const EWMA_WARMUP: u64 = 3;
/// Gradient scale applied by an injected `spike@E` fault.
const SPIKE_MAGNITUDE: f32 = 1.0e3;
/// Exit code emulating SIGKILL for `kill@E` faults (128 + 9).
const KILL_EXIT_CODE: i32 = 137;

/// Which anomaly an injected epoch fault provokes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainFaultKind {
    /// Poison one accumulated gradient entry with NaN.
    Nan,
    /// Scale the accumulated gradients by [`SPIKE_MAGNITUDE`].
    Spike,
    /// Panic a training worker.
    Panic,
}

/// Inject a fault into the first `attempts` attempts at one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainEpochFault {
    /// Epoch the fault applies to (0-based).
    pub epoch: usize,
    /// What to inject.
    pub kind: TrainFaultKind,
    /// How many consecutive attempts at that epoch are faulted.
    pub attempts: usize,
}

/// A reproducible training fault-injection plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainFaultPlan {
    /// Per-epoch gradient/worker faults.
    pub epoch_faults: Vec<TrainEpochFault>,
    /// Shard corruptions by shard index (applied to the bytes between read
    /// and decode, emulating on-disk corruption).
    pub shard_faults: Vec<(usize, CorruptionKind)>,
    /// Exit the process (as if SIGKILLed) right after this epoch completes.
    pub kill_epoch: Option<usize>,
}

impl TrainFaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.epoch_faults.is_empty() && self.shard_faults.is_empty() && self.kill_epoch.is_none()
    }

    /// The fault to inject at (`epoch`, `attempt`), if any.
    pub fn epoch_fault(&self, epoch: usize, attempt: usize) -> Option<EpochFault> {
        self.epoch_faults.iter().find(|f| f.epoch == epoch && attempt < f.attempts).map(|f| match f
            .kind
        {
            TrainFaultKind::Nan => EpochFault::NanGrads,
            TrainFaultKind::Spike => EpochFault::SpikeGrads(SPIKE_MAGNITUDE),
            TrainFaultKind::Panic => EpochFault::WorkerPanic,
        })
    }

    /// The corruption to apply to shard `index`, if any.
    pub fn shard_fault(&self, index: usize) -> Option<CorruptionKind> {
        self.shard_faults.iter().find(|(k, _)| *k == index).map(|(_, kind)| *kind)
    }

    /// True when the process should die right after `epoch` completes.
    pub fn kill_at(&self, epoch: usize) -> bool {
        self.kill_epoch == Some(epoch)
    }

    /// Parse a comma-separated spec string. Grammar (whitespace-free):
    ///
    /// * `nan@E` / `nan@ExN` — NaN-poison the gradients of the first 1
    ///   (resp. N) attempts at epoch E,
    /// * `spike@E` / `spike@ExN` — scale the gradients of the first
    ///   attempts at epoch E by a large factor,
    /// * `panic@E` / `panic@ExN` — panic a training worker at epoch E,
    /// * `shard@K:flip` / `shard@K:trunc` — corrupt the Kth data shard
    ///   (0-based) before decoding,
    /// * `kill@E` — exit the process right after epoch E completes (its
    ///   checkpoint, if due, has been written).
    ///
    /// The empty string parses to the empty plan.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = TrainFaultPlan::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, rest) = token
                .split_once('@')
                .ok_or_else(|| format!("fault token '{token}' is missing '@'"))?;
            let bad = |field: &str| format!("'{token}': '{field}' is not a valid number");
            match kind {
                "nan" | "spike" | "panic" => {
                    let (epoch, attempts) = match rest.split_once('x') {
                        Some((e, n)) => (
                            e.parse::<usize>().map_err(|_| bad(e))?,
                            n.parse::<usize>().map_err(|_| bad(n))?,
                        ),
                        None => (rest.parse::<usize>().map_err(|_| bad(rest))?, 1),
                    };
                    if attempts == 0 {
                        return Err(format!("'{token}': attempt count must be ≥ 1"));
                    }
                    let fk = match kind {
                        "nan" => TrainFaultKind::Nan,
                        "spike" => TrainFaultKind::Spike,
                        _ => TrainFaultKind::Panic,
                    };
                    plan.epoch_faults.push(TrainEpochFault { epoch, kind: fk, attempts });
                }
                "shard" => {
                    let (idx, how) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("'{token}': expected shard@K:flip|trunc"))?;
                    let index = idx.parse::<usize>().map_err(|_| bad(idx))?;
                    let ck = match how {
                        "flip" => CorruptionKind::Flip,
                        "trunc" => CorruptionKind::Truncate,
                        other => return Err(format!("'{token}': unknown corruption '{other}'")),
                    };
                    plan.shard_faults.push((index, ck));
                }
                "kill" => {
                    let epoch = rest.parse::<usize>().map_err(|_| bad(rest))?;
                    if plan.kill_epoch.is_some() {
                        return Err("duplicate kill@ fault".into());
                    }
                    plan.kill_epoch = Some(epoch);
                }
                other => return Err(format!("unknown fault kind '{other}' in '{token}'")),
            }
        }
        Ok(plan)
    }
}

/// One detected-and-handled training anomaly (also recorded when the
/// retry succeeded — the report shows what was survived, not just what
/// killed the run).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalyEvent {
    /// Epoch the anomaly occurred in.
    pub epoch: usize,
    /// Attempt number at that epoch (0 = first try).
    pub attempt: usize,
    /// Anomaly class: `nan-loss`, `nan-grad`, `grad-spike`,
    /// `loss-divergence` or `worker-panic`.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Everything needed to continue an interrupted run bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Model hyperparameters (resume must match).
    pub pic_cfg: PicConfig,
    /// Training schedule: total epochs.
    pub epochs: usize,
    /// Training schedule: learning rate (compared bit-exactly on resume).
    pub lr: f32,
    /// Training schedule: batch size.
    pub batch: usize,
    /// Training schedule: shuffle seed.
    pub seed: u64,
    /// Structural fingerprint of the training set (resume must match).
    pub data_fingerprint: u64,
    /// Epochs fully completed.
    pub epochs_done: usize,
    /// RNG stream position after the last completed epoch's shuffle.
    pub rng_state: [u64; 4],
    /// The cumulative in-place shuffle permutation. `shuffle` permutes the
    /// index vector *in place*, so epoch N's order depends on every prior
    /// shuffle — without this vector a resumed run would diverge even with
    /// the exact RNG position.
    pub order: Vec<u32>,
    /// Model parameters after the last completed epoch.
    pub params: PicParams,
    /// Best validation checkpoint so far: (epoch, URB AP, parameters).
    pub best: Option<(usize, f64, PicParams)>,
    /// Complete optimizer state.
    pub adam: AdamSnapshot,
    /// Gradient-norm EWMA (anomaly-guard baseline).
    pub ewma: f32,
    /// Steps folded into the EWMA.
    pub ewma_steps: u64,
    /// Mean training loss per completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation URB AP per completed epoch.
    pub val_ap: Vec<f64>,
    /// Anomalies detected (and survived) so far.
    pub anomalies: Vec<AnomalyEvent>,
    /// Tuned threshold (complete checkpoints only).
    pub threshold: Option<f32>,
    /// Whether patience-based early stopping ended the run.
    pub early_stopped: bool,
    /// True once the run finished (best restored, threshold tuned);
    /// resuming a complete checkpoint short-circuits to its report.
    pub complete: bool,
}

/// Serialize a training checkpoint into its checksummed STCP envelope.
pub fn encode_train_checkpoint(ck: &TrainCheckpoint) -> Vec<u8> {
    let mut e = Enc::new();
    put_pic_config(&mut e, &ck.pic_cfg);
    e.put_u64(ck.epochs as u64);
    e.put_f32(ck.lr);
    e.put_u64(ck.batch as u64);
    e.put_u64(ck.seed);
    e.put_u64(ck.data_fingerprint);
    e.put_u64(ck.epochs_done as u64);
    for w in ck.rng_state {
        e.put_u64(w);
    }
    e.put_u32(ck.order.len() as u32);
    for &i in &ck.order {
        e.put_u32(i);
    }
    put_params(&mut e, &ck.params);
    match &ck.best {
        None => e.put_u8(0),
        Some((epoch, ap, params)) => {
            e.put_u8(1);
            e.put_u64(*epoch as u64);
            e.put_f64(*ap);
            put_params(&mut e, params);
        }
    }
    put_adam(&mut e, &ck.adam);
    e.put_f32(ck.ewma);
    e.put_u64(ck.ewma_steps);
    e.put_f32s(&ck.epoch_losses);
    e.put_f64s(&ck.val_ap);
    e.put_u32(ck.anomalies.len() as u32);
    for a in &ck.anomalies {
        e.put_u64(a.epoch as u64);
        e.put_u64(a.attempt as u64);
        e.put_str(&a.kind);
        e.put_str(&a.detail);
    }
    match ck.threshold {
        None => e.put_u8(0),
        Some(t) => {
            e.put_u8(1);
            e.put_f32(t);
        }
    }
    e.put_u8(u8::from(ck.early_stopped));
    e.put_u8(u8::from(ck.complete));
    frame_checksummed(TRAIN_CKPT_MAGIC, TRAIN_CKPT_VERSION, &e.finish()).to_vec()
}

/// Decode a training checkpoint, verifying magic, version, length and
/// checksum before touching the payload.
pub fn decode_train_checkpoint(path: &Path, bytes: &[u8]) -> Result<TrainCheckpoint, SnowcatError> {
    let bad = |detail: String| SnowcatError::CheckpointCorrupt { path: path.to_owned(), detail };
    let (_, payload) = unframe_checksummed(
        TRAIN_CKPT_MAGIC,
        TRAIN_CKPT_VERSION,
        TRAIN_CKPT_VERSION,
        Bytes::from(bytes.to_vec()),
    )
    .map_err(|e| bad(e.to_string()))?;
    let mut d = Dec::new(payload.as_slice());
    let decode = |d: &mut Dec<'_>| -> Result<TrainCheckpoint, snowcat_nn::BinError> {
        let pic_cfg = take_pic_config(d)?;
        let epochs = d.take_u64()? as usize;
        let lr = d.take_f32()?;
        let batch = d.take_u64()? as usize;
        let seed = d.take_u64()?;
        let data_fingerprint = d.take_u64()?;
        let epochs_done = d.take_u64()? as usize;
        let mut rng_state = [0u64; 4];
        for w in &mut rng_state {
            *w = d.take_u64()?;
        }
        let n_order = d.take_u32()? as usize;
        let order = (0..n_order).map(|_| d.take_u32()).collect::<Result<Vec<u32>, _>>()?;
        let params = take_params(d)?;
        let best = match d.take_u8()? {
            0 => None,
            _ => {
                let epoch = d.take_u64()? as usize;
                let ap = d.take_f64()?;
                Some((epoch, ap, take_params(d)?))
            }
        };
        let adam = take_adam(d)?;
        let ewma = d.take_f32()?;
        let ewma_steps = d.take_u64()?;
        let epoch_losses = d.take_f32s()?;
        let val_ap = d.take_f64s()?;
        let n_anoms = d.take_u32()? as usize;
        let mut anomalies = Vec::with_capacity(n_anoms.min(1024));
        for _ in 0..n_anoms {
            anomalies.push(AnomalyEvent {
                epoch: d.take_u64()? as usize,
                attempt: d.take_u64()? as usize,
                kind: d.take_str()?,
                detail: d.take_str()?,
            });
        }
        let threshold = match d.take_u8()? {
            0 => None,
            _ => Some(d.take_f32()?),
        };
        let early_stopped = d.take_u8()? != 0;
        let complete = d.take_u8()? != 0;
        d.expect_end()?;
        Ok(TrainCheckpoint {
            pic_cfg,
            epochs,
            lr,
            batch,
            seed,
            data_fingerprint,
            epochs_done,
            rng_state,
            order,
            params,
            best,
            adam,
            ewma,
            ewma_steps,
            epoch_losses,
            val_ap,
            anomalies,
            threshold,
            early_stopped,
            complete,
        })
    };
    decode(&mut d).map_err(|e| bad(format!("payload is not a training checkpoint: {e}")))
}

/// Atomically write a training checkpoint with `.prev` rotation (see
/// [`crate::checkpoint::save_bytes_atomic`]).
pub fn save_train_checkpoint_atomic(path: &Path, ck: &TrainCheckpoint) -> Result<(), SnowcatError> {
    save_bytes_atomic(path, &encode_train_checkpoint(ck))
}

/// Load a training checkpoint, falling back to `<path>.prev` when the
/// current file is missing or corrupt. Returns the checkpoint and whether
/// the fallback was used.
pub fn load_train_checkpoint_with_fallback(
    path: &Path,
) -> Result<(TrainCheckpoint, bool), SnowcatError> {
    load_with_fallback(path, &|p, bytes| decode_train_checkpoint(p, bytes))
}

/// Supervised-training configuration wrapping the plain [`TrainConfig`].
#[derive(Debug, Clone, Default)]
pub struct RobustTrainConfig {
    /// The underlying schedule (epochs, lr, batch, seed, threads).
    pub train: TrainConfig,
    /// Where to write training checkpoints (None = never checkpoint).
    pub checkpoint_path: Option<PathBuf>,
    /// Checkpoint cadence in completed epochs.
    pub checkpoint_every: usize,
    /// Stop after this many epochs without a validation-AP improvement.
    pub patience: Option<usize>,
    /// Salted retries per epoch before declaring divergence.
    pub max_retries: usize,
    /// Gradient-norm spike threshold as a multiple of the EWMA baseline.
    pub spike_factor: f32,
    /// Loss-divergence breaker: mean epoch loss above this multiple of the
    /// best (minimum) prior epoch loss fails the epoch.
    pub divergence_factor: f32,
    /// Stop cleanly after this many epochs completed *in this call* (the
    /// in-process analogue of a kill, for resume tests).
    pub stop_after: Option<usize>,
    /// Sleep after each epoch (lets CLI kill tests land mid-run).
    pub stall_ms: u64,
    /// Deterministic fault injection.
    pub fault_plan: TrainFaultPlan,
    /// Structured-event sink (`None` disables instrumentation; emission is
    /// non-blocking and never fails the run).
    pub events: Option<EventSink>,
}

impl RobustTrainConfig {
    /// Defaults: checkpoint every epoch (when a path is given), 2 salted
    /// retries, 8× EWMA spike threshold, 4× divergence breaker.
    pub fn new(train: TrainConfig) -> Self {
        Self {
            train,
            checkpoint_path: None,
            checkpoint_every: 1,
            patience: None,
            max_retries: 2,
            spike_factor: 8.0,
            divergence_factor: 4.0,
            stop_after: None,
            stall_ms: 0,
            fault_plan: TrainFaultPlan::default(),
            events: None,
        }
    }
}

/// Result of a supervised training run. Deliberately excludes wall-clock
/// time so the report of a killed-and-resumed run serializes byte-identical
/// to an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainRunReport {
    /// Mean training loss per completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation URB AP per completed epoch.
    pub val_ap: Vec<f64>,
    /// Epoch whose parameters were kept (best validation AP).
    pub best_epoch: Option<usize>,
    /// F2-tuned classification threshold (None without a validation set or
    /// on an incomplete run).
    pub threshold: Option<f32>,
    /// Anomalies detected and survived.
    pub anomalies: Vec<AnomalyEvent>,
    /// Whether patience-based early stopping ended the run.
    pub early_stopped: bool,
    /// False when `stop_after` interrupted the run before the last epoch.
    pub completed: bool,
    /// CRC32 of the bit-exact serialized final parameters — a strong
    /// weight-identity witness for resume tests.
    pub params_crc32: u32,
}

/// CRC32 over the bit-exact serialization of a parameter set.
pub fn params_crc32(params: &PicParams) -> u32 {
    let mut e = Enc::new();
    put_params(&mut e, params);
    crc32(&e.finish())
}

/// Mix (epoch, attempt) into a captured RNG state for a salted retry —
/// splitmix64-style, so retry streams are decorrelated from the original
/// and from each other.
fn salt_state(state: [u64; 4], epoch: usize, attempt: usize) -> [u64; 4] {
    let mut s = state;
    let mut z = (epoch as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((attempt as u64).wrapping_mul(RETRY_SALT));
    for w in &mut s {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        *w ^= x ^ (x >> 31);
    }
    s
}

/// The post-epoch loss-divergence breaker: fails an epoch whose mean loss
/// is non-finite or exceeds `factor` times the best prior epoch loss.
pub fn loss_diverged(mean_loss: f32, prior_losses: &[f32], factor: f32) -> bool {
    if !mean_loss.is_finite() {
        return true;
    }
    let min_prior = prior_losses.iter().copied().fold(f32::INFINITY, f32::min);
    min_prior.is_finite() && min_prior > 1e-12 && mean_loss > factor * min_prior
}

/// The [`TrainRunReport`] view of a *complete* STCP checkpoint — what
/// `robust_train` would have returned from the run that wrote it.
pub fn report_from_checkpoint(ck: &TrainCheckpoint) -> TrainRunReport {
    TrainRunReport {
        epoch_losses: ck.epoch_losses.clone(),
        val_ap: ck.val_ap.clone(),
        best_epoch: ck.best.as_ref().map(|b| b.0),
        threshold: ck.threshold,
        anomalies: ck.anomalies.clone(),
        early_stopped: ck.early_stopped,
        completed: true,
        params_crc32: params_crc32(&ck.params),
    }
}

fn emit_anomaly(cfg: &RobustTrainConfig, anomaly: Option<&AnomalyEvent>) {
    if let (Some(sink), Some(a)) = (&cfg.events, anomaly) {
        sink.train(TrainEvent::AnomalyDetected {
            epoch: a.epoch as u64,
            attempt: a.attempt as u64,
            kind: a.kind.clone(),
            detail: a.detail.clone(),
        });
    }
}

/// Train `model` under supervision: anomaly guards with rollback-and-retry,
/// epoch-granular checkpointing, patience-based early stopping, and
/// best-validation-AP model selection identical to [`snowcat_nn::train`].
///
/// With an empty fault plan, no resume and no early interruption, the final
/// parameters are **bit-identical** to `snowcat_nn::train` with the same
/// [`TrainConfig`] — at any thread count. With `resume`, continues from the
/// checkpoint at `cfg.checkpoint_path`, again bit-identically.
pub fn robust_train(
    model: &mut PicModel,
    train_set: &[LabeledGraph<'_>],
    valid: &[LabeledGraph<'_>],
    cfg: &RobustTrainConfig,
    resume: bool,
) -> Result<TrainRunReport, SnowcatError> {
    let tc = cfg.train;
    let fingerprint = dataset_fingerprint(train_set);
    let checkpoint_every = cfg.checkpoint_every.max(1);

    let mut rng;
    let mut opt;
    let mut order: Vec<usize>;
    let mut start_epoch = 0usize;
    let mut epoch_losses: Vec<f32> = Vec::new();
    let mut val_ap: Vec<f64> = Vec::new();
    let mut anomalies: Vec<AnomalyEvent> = Vec::new();
    let mut best: Option<(usize, f64, PicParams)> = None;
    let mut ewma = 0.0f32;
    let mut ewma_steps = 0u64;

    if resume {
        let path = cfg.checkpoint_path.as_deref().ok_or_else(|| {
            SnowcatError::Config("resume requested but no checkpoint path configured".into())
        })?;
        let (ck, _fell_back) = load_train_checkpoint_with_fallback(path)?;
        let mismatch = |what: &str| {
            SnowcatError::Config(format!(
                "cannot resume {}: {what} differs from the checkpointed run",
                path.display()
            ))
        };
        if ck.pic_cfg != model.cfg {
            return Err(mismatch("model configuration"));
        }
        if ck.data_fingerprint != fingerprint {
            return Err(mismatch("training-set fingerprint"));
        }
        if ck.epochs != tc.epochs
            || ck.lr.to_bits() != tc.lr.to_bits()
            || ck.batch != tc.batch
            || ck.seed != tc.seed
        {
            return Err(mismatch("training schedule (epochs/lr/batch/seed)"));
        }
        if ck.order.len() != train_set.len() {
            return Err(mismatch("training-set size"));
        }
        if ck.complete {
            model.params = ck.params.clone();
            return Ok(report_from_checkpoint(&ck));
        }
        model.params = ck.params.clone();
        opt = Adam::from_snapshot(&ck.adam);
        rng = ChaCha8Rng::from_state(ck.rng_state);
        order = ck.order.iter().map(|&i| i as usize).collect();
        start_epoch = ck.epochs_done;
        epoch_losses = ck.epoch_losses;
        val_ap = ck.val_ap;
        anomalies = ck.anomalies;
        best = ck.best;
        ewma = ck.ewma;
        ewma_steps = ck.ewma_steps;
    } else {
        rng = ChaCha8Rng::seed_from_u64(tc.seed);
        opt = Adam::new(AdamConfig { lr: tc.lr, ..Default::default() }, &model.params.shapes());
        order = (0..train_set.len()).collect();
    }

    if let Some(sink) = &cfg.events {
        sink.train(TrainEvent::Started {
            epochs: tc.epochs as u64,
            examples: train_set.len() as u64,
            resumed_epoch: if resume { Some(start_epoch as u64) } else { None },
        });
    }
    let mut runner = EpochRunner::new(model);
    let mut early_stopped = false;
    let mut completed = true;
    let mut epochs_this_call = 0usize;

    let mut epoch = start_epoch;
    while epoch < tc.epochs {
        // Everything an epoch mutates, captured for rollback.
        let pre_params = model.params.clone();
        let pre_adam = opt.snapshot();
        let pre_rng = rng.state();
        let pre_order = order.clone();
        let (pre_ewma, pre_ewma_steps) = (ewma, ewma_steps);

        let mut attempt = 0usize;
        let outcome = loop {
            if attempt > 0 {
                model.params = pre_params.clone();
                opt = Adam::from_snapshot(&pre_adam);
                order.copy_from_slice(&pre_order);
                rng = ChaCha8Rng::from_state(salt_state(pre_rng, epoch, attempt));
                ewma = pre_ewma;
                ewma_steps = pre_ewma_steps;
            }
            order.shuffle(&mut rng);
            let fault = cfg.fault_plan.epoch_fault(epoch, attempt);

            let spike_factor = cfg.spike_factor;
            let mut pending: Option<(String, String)> = None;
            let mut g_ewma = ewma;
            let mut g_steps = ewma_steps;
            let mut obs = |info: &StepInfo| -> Result<(), String> {
                if !info.loss_sum.is_finite() {
                    let d = format!("non-finite batch loss at step {}", info.step);
                    pending = Some(("nan-loss".into(), d.clone()));
                    return Err(d);
                }
                if !info.grad_norm.is_finite() {
                    let d = format!("non-finite gradient norm at step {}", info.step);
                    pending = Some(("nan-grad".into(), d.clone()));
                    return Err(d);
                }
                if g_steps >= EWMA_WARMUP && g_ewma > 0.0 && info.grad_norm > spike_factor * g_ewma
                {
                    let d = format!(
                        "gradient norm {:.4} exceeds {spike_factor}x EWMA baseline {:.4} at \
                         step {}",
                        info.grad_norm, g_ewma, info.step
                    );
                    pending = Some(("grad-spike".into(), d.clone()));
                    return Err(d);
                }
                g_ewma = if g_steps == 0 {
                    info.grad_norm
                } else {
                    EWMA_ALPHA * info.grad_norm + (1.0 - EWMA_ALPHA) * g_ewma
                };
                g_steps += 1;
                Ok(())
            };
            let result = runner.run_coverage_epoch(
                model,
                train_set,
                &order,
                tc.batch,
                tc.threads,
                &mut opt,
                fault,
                Some(&mut obs),
            );
            match result {
                Ok(out) => {
                    if loss_diverged(out.mean_loss, &epoch_losses, cfg.divergence_factor) {
                        anomalies.push(AnomalyEvent {
                            epoch,
                            attempt,
                            kind: "loss-divergence".into(),
                            detail: format!(
                                "mean epoch loss {} vs best prior {:?} (breaker x{})",
                                out.mean_loss,
                                epoch_losses.iter().copied().fold(f32::INFINITY, f32::min),
                                cfg.divergence_factor
                            ),
                        });
                        emit_anomaly(cfg, anomalies.last());
                    } else {
                        ewma = g_ewma;
                        ewma_steps = g_steps;
                        break out;
                    }
                }
                Err(EpochError::WorkerPanicked { message }) => {
                    anomalies.push(AnomalyEvent {
                        epoch,
                        attempt,
                        kind: "worker-panic".into(),
                        detail: message,
                    });
                    emit_anomaly(cfg, anomalies.last());
                }
                Err(EpochError::Aborted { step, reason }) => {
                    let (kind, detail) = pending
                        .take()
                        .unwrap_or(("anomaly".into(), format!("step {step}: {reason}")));
                    anomalies.push(AnomalyEvent { epoch, attempt, kind, detail });
                    emit_anomaly(cfg, anomalies.last());
                }
            }
            if attempt >= cfg.max_retries {
                // Leave the caller's model at the last good state rather
                // than mid-poisoned-epoch.
                model.params = pre_params;
                let cause = anomalies
                    .last()
                    .map(|a| format!("{}: {}", a.kind, a.detail))
                    .unwrap_or_else(|| "unknown anomaly".into());
                if let Some(sink) = &cfg.events {
                    sink.train(TrainEvent::Finished {
                        epochs: epoch_losses.len() as u64,
                        best_epoch: best.as_ref().map(|b| b.0 as u64),
                        best_val_ap: best.as_ref().map(|b| b.1),
                        early_stopped: false,
                        diverged: true,
                    });
                }
                return Err(SnowcatError::TrainingDiverged { epoch, retries: attempt, cause });
            }
            attempt += 1;
            if let Some(sink) = &cfg.events {
                sink.train(TrainEvent::RolledBack { epoch: epoch as u64, attempt: attempt as u64 });
            }
        };

        epoch_losses.push(outcome.mean_loss);
        if !valid.is_empty() {
            let ap = urb_average_precision(model, valid);
            val_ap.push(ap);
            let best_ap = best.as_ref().map(|b| b.1).unwrap_or(f64::NEG_INFINITY);
            if ap > best_ap {
                best = Some((epoch, ap, model.params.clone()));
            }
        }
        if let Some(sink) = &cfg.events {
            sink.train(TrainEvent::EpochCompleted {
                epoch: epoch as u64,
                attempt: attempt as u64,
                loss: f64::from(outcome.mean_loss),
                val_ap: val_ap.last().copied(),
            });
        }
        let epochs_done = epoch + 1;
        epochs_this_call += 1;

        if let (Some(p), Some((best_epoch, _, _))) = (cfg.patience, best.as_ref()) {
            if epoch - best_epoch >= p {
                early_stopped = true;
            }
        }
        let stopping = early_stopped
            || cfg.stop_after.is_some_and(|n| epochs_this_call >= n && epochs_done < tc.epochs);

        let mut wrote = false;
        if let Some(path) = &cfg.checkpoint_path {
            if epochs_done.is_multiple_of(checkpoint_every) || epochs_done == tc.epochs || stopping
            {
                let ck = TrainCheckpoint {
                    pic_cfg: model.cfg,
                    epochs: tc.epochs,
                    lr: tc.lr,
                    batch: tc.batch,
                    seed: tc.seed,
                    data_fingerprint: fingerprint,
                    epochs_done,
                    rng_state: rng.state(),
                    order: order.iter().map(|&i| i as u32).collect(),
                    params: model.params.clone(),
                    best: best.clone(),
                    adam: opt.snapshot(),
                    ewma,
                    ewma_steps,
                    epoch_losses: epoch_losses.clone(),
                    val_ap: val_ap.clone(),
                    anomalies: anomalies.clone(),
                    threshold: None,
                    early_stopped: false,
                    complete: false,
                };
                save_train_checkpoint_atomic(path, &ck)?;
                if let Some(sink) = &cfg.events {
                    sink.train(TrainEvent::CheckpointWritten {
                        path: path.display().to_string(),
                        epoch: epochs_done as u64,
                        complete: false,
                    });
                }
                wrote = true;
            }
        }
        let _ = wrote;

        if cfg.fault_plan.kill_at(epoch) {
            // Emulate SIGKILL: no cleanup, no final checkpoint.
            std::process::exit(KILL_EXIT_CODE);
        }
        if cfg.stall_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(cfg.stall_ms));
        }
        if stopping && !early_stopped {
            completed = false;
        }
        epoch += 1;
        if stopping {
            break;
        }
    }

    let best_epoch = best.as_ref().map(|b| b.0);
    let mut threshold = None;
    if completed {
        if let Some((_, _, p)) = &best {
            model.params = p.clone();
        }
        if !valid.is_empty() {
            threshold = Some(tune_threshold_f2_pooled(model, valid));
        }
        if let Some(path) = &cfg.checkpoint_path {
            let ck = TrainCheckpoint {
                pic_cfg: model.cfg,
                epochs: tc.epochs,
                lr: tc.lr,
                batch: tc.batch,
                seed: tc.seed,
                data_fingerprint: fingerprint,
                epochs_done: epoch,
                rng_state: rng.state(),
                order: order.iter().map(|&i| i as u32).collect(),
                params: model.params.clone(),
                best: best.clone(),
                adam: opt.snapshot(),
                ewma,
                ewma_steps,
                epoch_losses: epoch_losses.clone(),
                val_ap: val_ap.clone(),
                anomalies: anomalies.clone(),
                threshold,
                early_stopped,
                complete: true,
            };
            save_train_checkpoint_atomic(path, &ck)?;
            if let Some(sink) = &cfg.events {
                sink.train(TrainEvent::CheckpointWritten {
                    path: path.display().to_string(),
                    epoch: epoch as u64,
                    complete: true,
                });
            }
        }
    }
    if let Some(sink) = &cfg.events {
        sink.train(TrainEvent::Finished {
            epochs: epoch_losses.len() as u64,
            best_epoch: best_epoch.map(|e| e as u64),
            best_val_ap: best.as_ref().map(|b| b.1),
            early_stopped,
            diverged: false,
        });
    }
    Ok(TrainRunReport {
        epoch_losses,
        val_ap,
        best_epoch,
        threshold,
        anomalies,
        early_stopped,
        completed,
        params_crc32: params_crc32(&model.params),
    })
}

/// One quarantined shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardIssue {
    /// The shard file.
    pub path: String,
    /// Why it was quarantined (read, decode or validation failure).
    pub reason: String,
}

/// Summary of a quarantining load: what made it in, what was sidelined.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineReport {
    /// Shards loaded successfully.
    pub loaded: usize,
    /// Examples merged from the loaded shards.
    pub examples: usize,
    /// Quarantined shards with reasons, in input order.
    pub quarantined: Vec<ShardIssue>,
}

/// Load dataset shards, quarantining any that fail to read, fail the frame
/// checksum / decode, or fail structural validation (graph invariants,
/// label alignment, token ranges) — instead of aborting the run. The fault
/// plan's `shard@K` entries corrupt shard K's bytes between read and
/// decode, emulating on-disk corruption deterministically.
pub fn load_shards_quarantining(
    paths: &[PathBuf],
    plan: &TrainFaultPlan,
) -> (Dataset, QuarantineReport) {
    load_shards_quarantining_instrumented(paths, plan, None)
}

/// [`load_shards_quarantining`] plus a `ShardQuarantined` event per
/// sidelined shard.
pub fn load_shards_quarantining_instrumented(
    paths: &[PathBuf],
    plan: &TrainFaultPlan,
    events: Option<&EventSink>,
) -> (Dataset, QuarantineReport) {
    let mut merged = Dataset::default();
    let mut report = QuarantineReport::default();
    for (k, path) in paths.iter().enumerate() {
        let quarantine = |report: &mut QuarantineReport, reason: String| {
            if let Some(sink) = events {
                sink.train(TrainEvent::ShardQuarantined {
                    path: path.display().to_string(),
                    reason: reason.clone(),
                });
            }
            report.quarantined.push(ShardIssue { path: path.display().to_string(), reason });
        };
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                quarantine(&mut report, format!("read failed: {e}"));
                continue;
            }
        };
        let bytes = match plan.shard_fault(k) {
            Some(kind) => corrupt(&bytes, kind),
            None => bytes,
        };
        let ds = match decode_dataset_auto(path, bytes) {
            Ok(ds) => ds,
            Err(e) => {
                quarantine(&mut report, format!("decode failed: {e}"));
                continue;
            }
        };
        if let Err(e) = validate_dataset(&ds) {
            quarantine(&mut report, format!("validation failed: {e}"));
            continue;
        }
        report.loaded += 1;
        report.examples += ds.examples.len();
        merged.examples.extend(ds.examples);
    }
    (merged, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_grammar_parses_and_rejects() {
        let plan =
            TrainFaultPlan::parse("nan@0,spike@1x2,panic@2,shard@0:flip,shard@3:trunc,kill@4")
                .unwrap();
        assert_eq!(plan.epoch_fault(0, 0), Some(EpochFault::NanGrads));
        assert_eq!(plan.epoch_fault(0, 1), None);
        assert_eq!(plan.epoch_fault(1, 1), Some(EpochFault::SpikeGrads(SPIKE_MAGNITUDE)));
        assert_eq!(plan.epoch_fault(1, 2), None);
        assert_eq!(plan.epoch_fault(2, 0), Some(EpochFault::WorkerPanic));
        assert_eq!(plan.shard_fault(0), Some(CorruptionKind::Flip));
        assert_eq!(plan.shard_fault(3), Some(CorruptionKind::Truncate));
        assert_eq!(plan.shard_fault(1), None);
        assert!(plan.kill_at(4) && !plan.kill_at(3));
        assert!(TrainFaultPlan::parse("").unwrap().is_empty());
        for bad in [
            "nan",
            "nan@",
            "nan@1x0",
            "spike@x",
            "shard@1",
            "shard@1:melt",
            "kill@x",
            "boom@1",
            "kill@1,kill@2",
        ] {
            assert!(TrainFaultPlan::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn salted_states_differ_per_attempt() {
        let base = [1u64, 2, 3, 4];
        let a1 = salt_state(base, 3, 1);
        let a2 = salt_state(base, 3, 2);
        let b1 = salt_state(base, 4, 1);
        assert_ne!(a1, base);
        assert_ne!(a1, a2);
        assert_ne!(a1, b1);
    }

    #[test]
    fn divergence_breaker_logic() {
        assert!(loss_diverged(f32::NAN, &[], 4.0));
        assert!(loss_diverged(f32::INFINITY, &[0.5], 4.0));
        assert!(!loss_diverged(1.0, &[], 4.0), "no prior epochs, finite loss: fine");
        assert!(!loss_diverged(1.9, &[0.5, 0.8], 4.0));
        assert!(loss_diverged(2.1, &[0.5, 0.8], 4.0));
    }
}
