//! Graceful predictor degradation.
//!
//! ConPredictor-style resilience: when the expensive learned predictor is
//! unavailable (a batch panics) or too slow (repeated latency-budget
//! violations), fall back to the cheap deterministic baseline instead of
//! aborting the campaign. MLPCT with a degraded predictor is still a valid
//! explorer — it just selects candidates with less insight — so a campaign
//! finishes with degradation *counters* rather than a crash.

use snowcat_core::{CoveragePredictor, PredictedCoverage, PredictorStats};
use snowcat_events::{CampaignEvent, EventSink};
use snowcat_graph::CtGraph;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Wraps a primary predictor with a fallback. Per-batch panics are caught
/// and served by the fallback; after `max_violations` latency-budget
/// violations the wrapper degrades permanently and routes every further
/// batch to the fallback.
///
/// With no latency budget and a healthy primary, the wrapper is fully
/// transparent: predictions are bit-identical to calling the primary
/// directly.
pub struct ResilientPredictor<P, F> {
    primary: P,
    fallback: F,
    latency_budget: Option<Duration>,
    max_violations: u32,
    violations: AtomicU32,
    permanently_degraded: AtomicBool,
    batches: AtomicU64,
    degraded_batches: AtomicU64,
    fallback_predictions: AtomicU64,
    events: Option<EventSink>,
}

impl<P: CoveragePredictor, F: CoveragePredictor> ResilientPredictor<P, F> {
    /// Wrap `primary`, degrading to `fallback` on per-batch failure.
    pub fn new(primary: P, fallback: F) -> Self {
        Self {
            primary,
            fallback,
            latency_budget: None,
            max_violations: 3,
            violations: AtomicU32::new(0),
            permanently_degraded: AtomicBool::new(false),
            batches: AtomicU64::new(0),
            degraded_batches: AtomicU64::new(0),
            fallback_predictions: AtomicU64::new(0),
            events: None,
        }
    }

    /// Emit a `PredictorDegraded` event through `sink` every time a batch
    /// is served by the fallback (and when the breaker trips permanently).
    pub fn with_event_sink(mut self, sink: EventSink) -> Self {
        self.events = Some(sink);
        self
    }

    /// Additionally degrade permanently after `max_violations` batches
    /// exceed `budget` wall-clock time (the batch that violates is still
    /// served by the primary — it already paid the cost).
    pub fn with_latency_budget(mut self, budget: Duration, max_violations: u32) -> Self {
        self.latency_budget = Some(budget);
        self.max_violations = max_violations.max(1);
        self
    }

    /// True once the wrapper has switched permanently to the fallback.
    pub fn is_degraded(&self) -> bool {
        self.permanently_degraded.load(Ordering::Relaxed)
    }

    /// Batches served by the fallback so far.
    pub fn degraded_batches(&self) -> u64 {
        self.degraded_batches.load(Ordering::Relaxed)
    }

    fn degrade(&self, graphs: &[CtGraph], reason: &str) -> Vec<PredictedCoverage> {
        self.degraded_batches.fetch_add(1, Ordering::Relaxed);
        self.fallback_predictions.fetch_add(graphs.len() as u64, Ordering::Relaxed);
        if let Some(s) = &self.events {
            s.campaign(CampaignEvent::PredictorDegraded {
                reason: reason.to_string(),
                permanent: self.is_degraded(),
            });
        }
        self.fallback.predict_batch(graphs)
    }
}

impl<P: CoveragePredictor, F: CoveragePredictor> CoveragePredictor for ResilientPredictor<P, F> {
    fn predict_batch(&self, graphs: &[CtGraph]) -> Vec<PredictedCoverage> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if self.permanently_degraded.load(Ordering::Relaxed) {
            return self.degrade(graphs, "permanently degraded");
        }
        let start = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| self.primary.predict_batch(graphs))) {
            Ok(preds) if preds.len() == graphs.len() => {
                if let Some(budget) = self.latency_budget {
                    if start.elapsed() > budget {
                        let v = self.violations.fetch_add(1, Ordering::Relaxed) + 1;
                        if v >= self.max_violations {
                            self.permanently_degraded.store(true, Ordering::Relaxed);
                            if let Some(s) = &self.events {
                                s.campaign(CampaignEvent::PredictorDegraded {
                                    reason: format!(
                                        "latency budget exceeded on {v} batches; breaker tripped"
                                    ),
                                    permanent: true,
                                });
                            }
                        }
                    }
                }
                preds
            }
            // Wrong-length output is a contract violation — treat it like a
            // failed batch rather than letting it misalign downstream.
            Ok(_) | Err(_) => self.degrade(graphs, "batch panicked or misaligned"),
        }
    }

    fn stats(&self) -> PredictorStats {
        let mut s = self.primary.stats().with_batches(self.batches.load(Ordering::Relaxed));
        s.add_degradation(
            self.degraded_batches.load(Ordering::Relaxed),
            self.fallback_predictions.load(Ordering::Relaxed),
        );
        s
    }

    fn fingerprint(&self) -> u64 {
        self.primary.fingerprint()
    }

    fn name(&self) -> String {
        format!("resilient({}|{})", self.primary.name(), self.fallback.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyPredictor;
    use snowcat_core::BaselineService;
    use snowcat_graph::{CtGraph, SchedMark, VertKind, Vertex};
    use snowcat_kernel::{BlockId, ThreadId};

    fn tiny_graph(tag: u32) -> CtGraph {
        CtGraph {
            verts: vec![Vertex {
                block: BlockId(tag),
                thread: ThreadId(0),
                kind: VertKind::Scb,
                sched_mark: SchedMark::None,
                may_race: false,
                tokens: vec![tag],
                static_feats: Default::default(),
            }],
            edges: vec![],
        }
    }

    /// A predictor that burns wall-clock time before answering.
    struct SlowPredictor {
        inner: BaselineService,
        delay: Duration,
    }

    impl CoveragePredictor for SlowPredictor {
        fn predict_batch(&self, graphs: &[CtGraph]) -> Vec<PredictedCoverage> {
            std::thread::sleep(self.delay);
            self.inner.predict_batch(graphs)
        }
        fn stats(&self) -> PredictorStats {
            self.inner.stats()
        }
        fn fingerprint(&self) -> u64 {
            self.inner.fingerprint()
        }
        fn name(&self) -> String {
            "slow".into()
        }
    }

    #[test]
    fn healthy_primary_is_transparent() {
        let primary = BaselineService::fair_coin(7);
        let reference = BaselineService::fair_coin(7);
        let wrapped = ResilientPredictor::new(primary, BaselineService::all_pos());
        let graphs = [tiny_graph(1), tiny_graph(2)];
        let a = wrapped.predict_batch(&graphs);
        let b = reference.predict_batch(&graphs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.positive, y.positive);
            assert_eq!(x.probs, y.probs);
        }
        let s = wrapped.stats();
        assert_eq!(s.degraded_batches(), 0);
        assert_eq!(s.fallback_predictions(), 0);
        assert!(!wrapped.is_degraded());
    }

    #[test]
    fn panicking_batches_fall_back() {
        // Fail every 2nd batch: batches 2 and 4 degrade, 1 and 3 succeed.
        let faulty = FaultyPredictor::new(BaselineService::fair_coin(7), 2);
        let wrapped = ResilientPredictor::new(faulty, BaselineService::all_pos());
        let graphs = [tiny_graph(1), tiny_graph(2), tiny_graph(3)];
        for _ in 0..4 {
            let preds = wrapped.predict_batch(&graphs);
            assert_eq!(preds.len(), graphs.len(), "output stays aligned even when degraded");
        }
        let s = wrapped.stats();
        assert_eq!(s.batches(), 4);
        assert_eq!(s.degraded_batches(), 2);
        assert_eq!(s.fallback_predictions(), 6);
        assert!(!wrapped.is_degraded(), "panic fallback is per-batch, not permanent");
        // Degraded batches come from all-pos: every vertex positive.
        let _healthy = wrapped.predict_batch(&graphs); // batch 5 succeeds
        let degraded = wrapped.predict_batch(&graphs); // batch 6 fails (periods 2, 4, 6)
        assert!(degraded.iter().all(|p| p.positive.iter().all(|&x| x)));
    }

    #[test]
    fn repeated_latency_violations_degrade_permanently() {
        let slow = SlowPredictor {
            inner: BaselineService::fair_coin(3),
            delay: Duration::from_millis(20),
        };
        let wrapped = ResilientPredictor::new(slow, BaselineService::all_pos())
            .with_latency_budget(Duration::from_millis(1), 2);
        let graphs = [tiny_graph(9)];
        // Two violating batches trip the breaker…
        wrapped.predict_batch(&graphs);
        wrapped.predict_batch(&graphs);
        assert!(wrapped.is_degraded());
        // …after which every batch is served by the fallback (all-pos).
        let p = wrapped.predict_batch(&graphs);
        assert!(p[0].positive.iter().all(|&x| x));
        assert!(wrapped.stats().degraded_batches() >= 1);
    }
}
