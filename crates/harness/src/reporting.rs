//! Builders for the unified [`snowcat_events::Report`] schema.
//!
//! The same [`CampaignSummary`] is derived from a live [`SupervisedResult`]
//! and from a final SCCP checkpoint, so `snowcat status --json` on a
//! kill-and-resumed campaign is byte-identical to the `--report` file of an
//! uninterrupted run with the same seed. Fields that legitimately differ
//! between the two paths are excluded from the summary by design: wall-clock
//! time, `checkpoints_written`, and `resumed_from`. Predictor counters are
//! process-local and not persisted in checkpoints, so checkpoint-derived
//! reports always carry `predictor: None`.

use crate::checkpoint::CampaignCheckpoint;
use crate::supervisor::RecoveryLog;
use crate::supervisor::SupervisedResult;
use crate::trainer::{QuarantineReport, TrainCheckpoint, TrainRunReport};
use snowcat_core::{HistoryPoint, PredictorStats};
use snowcat_events::{
    AnomalyRecord, CampaignSummary, PredictorCounters, Report, ShardIssue, TrainSummary,
};

/// Convert live predictor-chain counters into the report schema.
pub fn predictor_counters(ps: &PredictorStats) -> PredictorCounters {
    PredictorCounters {
        inferences: ps.inferences(),
        batches: ps.batches(),
        cache_hits: ps.cache_hits(),
        cache_misses: ps.cache_misses(),
        cache_evictions: ps.cache_evictions(),
        degraded_batches: ps.degraded_batches(),
        fallback_predictions: ps.fallback_predictions(),
    }
}

fn campaign_summary(
    label: &str,
    seed: u64,
    last: Option<&HistoryPoint>,
    quarantined: &[(usize, usize)],
    recovery: &RecoveryLog,
    predictor: Option<PredictorCounters>,
) -> CampaignSummary {
    let zero = HistoryPoint {
        ctis: 0,
        executions: 0,
        inferences: 0,
        hours: 0.0,
        races: 0,
        harmful_races: 0,
        sched_dep_blocks: 0,
        bugs: 0,
    };
    let h = last.unwrap_or(&zero);
    CampaignSummary {
        label: label.to_string(),
        seed,
        ctis: h.ctis as u64,
        executions: h.executions,
        inferences: h.inferences,
        races: h.races as u64,
        harmful_races: h.harmful_races as u64,
        sched_dep_blocks: h.sched_dep_blocks as u64,
        bugs_found: Vec::new(),
        sim_hours: h.hours,
        quarantined: quarantined.iter().map(|&(a, b)| (a as u64, b as u64)).collect(),
        hung_attempts: recovery.hung_attempts,
        retries: recovery.retries,
        wasted_executions: recovery.wasted_executions,
        skipped_quarantined: recovery.skipped_quarantined,
        predictor,
    }
}

/// Build the unified report from a live supervised run.
pub fn report_from_supervised(sup: &SupervisedResult, seed: u64) -> Report {
    let mut summary = campaign_summary(
        &sup.result.label,
        seed,
        sup.result.history.last(),
        &sup.quarantined,
        &sup.recovery,
        sup.predictor_stats.as_ref().map(predictor_counters),
    );
    summary.bugs_found = sup.result.bugs_found.iter().map(|b| b.0 as u64).collect();
    Report::for_campaign(summary)
}

/// Build the unified report from a final SCCP checkpoint. Predictor
/// counters are not persisted, so `predictor` is always `None` — identical
/// to what a PCT run reports live.
pub fn report_from_campaign_checkpoint(ck: &CampaignCheckpoint) -> Report {
    let mut summary =
        campaign_summary(&ck.label, ck.seed, ck.history.last(), &ck.quarantine, &ck.recovery, None);
    summary.bugs_found = ck.bugs_found.iter().map(|b| b.0 as u64).collect();
    Report::for_campaign(summary)
}

/// Build the unified report from a fleet checkpoint by merging its shard
/// checkpoints ([`crate::fleet::ShardMerge`], order-independent) and
/// reporting the merged whole-campaign state. At one worker with no faults
/// the single shard *is* the whole campaign, so the report is
/// byte-identical to `report_from_campaign_checkpoint` on a plain
/// supervised run. Shards that never persisted a checkpoint (quarantined
/// before any progress) contribute nothing.
pub fn report_from_fleet_checkpoint(
    fc: &crate::fleet::FleetCheckpoint,
    cost: &snowcat_core::CostModel,
) -> Result<Report, snowcat_core::SnowcatError> {
    let mut merge = crate::fleet::ShardMerge::new();
    for shard in &fc.shards {
        if let Some(ck) = &shard.checkpoint {
            merge.add(shard.index, ck.clone());
        }
    }
    Ok(report_from_campaign_checkpoint(&merge.finalize(cost)?))
}

fn train_summary(report: &TrainRunReport, quarantine: Option<&QuarantineReport>) -> TrainSummary {
    TrainSummary {
        epochs: report.epoch_losses.len() as u64,
        epoch_losses: report.epoch_losses.iter().map(|&l| f64::from(l)).collect(),
        val_ap: report.val_ap.clone(),
        best_epoch: report.best_epoch.map(|e| e as u64),
        threshold: report.threshold.map(f64::from),
        anomalies: report
            .anomalies
            .iter()
            .map(|a| AnomalyRecord {
                epoch: a.epoch as u64,
                attempt: a.attempt as u64,
                kind: a.kind.clone(),
                detail: a.detail.clone(),
            })
            .collect(),
        early_stopped: report.early_stopped,
        completed: report.completed,
        params_crc32: report.params_crc32,
        shards_loaded: quarantine.map(|q| q.loaded as u64).unwrap_or(0),
        shard_examples: quarantine.map(|q| q.examples as u64).unwrap_or(0),
        quarantined_shards: quarantine
            .map(|q| {
                q.quarantined
                    .iter()
                    .map(|s| ShardIssue { path: s.path.clone(), reason: s.reason.clone() })
                    .collect()
            })
            .unwrap_or_default(),
    }
}

/// Build the unified report from a live robust-training run.
pub fn report_from_train(report: &TrainRunReport, quarantine: Option<&QuarantineReport>) -> Report {
    Report::for_train(train_summary(report, quarantine))
}

/// Build the unified report from a complete STCP checkpoint. Shard-loading
/// counters are not persisted, so `shards_loaded`/`shard_examples`/
/// `quarantined_shards` stay zero/empty — status callers that need them
/// must read the event stream instead.
pub fn report_from_train_checkpoint(ck: &TrainCheckpoint) -> Report {
    Report::for_train(train_summary(&crate::trainer::report_from_checkpoint(ck), None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_core::CampaignResult;

    fn history_point() -> HistoryPoint {
        HistoryPoint {
            ctis: 8,
            executions: 40,
            inferences: 12,
            hours: 1.5,
            races: 9,
            harmful_races: 3,
            sched_dep_blocks: 77,
            bugs: 1,
        }
    }

    #[test]
    fn live_and_checkpoint_paths_agree() {
        let sup = SupervisedResult {
            result: CampaignResult {
                label: "pct-3".into(),
                history: vec![history_point()],
                bugs_found: vec![snowcat_kernel::BugId(4)],
            },
            quarantined: vec![(2, 5)],
            recovery: RecoveryLog {
                hung_attempts: 2,
                retries: 2,
                wasted_executions: 6,
                quarantined: 1,
                skipped_quarantined: 0,
                checkpoints_written: 3,
            },
            resumed_from: Some(4),
            predictor_stats: None,
        };
        let ck = CampaignCheckpoint {
            label: "pct-3".into(),
            seed: 77,
            position: 8,
            executions: 40,
            inferences: 12,
            race_keys: vec![],
            harmful_keys: vec![],
            blocks: snowcat_vm::BitSet::new(0),
            bugs_found: vec![snowcat_kernel::BugId(4)],
            history: vec![history_point()],
            quarantine: vec![(2, 5)],
            strategy: None,
            recovery: RecoveryLog {
                // The checkpoint path may have seen a different number of
                // checkpoint writes — excluded from the summary by design.
                checkpoints_written: 9,
                ..sup.recovery
            },
        };
        let live = report_from_supervised(&sup, 77);
        let from_ck = report_from_campaign_checkpoint(&ck);
        assert_eq!(live, from_ck);
        assert_eq!(live.to_canonical_json(), from_ck.to_canonical_json());
    }

    #[test]
    fn train_report_maps_all_fields() {
        let report = TrainRunReport {
            epoch_losses: vec![0.5, 0.25],
            val_ap: vec![0.7, 0.8],
            best_epoch: Some(1),
            threshold: Some(0.4),
            anomalies: vec![crate::trainer::AnomalyEvent {
                epoch: 0,
                attempt: 0,
                kind: "loss-divergence".into(),
                detail: "x".into(),
            }],
            early_stopped: false,
            completed: true,
            params_crc32: 0xDEAD_BEEF,
        };
        let quarantine = QuarantineReport {
            loaded: 3,
            examples: 120,
            quarantined: vec![crate::trainer::ShardIssue {
                path: "shard-1.bin".into(),
                reason: "bad checksum".into(),
            }],
        };
        let r = report_from_train(&report, Some(&quarantine));
        let t = r.train.as_ref().unwrap();
        assert_eq!(t.epochs, 2);
        assert_eq!(t.best_epoch, Some(1));
        assert_eq!(t.shards_loaded, 3);
        assert_eq!(t.quarantined_shards.len(), 1);
        assert_eq!(t.anomalies[0].kind, "loss-divergence");
        assert_eq!(r.kind, "train");
    }
}
