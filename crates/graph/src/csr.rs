//! Per-edge-type CSR adjacency for fast message passing.
//!
//! The relational GNN visits every edge of every type once per layer and per
//! direction. Re-scanning the flat edge list each time is cache-hostile
//! (random access into the hidden-state matrix) and forces the backward pass
//! to scatter. Instead we build, once per graph, a compressed-sparse-row
//! index per edge type in **both** directions:
//!
//! * the *in*-CSR groups source vertices by destination, so forward mean
//!   aggregation is a sequential gather into each destination row, and
//! * the *out*-CSR groups destination vertices by source, so the backward
//!   pass (`grad_h[u] += Σ_{u→v} grad_m[v] / indeg[v]`) is also a gather.
//!
//! Both sides are built with a counting sort that is *stable* with respect
//! to edge-list order, so per-row accumulation order — and therefore the
//! floating-point result — is identical to iterating the original edge
//! list. [`CsrAdj::rebuild`] reuses all internal buffers, so steady-state
//! graph ingestion performs no heap allocation once capacities have grown
//! to the working-set size.

use crate::repr::{CtGraph, NUM_EDGE_KINDS};

/// CSR index for one edge type, both directions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KindAdj {
    /// Incoming row pointers: sources of vertex `v` are
    /// `in_src[in_ptr[v] as usize .. in_ptr[v + 1] as usize]`.
    in_ptr: Vec<u32>,
    /// Source vertex indices grouped by destination, edge-list order within
    /// each destination.
    in_src: Vec<u32>,
    /// Outgoing row pointers: destinations of vertex `u` are
    /// `out_dst[out_ptr[u] as usize .. out_ptr[u + 1] as usize]`.
    out_ptr: Vec<u32>,
    /// Destination vertex indices grouped by source, edge-list order within
    /// each source.
    out_dst: Vec<u32>,
    /// Destinations with at least one incoming edge of this type, in
    /// ascending vertex order — the rows of the compacted message matrix.
    touched: Vec<u32>,
    /// Vertex → index into `touched` (`u32::MAX` for untouched vertices).
    compact: Vec<u32>,
}

/// Sentinel in [`KindAdj`]'s vertex → compact-row map.
const UNTOUCHED: u32 = u32::MAX;

impl KindAdj {
    /// Sources of incoming edges of this type at vertex `v`.
    #[inline]
    pub fn in_sources(&self, v: usize) -> &[u32] {
        &self.in_src[self.in_ptr[v] as usize..self.in_ptr[v + 1] as usize]
    }

    /// Destinations of outgoing edges of this type at vertex `u`.
    #[inline]
    pub fn out_dests(&self, u: usize) -> &[u32] {
        &self.out_dst[self.out_ptr[u] as usize..self.out_ptr[u + 1] as usize]
    }

    /// In-degree of vertex `v` under this edge type.
    #[inline]
    pub fn in_degree(&self, v: usize) -> usize {
        (self.in_ptr[v + 1] - self.in_ptr[v]) as usize
    }

    /// Number of edges of this type.
    pub fn num_edges(&self) -> usize {
        self.in_src.len()
    }

    /// Destinations with at least one incoming edge of this type, ascending.
    ///
    /// These are the only rows of the per-type message matrix that can be
    /// non-zero, so message passing computes just `touched().len()` rows
    /// (the compacted path) instead of one per vertex.
    #[inline]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Row of vertex `v` in the compacted message matrix, or `None` when `v`
    /// has no incoming edge of this type.
    #[inline]
    pub fn compact_row(&self, v: usize) -> Option<usize> {
        let c = self.compact[v];
        (c != UNTOUCHED).then_some(c as usize)
    }

    fn clear(&mut self) {
        self.in_ptr.clear();
        self.in_src.clear();
        self.out_ptr.clear();
        self.out_dst.clear();
        self.touched.clear();
        self.compact.clear();
    }
}

/// Per-edge-type CSR adjacency of a [`CtGraph`].
///
/// Build with [`CsrAdj::build`], or keep one around and [`CsrAdj::rebuild`]
/// it per graph to reuse capacity (this is what the inference session does).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrAdj {
    n: usize,
    kinds: [KindAdj; NUM_EDGE_KINDS],
}

impl CsrAdj {
    /// Build the adjacency of `g` from scratch.
    pub fn build(g: &CtGraph) -> Self {
        let mut adj = Self::default();
        adj.rebuild(g);
        adj
    }

    /// Rebuild in place for a new graph, reusing internal buffers.
    pub fn rebuild(&mut self, g: &CtGraph) {
        let n = g.num_verts();
        self.n = n;
        for kind in &mut self.kinds {
            kind.clear();
            kind.in_ptr.resize(n + 1, 0);
            kind.out_ptr.resize(n + 1, 0);
        }
        // Pass 1: per-kind degree counts (shifted by one so the prefix sum
        // leaves `ptr[v]` at the start of v's slot range).
        for e in &g.edges {
            let k = &mut self.kinds[e.kind.index()];
            k.in_ptr[e.to as usize + 1] += 1;
            k.out_ptr[e.from as usize + 1] += 1;
        }
        for kind in &mut self.kinds {
            kind.compact.resize(n, UNTOUCHED);
            for v in 0..n {
                // Pre-prefix-sum, `in_ptr[v + 1]` still holds v's in-degree.
                if kind.in_ptr[v + 1] > 0 {
                    kind.compact[v] = kind.touched.len() as u32;
                    kind.touched.push(v as u32);
                }
                kind.in_ptr[v + 1] += kind.in_ptr[v];
                kind.out_ptr[v + 1] += kind.out_ptr[v];
            }
            kind.in_src.resize(kind.in_ptr[n] as usize, 0);
            kind.out_dst.resize(kind.out_ptr[n] as usize, 0);
        }
        // Pass 2: stable placement in edge-list order, using a per-kind
        // write cursor. Cursors start at each row's slot start; after the
        // pass `cursor[v] == ptr[v + 1]`, so we restore `ptr` by shifting.
        let mut in_cur: [Vec<u32>; NUM_EDGE_KINDS] = Default::default();
        let mut out_cur: [Vec<u32>; NUM_EDGE_KINDS] = Default::default();
        for (r, kind) in self.kinds.iter().enumerate() {
            in_cur[r].extend_from_slice(&kind.in_ptr[..n]);
            out_cur[r].extend_from_slice(&kind.out_ptr[..n]);
        }
        for e in &g.edges {
            let r = e.kind.index();
            let k = &mut self.kinds[r];
            let ic = &mut in_cur[r][e.to as usize];
            k.in_src[*ic as usize] = e.from;
            *ic += 1;
            let oc = &mut out_cur[r][e.from as usize];
            k.out_dst[*oc as usize] = e.to;
            *oc += 1;
        }
    }

    /// Number of vertices this adjacency was built for.
    pub fn num_verts(&self) -> usize {
        self.n
    }

    /// The CSR index for edge-kind index `r` (see `EdgeKind::index`).
    #[inline]
    pub fn kind(&self, r: usize) -> &KindAdj {
        &self.kinds[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::{Edge, EdgeKind, SchedMark, StaticFeats, VertKind, Vertex};
    use snowcat_kernel::{BlockId, ThreadId};

    fn vert(i: u32) -> Vertex {
        Vertex {
            block: BlockId(i),
            thread: ThreadId(0),
            kind: VertKind::Scb,
            sched_mark: SchedMark::None,
            may_race: false,
            static_feats: StaticFeats::default(),
            tokens: vec![],
        }
    }

    fn graph(n: u32, edges: Vec<Edge>) -> CtGraph {
        CtGraph { verts: (0..n).map(vert).collect(), edges }
    }

    #[test]
    fn csr_matches_edge_list_in_order() {
        let g = graph(
            4,
            vec![
                Edge { from: 2, to: 1, kind: EdgeKind::ScbFlow },
                Edge { from: 0, to: 1, kind: EdgeKind::ScbFlow },
                Edge { from: 3, to: 1, kind: EdgeKind::InterFlow },
                Edge { from: 0, to: 3, kind: EdgeKind::ScbFlow },
                Edge { from: 1, to: 1, kind: EdgeKind::ScbFlow },
            ],
        );
        let adj = CsrAdj::build(&g);
        let scb = adj.kind(EdgeKind::ScbFlow.index());
        // Stable: sources of vertex 1 appear in edge-list order.
        assert_eq!(scb.in_sources(1), &[2, 0, 1]);
        assert_eq!(scb.in_sources(3), &[0]);
        assert_eq!(scb.in_sources(0), &[] as &[u32]);
        assert_eq!(scb.out_dests(0), &[1, 3]);
        assert_eq!(scb.in_degree(1), 3);
        let inter = adj.kind(EdgeKind::InterFlow.index());
        assert_eq!(inter.in_sources(1), &[3]);
        assert_eq!(inter.out_dests(3), &[1]);
        assert_eq!(inter.num_edges(), 1);
    }

    #[test]
    fn touched_lists_destinations_in_ascending_order() {
        let g = graph(
            5,
            vec![
                Edge { from: 2, to: 4, kind: EdgeKind::ScbFlow },
                Edge { from: 0, to: 1, kind: EdgeKind::ScbFlow },
                Edge { from: 3, to: 1, kind: EdgeKind::ScbFlow },
                Edge { from: 1, to: 0, kind: EdgeKind::InterFlow },
            ],
        );
        let adj = CsrAdj::build(&g);
        let scb = adj.kind(EdgeKind::ScbFlow.index());
        assert_eq!(scb.touched(), &[1, 4]);
        assert_eq!(scb.compact_row(1), Some(0));
        assert_eq!(scb.compact_row(4), Some(1));
        assert_eq!(scb.compact_row(0), None);
        assert_eq!(scb.compact_row(2), None);
        let inter = adj.kind(EdgeKind::InterFlow.index());
        assert_eq!(inter.touched(), &[0]);
        assert_eq!(inter.compact_row(0), Some(0));
        // A kind with no edges at all has an empty compact row set.
        let urb = adj.kind(EdgeKind::UrbFlow.index());
        assert_eq!(urb.touched(), &[] as &[u32]);
        assert_eq!(urb.compact_row(3), None);
        // Every touched vertex's sources are non-empty and vice versa.
        for r in 0..NUM_EDGE_KINDS {
            let k = adj.kind(r);
            for v in 0..g.num_verts() {
                assert_eq!(k.compact_row(v).is_some(), !k.in_sources(v).is_empty());
            }
        }
    }

    #[test]
    fn csr_round_trips_every_edge() {
        let g = graph(
            6,
            (0..30u32)
                .map(|i| Edge {
                    from: (i * 7 + 3) % 6,
                    to: (i * 5 + 1) % 6,
                    kind: EdgeKind::ALL[(i % 6) as usize],
                })
                .collect(),
        );
        let adj = CsrAdj::build(&g);
        let mut rebuilt: Vec<(u32, u32, usize)> = vec![];
        for (r, _) in EdgeKind::ALL.iter().enumerate() {
            let k = adj.kind(r);
            for u in 0..g.num_verts() {
                for &v in k.out_dests(u) {
                    rebuilt.push((u as u32, v, r));
                }
            }
            let total: usize = (0..g.num_verts()).map(|v| k.in_degree(v)).sum();
            assert_eq!(total, k.num_edges());
        }
        let mut expect: Vec<(u32, u32, usize)> =
            g.edges.iter().map(|e| (e.from, e.to, e.kind.index())).collect();
        expect.sort_unstable();
        rebuilt.sort_unstable();
        assert_eq!(rebuilt, expect);
    }

    #[test]
    fn rebuild_reuses_and_matches_fresh_build() {
        let g1 = graph(5, vec![Edge { from: 0, to: 4, kind: EdgeKind::Schedule }]);
        let g2 = graph(
            3,
            vec![
                Edge { from: 1, to: 2, kind: EdgeKind::UrbFlow },
                Edge { from: 2, to: 0, kind: EdgeKind::UrbFlow },
            ],
        );
        let mut adj = CsrAdj::build(&g1);
        adj.rebuild(&g2);
        assert_eq!(adj, CsrAdj::build(&g2));
        adj.rebuild(&g1);
        assert_eq!(adj, CsrAdj::build(&g1));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = graph(0, vec![]);
        let adj = CsrAdj::build(&g);
        assert_eq!(adj.num_verts(), 0);
        for r in 0..EdgeKind::ALL.len() {
            assert_eq!(adj.kind(r).num_edges(), 0);
        }
    }
}
