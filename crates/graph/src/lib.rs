//! # snowcat-graph — the concurrent-test (CT) graph representation
//!
//! The core data structure of the paper (§3.1): a CT — two STIs plus a
//! target schedule — is represented as a graph whose vertices are basic
//! blocks and whose edges come in five types:
//!
//! 1. **SCB control flow** — transitions observed during the sequential
//!    execution of each constituent STI,
//! 2. **URB control flow** — static edges from covered blocks to 1-hop
//!    uncovered reachable blocks,
//! 3. **intra-thread data flow** — write→read pairs on the same address
//!    within one thread's sequential run,
//! 4. **inter-thread potential data flow** — a write in one thread and a
//!    read in the other that touch the same address in their sequential
//!    runs, and
//! 5. **scheduling hints** — the proposed yield points.
//!
//! Graphs are additionally densified with *shortcut edges* (vertices k
//! sequential control-flow steps apart), following the paper's §5.1.1.
//!
//! Each vertex carries its type (SCB/URB) and the numeric-elided token
//! stream of its assembly text; tokens are pre-hashed into a fixed
//! vocabulary so the neural stack never needs the kernel image.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod csr;
pub mod repr;

pub use build::CtGraphBuilder;
pub use csr::{CsrAdj, KindAdj};
pub use repr::{
    CtGraph, Edge, EdgeKind, GraphStats, SchedMark, StaticFeats, VertKind, Vertex, MASK_TOKEN,
    NUM_EDGE_KINDS, NUM_SCHED_MARKS, STATIC_CHANNELS, VOCAB_SIZE,
};
