//! CT graph data types.

use serde::{Deserialize, Serialize};
use snowcat_kernel::{BlockId, ThreadId};

/// Token vocabulary size for hashed assembly tokens. Token id 0 is the mask
/// token used by the masked-language pre-training objective; real tokens
/// hash into `1..VOCAB_SIZE`.
pub const VOCAB_SIZE: usize = 512;

/// The reserved mask token id.
pub const MASK_TOKEN: u32 = 0;

/// Hash an assembly token string into the fixed vocabulary (FNV-1a).
pub fn hash_token(tok: &str) -> u32 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tok.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    1 + (h % (VOCAB_SIZE as u64 - 1)) as u32
}

/// Schedule-endpoint marking of a vertex (a CT-graph *node-type
/// enhancement* in the spirit of the paper's §6: encoding more
/// concurrency-relevant information as new node types). The block that
/// yields and the block that resumes get distinct marks, giving the GNN a
/// local anchor for "before/after the switch" reasoning that two lone edges
/// cannot provide at reproduction scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SchedMark {
    /// Not a schedule endpoint.
    #[default]
    None,
    /// The block containing a yield point (source of a schedule edge).
    YieldSource,
    /// The block where the other thread resumes (target of a schedule edge).
    ResumeTarget,
}

impl SchedMark {
    /// Dense index for embedding lookup.
    pub fn index(self) -> usize {
        match self {
            SchedMark::None => 0,
            SchedMark::YieldSource => 1,
            SchedMark::ResumeTarget => 2,
        }
    }
}

/// Number of schedule-mark classes.
pub const NUM_SCHED_MARKS: usize = 3;

/// Number of per-vertex static feature channels (one per [`StaticFeats`]
/// field). The GNN widens its input layer by this many scalar channels
/// when a model is trained with `static_channels > 0`.
pub const STATIC_CHANNELS: usize = 3;

/// Per-vertex static feature channels mined by `snowcat-analysis` — the
/// ConPredictor-style "static code metrics as predictive signal" idea:
/// instead of only *filtering* with the static layer, feed it to the
/// learned predictor. Each channel is a small saturating count; models
/// consume them through [`StaticFeats::unit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct StaticFeats {
    /// Distinct value-flow alias classes touched by the block's accesses.
    pub alias_density: u8,
    /// Size of the must-hold lockset at block entry.
    pub lockset: u8,
    /// Refined may-race degree: pairs with an access in this block
    /// (saturating).
    pub race_degree: u8,
}

impl StaticFeats {
    /// The channels as unit-interval floats, in declaration order. Counts
    /// clamp at 16 so one dense block cannot blow up the input scale.
    pub fn unit(self) -> [f32; STATIC_CHANNELS] {
        let u = |x: u8| f32::from(x.min(16)) / 16.0;
        [u(self.alias_density), u(self.lockset), u(self.race_degree)]
    }

    /// The raw channel bytes, in declaration order (the SCDS v5 layout).
    pub fn bytes(self) -> [u8; STATIC_CHANNELS] {
        [self.alias_density, self.lockset, self.race_degree]
    }

    /// Inverse of [`StaticFeats::bytes`].
    pub fn from_bytes(b: [u8; STATIC_CHANNELS]) -> Self {
        Self { alias_density: b[0], lockset: b[1], race_degree: b[2] }
    }
}

/// Vertex type: sequentially covered or uncovered-reachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VertKind {
    /// Covered during the sequential execution of its thread's STI.
    Scb,
    /// Statically reachable within k hops but not sequentially covered.
    Urb,
}

/// Edge types (the paper's five, plus the shortcut densification edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Control flow observed during sequential execution.
    ScbFlow,
    /// Static control flow from an SCB into a URB.
    UrbFlow,
    /// Intra-thread data flow (sequential write→read, same address).
    IntraFlow,
    /// Inter-thread *potential* data flow (write in one thread, read in the
    /// other, overlapping address).
    InterFlow,
    /// A scheduling hint (proposed yield point).
    Schedule,
    /// Densification shortcut (k sequential-control-flow steps apart).
    Shortcut,
}

/// Number of edge kinds (length of [`EdgeKind::ALL`]).
pub const NUM_EDGE_KINDS: usize = 6;

impl EdgeKind {
    /// All edge kinds, in embedding-table order.
    pub const ALL: [EdgeKind; 6] = [
        EdgeKind::ScbFlow,
        EdgeKind::UrbFlow,
        EdgeKind::IntraFlow,
        EdgeKind::InterFlow,
        EdgeKind::Schedule,
        EdgeKind::Shortcut,
    ];

    /// Dense index for embedding lookup.
    pub fn index(self) -> usize {
        match self {
            EdgeKind::ScbFlow => 0,
            EdgeKind::UrbFlow => 1,
            EdgeKind::IntraFlow => 2,
            EdgeKind::InterFlow => 3,
            EdgeKind::Schedule => 4,
            EdgeKind::Shortcut => 5,
        }
    }
}

/// One vertex: a (thread, basic block) pair.
///
/// The same kernel block covered by both threads yields two vertices, so
/// schedule and inter-thread edges are unambiguous.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vertex {
    /// Kernel basic block.
    pub block: BlockId,
    /// Which thread's execution this vertex belongs to.
    pub thread: ThreadId,
    /// SCB or URB.
    pub kind: VertKind,
    /// Schedule-endpoint mark (set by the schedule overlay; `None` in base
    /// graphs).
    #[serde(default)]
    pub sched_mark: SchedMark,
    /// Static may-race bit: the block holds a memory access that the static
    /// analyzer (`snowcat-analysis`) places in some may-race pair. Another
    /// node-type enhancement in the spirit of the paper's §6; `false` when
    /// no analysis was supplied to the builder.
    #[serde(default)]
    pub may_race: bool,
    /// Static feature channels (alias density, lockset size, race degree);
    /// all-zero when the builder got no analysis.
    #[serde(default)]
    pub static_feats: StaticFeats,
    /// Hashed assembly tokens (numeric-elided), ids in `1..VOCAB_SIZE`.
    pub tokens: Vec<u32>,
}

/// A directed typed edge between vertex indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex index.
    pub from: u32,
    /// Target vertex index.
    pub to: u32,
    /// Edge type.
    pub kind: EdgeKind,
}

/// A complete CT graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CtGraph {
    /// Vertices; indices are stable and used by edges and labels.
    pub verts: Vec<Vertex>,
    /// Typed directed edges.
    pub edges: Vec<Edge>,
}

impl CtGraph {
    /// Number of vertices.
    pub fn num_verts(&self) -> usize {
        self.verts.len()
    }

    /// Indices of URB vertices.
    pub fn urb_indices(&self) -> Vec<usize> {
        self.verts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VertKind::Urb)
            .map(|(i, _)| i)
            .collect()
    }

    /// Look up the vertex index of a (thread, block) pair.
    pub fn vertex_of(&self, thread: ThreadId, block: BlockId) -> Option<usize> {
        self.verts.iter().position(|v| v.thread == thread && v.block == block)
    }

    /// Composition statistics (the paper's §5.1.1 reports these per split).
    pub fn stats(&self) -> GraphStats {
        let mut s = GraphStats::default();
        s.verts = self.verts.len();
        s.urbs = self.verts.iter().filter(|v| v.kind == VertKind::Urb).count();
        s.scbs = s.verts - s.urbs;
        s.may_race_verts = self.verts.iter().filter(|v| v.may_race).count();
        s.static_feat_verts =
            self.verts.iter().filter(|v| v.static_feats != StaticFeats::default()).count();
        s.edges = self.edges.len();
        for e in &self.edges {
            s.by_edge_kind[e.kind.index()] += 1;
        }
        s
    }

    /// Structural sanity: every edge endpoint must be a valid vertex index.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.verts.len() as u32;
        for (i, e) in self.edges.iter().enumerate() {
            if e.from >= n || e.to >= n {
                return Err(format!("edge {i} endpoint out of range ({}→{}, n={n})", e.from, e.to));
            }
        }
        Ok(())
    }
}

/// Graph composition statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Total vertices.
    pub verts: usize,
    /// URB vertices.
    pub urbs: usize,
    /// SCB vertices.
    pub scbs: usize,
    /// Vertices carrying the static may-race bit.
    #[serde(default)]
    pub may_race_verts: usize,
    /// Vertices carrying at least one non-zero static feature channel.
    #[serde(default)]
    pub static_feat_verts: usize,
    /// Total edges.
    pub edges: usize,
    /// Edge counts indexed by [`EdgeKind::index`].
    pub by_edge_kind: [usize; 6],
}

impl GraphStats {
    /// Accumulate another graph's stats (for dataset-level averages).
    pub fn add(&mut self, other: &GraphStats) {
        self.verts += other.verts;
        self.urbs += other.urbs;
        self.scbs += other.scbs;
        self.may_race_verts += other.may_race_verts;
        self.static_feat_verts += other.static_feat_verts;
        self.edges += other.edges;
        for i in 0..6 {
            self.by_edge_kind[i] += other.by_edge_kind[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_token_never_returns_mask() {
        for t in ["mov", "r1", "<num>", "ld", "[flag+<num>]", "", "x"] {
            let id = hash_token(t);
            assert!(id >= 1 && (id as usize) < VOCAB_SIZE, "bad id {id} for {t:?}");
        }
    }

    #[test]
    fn hash_token_is_deterministic() {
        assert_eq!(hash_token("add"), hash_token("add"));
        assert_ne!(hash_token("add"), hash_token("sub"));
    }

    #[test]
    fn edge_kind_indices_are_dense() {
        for (i, k) in EdgeKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn stats_counts_kinds() {
        let g = CtGraph {
            verts: vec![
                Vertex {
                    block: BlockId(0),
                    thread: ThreadId(0),
                    kind: VertKind::Scb,
                    sched_mark: SchedMark::None,
                    may_race: true,
                    static_feats: StaticFeats { alias_density: 2, lockset: 1, race_degree: 3 },
                    tokens: vec![1],
                },
                Vertex {
                    block: BlockId(1),
                    thread: ThreadId(0),
                    kind: VertKind::Urb,
                    sched_mark: SchedMark::None,
                    may_race: false,
                    static_feats: StaticFeats::default(),
                    tokens: vec![2],
                },
            ],
            edges: vec![
                Edge { from: 0, to: 1, kind: EdgeKind::UrbFlow },
                Edge { from: 0, to: 0, kind: EdgeKind::ScbFlow },
            ],
        };
        let s = g.stats();
        assert_eq!(s.verts, 2);
        assert_eq!(s.urbs, 1);
        assert_eq!(s.scbs, 1);
        assert_eq!(s.may_race_verts, 1);
        assert_eq!(s.static_feat_verts, 1);
        assert_eq!(s.by_edge_kind[EdgeKind::UrbFlow.index()], 1);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn static_feats_normalize_and_roundtrip() {
        let f = StaticFeats { alias_density: 4, lockset: 16, race_degree: 200 };
        let u = f.unit();
        assert_eq!(u[0], 0.25);
        assert_eq!(u[1], 1.0);
        assert_eq!(u[2], 1.0, "counts clamp at 16");
        assert_eq!(StaticFeats::from_bytes(f.bytes()), f);
        assert_eq!(StaticFeats::default().unit(), [0.0; STATIC_CHANNELS]);
        // Old serialized vertices (no static_feats field) default to zero.
        let v: Vertex =
            serde_json::from_str(r#"{"block":1,"thread":0,"kind":"Scb","tokens":[3]}"#).unwrap();
        assert_eq!(v.static_feats, StaticFeats::default());
    }

    #[test]
    fn validate_catches_bad_edges() {
        let g = CtGraph {
            verts: vec![],
            edges: vec![Edge { from: 0, to: 1, kind: EdgeKind::ScbFlow }],
        };
        assert!(g.validate().is_err());
    }
}
