//! Building CT graphs from sequential STI profiles and scheduling hints.

use crate::repr::{hash_token, CtGraph, Edge, EdgeKind, SchedMark, StaticFeats, VertKind, Vertex};
use snowcat_cfg::KernelCfg;
use snowcat_kernel::{asm, BlockId, Kernel, ThreadId};
use snowcat_vm::{BitSet, ExecResult, ScheduleHints};
use std::collections::{HashMap, HashSet};

/// Builds CT graphs for one kernel image.
pub struct CtGraphBuilder<'k> {
    kernel: &'k Kernel,
    cfg: &'k KernelCfg,
    /// URB identification depth (paper: 1).
    pub urb_hops: usize,
    /// Shortcut-edge stride along the sequential trace (0 disables).
    pub shortcut_stride: usize,
    /// Additional coarser shortcut strides (multi-scale densification: lets
    /// positional information cross the graph in few message-passing hops).
    pub extra_strides: Vec<usize>,
    /// Blocks flagged by the static may-race analysis (bit = block index).
    /// When set, vertices on these blocks carry [`Vertex::may_race`]; when
    /// `None`, the bit stays `false` everywhere.
    pub may_race_blocks: Option<BitSet>,
    /// Per-block static feature channels (indexed by block), mined by the
    /// value-flow analysis. When `None`, every vertex carries all-zero
    /// channels and a `static_channels = 0` model behaves exactly as
    /// before.
    pub block_static_feats: Option<Vec<StaticFeats>>,
}

impl<'k> CtGraphBuilder<'k> {
    /// Builder with the paper's defaults (1-hop URBs, stride-4 shortcuts).
    pub fn new(kernel: &'k Kernel, cfg: &'k KernelCfg) -> Self {
        Self {
            kernel,
            cfg,
            urb_hops: 1,
            shortcut_stride: 4,
            extra_strides: vec![16],
            may_race_blocks: None,
            block_static_feats: None,
        }
    }

    /// True if the static analysis marked `b` as may-race.
    fn block_may_race(&self, b: BlockId) -> bool {
        self.may_race_blocks.as_ref().is_some_and(|s| s.contains(b.index()))
    }

    /// The static feature channels for block `b` (zero without analysis).
    fn block_feats(&self, b: BlockId) -> StaticFeats {
        self.block_static_feats.as_ref().and_then(|f| f.get(b.index()).copied()).unwrap_or_default()
    }

    /// Build the CT graph for a CTI, given the *sequential* execution
    /// profiles of its two STIs (each run alone as thread 0 of its own VM)
    /// and the candidate schedule.
    pub fn build(&self, seq_a: &ExecResult, seq_b: &ExecResult, hints: &ScheduleHints) -> CtGraph {
        let base = self.build_base(seq_a, seq_b);
        self.with_schedule(&base, seq_a, seq_b, hints)
    }

    /// Build everything except the schedule edges. Exploring many
    /// interleavings of one CTI reuses this base graph.
    pub fn build_base(&self, seq_a: &ExecResult, seq_b: &ExecResult) -> CtGraph {
        let mut verts: Vec<Vertex> = Vec::new();
        let mut index: HashMap<(u8, BlockId), u32> = HashMap::new();
        let mut edges: Vec<Edge> = Vec::new();
        let mut edge_seen: HashSet<(u32, u32, EdgeKind)> = HashSet::new();

        let push_edge = |edges: &mut Vec<Edge>,
                         seen: &mut HashSet<(u32, u32, EdgeKind)>,
                         from: u32,
                         to: u32,
                         kind: EdgeKind| {
            if seen.insert((from, to, kind)) {
                edges.push(Edge { from, to, kind });
            }
        };

        // --- Vertices: SCBs in first-entry order, then URBs, per thread. ---
        for (t, seq) in [(0u8, seq_a), (1u8, seq_b)] {
            for &b in &seq.block_trace[0] {
                index.entry((t, b)).or_insert_with(|| {
                    let id = verts.len() as u32;
                    verts.push(Vertex {
                        block: b,
                        thread: ThreadId(t),
                        kind: VertKind::Scb,
                        sched_mark: SchedMark::None,
                        may_race: self.block_may_race(b),
                        static_feats: self.block_feats(b),
                        tokens: tokenize(self.kernel, b),
                    });
                    id
                });
            }
        }
        let mut urb_edges_per_thread = Vec::new();
        for (t, seq) in [(0u8, seq_a), (1u8, seq_b)] {
            let urbs = self.cfg.k_hop_urbs(&seq.per_thread_coverage[0], self.urb_hops);
            for e in &urbs {
                index.entry((t, e.to)).or_insert_with(|| {
                    let id = verts.len() as u32;
                    verts.push(Vertex {
                        block: e.to,
                        thread: ThreadId(t),
                        kind: VertKind::Urb,
                        sched_mark: SchedMark::None,
                        may_race: self.block_may_race(e.to),
                        static_feats: self.block_feats(e.to),
                        tokens: tokenize(self.kernel, e.to),
                    });
                    id
                });
            }
            urb_edges_per_thread.push(urbs);
        }

        // --- 1. SCB control-flow edges: consecutive trace transitions. ---
        for (t, seq) in [(0u8, seq_a), (1u8, seq_b)] {
            let trace = &seq.block_trace[0];
            for w in trace.windows(2) {
                let from = index[&(t, w[0])];
                let to = index[&(t, w[1])];
                push_edge(&mut edges, &mut edge_seen, from, to, EdgeKind::ScbFlow);
            }
            // --- 6. Shortcut densification along the same trace
            // (multi-scale: one edge set per stride). ---
            for &k in std::iter::once(&self.shortcut_stride)
                .chain(&self.extra_strides)
                .filter(|&&k| k > 1)
            {
                for i in 0..trace.len().saturating_sub(k) {
                    let from = index[&(t, trace[i])];
                    let to = index[&(t, trace[i + k])];
                    push_edge(&mut edges, &mut edge_seen, from, to, EdgeKind::Shortcut);
                }
            }
        }

        // --- 2. URB control-flow edges. ---
        for (t, urbs) in [(0u8, &urb_edges_per_thread[0]), (1u8, &urb_edges_per_thread[1])] {
            for e in urbs.iter() {
                let from = index[&(t, e.from)];
                let to = index[&(t, e.to)];
                push_edge(&mut edges, &mut edge_seen, from, to, EdgeKind::UrbFlow);
            }
        }

        // --- 3. Intra-thread data flow: last write → subsequent reads. ---
        for (t, seq) in [(0u8, seq_a), (1u8, seq_b)] {
            let mut last_write: HashMap<u32, BlockId> = HashMap::new();
            for a in &seq.accesses {
                if a.is_write {
                    last_write.insert(a.addr.0, a.loc.block);
                } else if let Some(&wb) = last_write.get(&a.addr.0) {
                    let from = index[&(t, wb)];
                    let to = index[&(t, a.loc.block)];
                    push_edge(&mut edges, &mut edge_seen, from, to, EdgeKind::IntraFlow);
                }
            }
        }

        // --- 4. Inter-thread potential data flow (both directions). ---
        let mut flows = |wt: u8, w_seq: &ExecResult, rt: u8, r_seq: &ExecResult| {
            let mut writes: HashMap<u32, Vec<BlockId>> = HashMap::new();
            for a in &w_seq.accesses {
                if a.is_write {
                    let v = writes.entry(a.addr.0).or_default();
                    if !v.contains(&a.loc.block) {
                        v.push(a.loc.block);
                    }
                }
            }
            let mut emitted: HashSet<(BlockId, BlockId)> = HashSet::new();
            for a in &r_seq.accesses {
                if a.is_write {
                    continue;
                }
                if let Some(wblocks) = writes.get(&a.addr.0) {
                    for &wb in wblocks {
                        if emitted.insert((wb, a.loc.block)) {
                            let from = index[&(wt, wb)];
                            let to = index[&(rt, a.loc.block)];
                            push_edge(&mut edges, &mut edge_seen, from, to, EdgeKind::InterFlow);
                        }
                    }
                }
            }
        };
        flows(0, seq_a, 1, seq_b);
        flows(1, seq_b, 0, seq_a);

        let g = CtGraph { verts, edges };
        debug_assert!(g.validate().is_ok());
        g
    }

    /// Clone `base` and add the scheduling-hint edges for `hints`.
    ///
    /// For hint "thread T yields after executing n instructions", the source
    /// is the block T was executing at that point in its *sequential*
    /// profile; the first switch targets the other thread's resume block
    /// (its entry block), and the second switch draws its edge back to the
    /// block containing the first switch point, matching the paper's
    /// description.
    pub fn with_schedule(
        &self,
        base: &CtGraph,
        seq_a: &ExecResult,
        seq_b: &ExecResult,
        hints: &ScheduleHints,
    ) -> CtGraph {
        let mut g = base.clone();
        let mut index: HashMap<(u8, BlockId), u32> = HashMap::new();
        for (i, v) in g.verts.iter().enumerate() {
            index.insert((v.thread.0, v.block), i as u32);
        }
        let seqs = [seq_a, seq_b];
        let mut progress = [0u64, 0u64];
        let mut prev_src: Option<u32> = None;
        for (si, sw) in hints.switches.iter().enumerate() {
            let t = sw.thread.0;
            let other = 1 - t;
            let src_block = block_at(seqs[t as usize], sw.after);
            let dst_block = block_at(seqs[other as usize], progress[other as usize]);
            progress[t as usize] = sw.after;
            if let (Some(&src), Some(&dst)) = (
                src_block.and_then(|b| index.get(&(t, b))),
                dst_block.and_then(|b| index.get(&(other, b))),
            ) {
                let to = if si == 1 { prev_src.unwrap_or(dst) } else { dst };
                g.edges.push(Edge { from: src, to, kind: EdgeKind::Schedule });
                // Mark the endpoint vertices (node-type enhancement, §6).
                g.verts[src as usize].sched_mark = SchedMark::YieldSource;
                if g.verts[to as usize].sched_mark == SchedMark::None {
                    g.verts[to as usize].sched_mark = SchedMark::ResumeTarget;
                }
                prev_src = Some(src);
            }
        }
        debug_assert!(g.validate().is_ok());
        g
    }

    /// Label a graph's vertices with the observed concurrent coverage:
    /// vertex (t, b) is positive iff thread t covered block b during the
    /// dynamic execution of the CT.
    pub fn label(&self, graph: &CtGraph, ct_result: &ExecResult) -> Vec<bool> {
        graph
            .verts
            .iter()
            .map(|v| ct_result.per_thread_coverage[v.thread.index()].contains(v.block.index()))
            .collect()
    }

    /// Label a graph's *edges* with realized inter-thread data flows: an
    /// `InterFlow` edge (writer block → reader block) is positive iff,
    /// during the CT's dynamic execution, a read in the reader block
    /// actually read-from a write in the writer block (same address, write
    /// latest before the read, across threads). Non-InterFlow edges are
    /// always labelled false.
    ///
    /// This implements the prediction task the paper proposes as future
    /// work in §6 ("training PIC to predict the inter-thread data flows
    /// between code blocks").
    pub fn flow_labels(&self, graph: &CtGraph, ct_result: &ExecResult) -> Vec<bool> {
        use std::collections::HashMap;
        // Realized cross-thread reads-from at block granularity.
        let mut last_write: HashMap<u32, (BlockId, u8)> = HashMap::new();
        let mut realized: HashSet<(BlockId, u8, BlockId, u8)> = HashSet::new();
        for a in &ct_result.accesses {
            if a.is_write {
                last_write.insert(a.addr.0, (a.loc.block, a.thread.0));
            } else if let Some(&(wb, wt)) = last_write.get(&a.addr.0) {
                if wt != a.thread.0 {
                    realized.insert((wb, wt, a.loc.block, a.thread.0));
                }
            }
        }
        graph
            .edges
            .iter()
            .map(|e| {
                if e.kind != EdgeKind::InterFlow {
                    return false;
                }
                let u = &graph.verts[e.from as usize];
                let v = &graph.verts[e.to as usize];
                realized.contains(&(u.block, u.thread.0, v.block, v.thread.0))
            })
            .collect()
    }
}

/// The block a thread was executing when its `executed` counter was `n`,
/// according to its sequential profile.
fn block_at(seq: &ExecResult, n: u64) -> Option<BlockId> {
    let steps = &seq.block_entry_steps[0];
    let trace = &seq.block_trace[0];
    if trace.is_empty() {
        return None;
    }
    // Last entry with entry_step <= n.
    match steps.binary_search(&n) {
        Ok(i) => Some(trace[i]),
        Err(0) => Some(trace[0]),
        Err(i) => Some(trace[i - 1]),
    }
}

fn tokenize(kernel: &Kernel, block: BlockId) -> Vec<u32> {
    asm::tokenize_block(kernel, kernel.block(block)).iter().map(|t| hash_token(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_kernel::{generate, GenConfig, SyscallId};
    use snowcat_vm::{run_ct, run_sequential, Cti, Sti, SwitchPoint, SyscallInvocation, VmConfig};

    fn setup() -> (Kernel, KernelCfg) {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        (k, cfg)
    }

    fn sti(i: u32) -> Sti {
        Sti::new(vec![SyscallInvocation { syscall: SyscallId(i), args: [0; 3] }])
    }

    fn hints(x: u64, y: u64) -> ScheduleHints {
        ScheduleHints {
            first: ThreadId(0),
            switches: vec![
                SwitchPoint { thread: ThreadId(0), after: x },
                SwitchPoint { thread: ThreadId(1), after: y },
            ],
        }
    }

    #[test]
    fn graph_has_all_ingredient_edge_kinds() {
        let (k, cfg) = setup();
        let b = CtGraphBuilder::new(&k, &cfg);
        // Use a bug-carrier pair to guarantee inter-thread flow.
        let bug = &k.bugs[0];
        let sa = Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.0, args: [0; 3] }]);
        let sb = Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.1, args: [0; 3] }]);
        let ra = run_sequential(&k, &sa);
        let rb = run_sequential(&k, &sb);
        let g = b.build(&ra, &rb, &hints(5, 5));
        let s = g.stats();
        assert!(s.verts > 0);
        assert!(s.urbs > 0, "expected URBs");
        assert!(s.scbs > 0);
        assert!(s.by_edge_kind[EdgeKind::ScbFlow.index()] > 0);
        assert!(s.by_edge_kind[EdgeKind::UrbFlow.index()] > 0);
        assert!(s.by_edge_kind[EdgeKind::InterFlow.index()] > 0, "carriers share memory");
        assert_eq!(s.by_edge_kind[EdgeKind::Schedule.index()], 2, "two scheduling hints");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn vertices_are_unique_per_thread_block() {
        let (k, cfg) = setup();
        let b = CtGraphBuilder::new(&k, &cfg);
        let ra = run_sequential(&k, &sti(0));
        let rb = run_sequential(&k, &sti(1));
        let g = b.build(&ra, &rb, &hints(3, 3));
        let mut seen = HashSet::new();
        for v in &g.verts {
            assert!(seen.insert((v.thread, v.block)), "duplicate vertex {:?}", (v.thread, v.block));
        }
    }

    #[test]
    fn urb_vertices_are_not_sequentially_covered() {
        let (k, cfg) = setup();
        let b = CtGraphBuilder::new(&k, &cfg);
        let ra = run_sequential(&k, &sti(0));
        let rb = run_sequential(&k, &sti(1));
        let g = b.build(&ra, &rb, &hints(3, 3));
        for v in &g.verts {
            let cov = if v.thread == ThreadId(0) { &ra } else { &rb };
            match v.kind {
                VertKind::Scb => assert!(cov.per_thread_coverage[0].contains(v.block.index())),
                VertKind::Urb => assert!(!cov.per_thread_coverage[0].contains(v.block.index())),
            }
        }
    }

    #[test]
    fn labels_match_concurrent_coverage() {
        let (k, cfg) = setup();
        let b = CtGraphBuilder::new(&k, &cfg);
        let sa = sti(0);
        let sb = sti(1);
        let ra = run_sequential(&k, &sa);
        let rb = run_sequential(&k, &sb);
        let h = hints(4, 4);
        let g = b.build(&ra, &rb, &h);
        let ct = run_ct(&k, &Cti::new(sa, sb), h, VmConfig::default());
        let labels = b.label(&g, &ct);
        assert_eq!(labels.len(), g.num_verts());
        // All SCB vertices of thread 0 that appear in the CT coverage are
        // positive; and every positive URB truly was covered concurrently.
        for (i, v) in g.verts.iter().enumerate() {
            let covered = ct.per_thread_coverage[v.thread.index()].contains(v.block.index());
            assert_eq!(labels[i], covered);
        }
    }

    #[test]
    fn different_hints_change_schedule_edges_only() {
        let (k, cfg) = setup();
        let b = CtGraphBuilder::new(&k, &cfg);
        let ra = run_sequential(&k, &sti(2));
        let rb = run_sequential(&k, &sti(3));
        let g1 = b.build(&ra, &rb, &hints(2, 2));
        let g2 = b.build(&ra, &rb, &hints(ra.steps.max(2), 2));
        // Vertices are identical up to schedule-endpoint marks.
        let strip_marks = |g: &CtGraph| {
            g.verts
                .iter()
                .map(|v| (v.block, v.thread, v.kind, v.tokens.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip_marks(&g1), strip_marks(&g2), "vertices independent of hints");
        let strip = |g: &CtGraph| {
            let mut e: Vec<Edge> =
                g.edges.iter().copied().filter(|e| e.kind != EdgeKind::Schedule).collect();
            e.sort_by_key(|e| (e.from, e.to, e.kind.index()));
            e
        };
        assert_eq!(strip(&g1), strip(&g2), "non-schedule edges independent of hints");
    }

    #[test]
    fn empty_stis_build_empty_graph() {
        let (k, cfg) = setup();
        let b = CtGraphBuilder::new(&k, &cfg);
        let ra = run_sequential(&k, &Sti::default());
        let rb = run_sequential(&k, &Sti::default());
        let g = b.build(&ra, &rb, &ScheduleHints::sequential(ThreadId(0)));
        assert_eq!(g.num_verts(), 0);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn shortcut_stride_zero_disables_shortcuts() {
        let (k, cfg) = setup();
        let mut b = CtGraphBuilder::new(&k, &cfg);
        b.shortcut_stride = 0;
        b.extra_strides.clear();
        let ra = run_sequential(&k, &sti(0));
        let rb = run_sequential(&k, &sti(1));
        let g = b.build(&ra, &rb, &hints(3, 3));
        assert_eq!(g.stats().by_edge_kind[EdgeKind::Shortcut.index()], 0);
    }

    #[test]
    fn flow_labels_align_with_edges_and_mark_only_interflow() {
        let (k, cfg) = setup();
        let b = CtGraphBuilder::new(&k, &cfg);
        let bug = &k.bugs[0];
        let sa = Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.0, args: [0; 3] }]);
        let sb = Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.1, args: [0; 3] }]);
        let ra = run_sequential(&k, &sa);
        let rb = run_sequential(&k, &sb);
        let h = hints(5, 5);
        let g = b.build(&ra, &rb, &h);
        let ct = run_ct(&k, &Cti::new(sa, sb), h, VmConfig::default());
        let flows = b.flow_labels(&g, &ct);
        assert_eq!(flows.len(), g.edges.len());
        for (e, &f) in g.edges.iter().zip(&flows) {
            if e.kind != EdgeKind::InterFlow {
                assert!(!f, "non-interflow edge labelled positive");
            }
        }
        // The bug carriers share memory; under a tight interleaving some
        // inter-thread flow is typically realized. (Not guaranteed for
        // every hint; just check no panic and plausible structure.)
    }

    #[test]
    fn static_feats_are_stamped_from_analysis_channels() {
        let (k, cfg) = setup();
        let mut b = CtGraphBuilder::new(&k, &cfg);
        b.block_static_feats =
            Some(vec![
                StaticFeats { alias_density: 1, lockset: 0, race_degree: 2 };
                k.num_blocks()
            ]);
        let ra = run_sequential(&k, &sti(0));
        let rb = run_sequential(&k, &sti(1));
        let g = b.build(&ra, &rb, &hints(3, 3));
        assert!(g.num_verts() > 0);
        assert!(g
            .verts
            .iter()
            .all(|v| v.static_feats.alias_density == 1 && v.static_feats.race_degree == 2));
        assert_eq!(g.stats().static_feat_verts, g.num_verts());
        // Without channels every vertex carries zeros.
        b.block_static_feats = None;
        let g0 = b.build(&ra, &rb, &hints(3, 3));
        assert_eq!(g0.stats().static_feat_verts, 0);
    }

    #[test]
    fn graph_is_deterministic() {
        let (k, cfg) = setup();
        let b = CtGraphBuilder::new(&k, &cfg);
        let ra = run_sequential(&k, &sti(4));
        let rb = run_sequential(&k, &sti(5));
        assert_eq!(b.build(&ra, &rb, &hints(6, 2)), b.build(&ra, &rb, &hints(6, 2)));
    }
}
