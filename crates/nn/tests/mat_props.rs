//! Property tests for the tensor primitives: the hand-rolled matmul
//! variants must agree with naive definitions, and loss primitives must be
//! consistent.

use proptest::prelude::*;
use snowcat_nn::Mat;

fn arb_mat(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols).prop_map(move |data| Mat {
        rows,
        cols,
        data,
    })
}

fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
    let mut out = Mat::zeros(a.rows, b.cols);
    for i in 0..a.rows {
        for j in 0..b.cols {
            let mut acc = 0.0;
            for k in 0..a.cols {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn transpose(a: &Mat) -> Mat {
    Mat::from_fn(a.cols, a.rows, |r, c| a.get(c, r))
}

fn close(a: &Mat, b: &Mat) -> bool {
    a.rows == b.rows
        && a.cols == b.cols
        && a.data.iter().zip(&b.data).all(|(x, y)| (x - y).abs() < 1e-3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_matches_naive(a in arb_mat(3, 4), b in arb_mat(4, 5)) {
        prop_assert!(close(&a.matmul(&b), &naive_matmul(&a, &b)));
    }

    #[test]
    fn matmul_tn_is_transpose_then_matmul(a in arb_mat(4, 3), b in arb_mat(4, 5)) {
        let expect = naive_matmul(&transpose(&a), &b);
        prop_assert!(close(&a.matmul_tn(&b), &expect));
    }

    #[test]
    fn matmul_nt_is_matmul_with_transposed_rhs(a in arb_mat(3, 4), b in arb_mat(5, 4)) {
        let expect = naive_matmul(&a, &transpose(&b));
        prop_assert!(close(&a.matmul_nt(&b), &expect));
    }

    #[test]
    fn col_sum_is_ones_vector_product(a in arb_mat(4, 3)) {
        let ones = Mat { rows: 1, cols: 4, data: vec![1.0; 4] };
        let expect = naive_matmul(&ones, &a);
        prop_assert!(close(&a.col_sum(), &expect));
    }

    #[test]
    fn relu_backward_mask_zeroes_exactly_nonpositive(pre in arb_mat(2, 6), g in arb_mat(2, 6)) {
        let mut masked = g.clone();
        masked.relu_backward_mask(&pre);
        for i in 0..pre.data.len() {
            if pre.data[i] <= 0.0 {
                prop_assert_eq!(masked.data[i], 0.0);
            } else {
                prop_assert_eq!(masked.data[i], g.data[i]);
            }
        }
    }

    #[test]
    fn sigmoid_is_monotone_and_bounded(x in -50.0f32..50.0, y in -50.0f32..50.0) {
        let sx = snowcat_nn::tensor::sigmoid(x);
        let sy = snowcat_nn::tensor::sigmoid(y);
        prop_assert!((0.0..=1.0).contains(&sx));
        if x < y {
            prop_assert!(sx <= sy);
        }
    }

    #[test]
    fn bce_is_nonnegative_and_zero_only_at_confident_correct(
        z in -30.0f32..30.0, y in proptest::bool::ANY, w in 0.5f32..4.0,
    ) {
        let loss = snowcat_nn::tensor::bce_with_logit(z, y, w);
        prop_assert!(loss >= 0.0);
        // Confidently correct predictions have near-zero loss.
        if (y && z > 20.0) || (!y && z < -20.0) {
            prop_assert!(loss < 1e-3);
        }
    }
}
